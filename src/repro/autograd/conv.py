"""Differentiable 2-D convolution and pooling, implemented with im2col.

These are the performance-critical ops for the VGG/ResNet experiments.  The
forward pass lowers convolution to a single large matrix multiplication over
sliding windows (``numpy.lib.stride_tricks.sliding_window_view``); the
backward pass uses the classic col2im trick of ``KH*KW`` strided slice-adds,
avoiding any per-pixel Python loops.

The conv pipeline is **allocation-free in steady state** when a
:class:`ConvWorkspace` is supplied (each :class:`~repro.nn.Conv2d` owns
one): the contiguous ``cols`` matrix, the padded-input staging buffer, the
output buffers, the weight/input gradient buffers and the ``col2im``
scatter scratch are all cached across steps and re-filled in place
(``np.copyto`` / ``np.matmul(..., out=...)``).  Buffers are invalidated
automatically on any shape change (e.g. the final short batch, or switching
between train and eval batch sizes).

All ops use NCHW layout, matching the rest of the library.
"""

from __future__ import annotations

import os

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

try:  # pragma: no cover - scipy ships with the pinned environment
    import scipy.sparse as _sp
    from scipy.sparse import _sparsetools as _spt
except ImportError:  # pragma: no cover
    _sp = None
    _spt = None

from repro.autograd.tensor import Tensor, ensure_tensor

__all__ = [
    "ConvWorkspace",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "pad2d",
    "conv_output_size",
]

WORKSPACE_ENV = "REPRO_CONV_WORKSPACE"


def workspace_enabled() -> bool:
    """Workspace reuse kill-switch (``REPRO_CONV_WORKSPACE=0`` disables)."""
    return os.environ.get(WORKSPACE_ENV, "1") != "0"


class ConvWorkspace:
    """Reusable named buffers for one conv layer's im2col pipeline.

    ``get`` returns a cached ``np.empty`` buffer for ``(name, shape,
    dtype)``, reallocating only when the shape or dtype changed since the
    previous call; ``zeros`` additionally guarantees the buffer was zeroed
    at allocation time (callers that only ever write a sub-region — the
    padded-input interior — rely on the border staying zero).

    The returned buffers are overwritten by the layer's next forward or
    backward pass, so they are valid within one training step only — which
    is exactly the lifetime of im2col intermediates.  A layer invoked
    twice before ``backward`` (weight sharing) must not share a workspace;
    no model in this repository does that.  Set ``REPRO_CONV_WORKSPACE=0``
    to fall back to per-call allocation.
    """

    __slots__ = ("_buffers",)

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}

    def _lookup(self, name: str, shape, dtype, alloc) -> np.ndarray:
        if not workspace_enabled():
            return alloc(shape, dtype=dtype)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = alloc(shape, dtype=dtype)
            self._buffers[name] = buffer
        return buffer

    def get(self, name: str, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        return self._lookup(name, shape, dtype, np.empty)

    def zeros(self, name: str, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Like :meth:`get`, but the buffer is zero-filled at allocation."""
        return self._lookup(name, shape, dtype, np.zeros)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: tuple[int, int],
    padding: tuple[int, int],
    workspace: ConvWorkspace | None = None,
):
    """Extract sliding windows.

    Returns ``(cols, x_padded_shape, out_h, out_w)`` where ``cols`` has shape
    ``(N, out_h, out_w, C, kh, kw)`` and is a strided *view* when possible.
    With a workspace, the padded input is staged in a cached buffer whose
    border is written once (at allocation) and stays zero thereafter.
    """
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        if workspace is not None:
            n_, c_, h_, w_ = x.shape
            padded = workspace.zeros(
                "x_padded", (n_, c_, h_ + 2 * ph, w_ + 2 * pw), x.dtype
            )
            padded[:, :, ph : ph + h_, pw : pw + w_] = x
            x = padded
        else:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))  # (N, C, H', W', kh, kw)
    windows = windows[:, :, ::sh, ::sw]  # stride subsampling
    cols = windows.transpose(0, 2, 3, 1, 4, 5)  # (N, out_h, out_w, C, kh, kw)
    return cols, x.shape, out_h, out_w


def _contiguous_cols(
    cols: np.ndarray, workspace: ConvWorkspace | None = None
) -> np.ndarray:
    """C-contiguous copy of an im2col window view (or the view itself).

    An already-contiguous ``cols`` is returned as-is — re-running
    ``np.ascontiguousarray`` on it would copy for nothing.  Otherwise the
    copy lands in the workspace's cached buffer when one is available.
    """
    if cols.flags.c_contiguous:
        return cols
    if workspace is None:
        return np.ascontiguousarray(cols)
    buffer = workspace.get("cols", cols.shape, cols.dtype)
    np.copyto(buffer, cols)
    return buffer


def _col2im(
    grad_cols: np.ndarray,
    padded_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: tuple[int, int],
    padding: tuple[int, int],
    out_shape: tuple[int, ...],
    workspace: ConvWorkspace | None = None,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter window gradients back to the image.

    ``grad_cols`` has shape ``(N, out_h, out_w, C, kh, kw)``; the result has
    the original (un-padded) input shape ``out_shape``.  With a workspace
    both the scatter scratch and the returned array are cached buffers (the
    result is always a *base* array, so ``Tensor._accumulate`` can adopt it
    without a defensive copy).
    """
    sh, sw = stride
    ph, pw = padding
    n, out_h, out_w = grad_cols.shape[:3]
    if workspace is not None:
        grad_padded = workspace.get("col2im_scratch", padded_shape, grad_cols.dtype)
        grad_padded.fill(0)
    else:
        grad_padded = np.zeros(padded_shape, dtype=grad_cols.dtype)
    # One strided slice-add per kernel offset: overlapping windows accumulate.
    moved = grad_cols.transpose(0, 3, 1, 2, 4, 5)  # (N, C, out_h, out_w, kh, kw)
    for i in range(kh):
        for j in range(kw):
            grad_padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += moved[
                :, :, :, :, i, j
            ]
    if ph or pw:
        h, w = out_shape[2], out_shape[3]
        if workspace is not None:
            grad_x = workspace.get("grad_x", out_shape, grad_cols.dtype)
            np.copyto(grad_x, grad_padded[:, :, ph : ph + h, pw : pw + w])
            return grad_x
        grad_padded = grad_padded[:, :, ph : ph + h, pw : pw + w]
    return grad_padded


# Cached col2im scatter operators, keyed by conv geometry.  Each entry is a
# CSR matrix (h*w, kh*kw*out_h*out_w) summing window-offset contributions
# into *interior* (un-padded) image positions — contributions that land in
# the padding are simply absent, so no work is spent on values the crop
# would discard.  One entry exists per distinct conv geometry in the model.
_COL2IM_OPS: dict[tuple, "object"] = {}


def _col2im_scatter_op(
    kh: int, kw: int, sh: int, sw: int, out_h: int, out_w: int,
    ph: int, pw: int, h: int, w: int,
):
    key = (kh, kw, sh, sw, out_h, out_w, ph, pw, h, w)
    op = _COL2IM_OPS.get(key)
    if op is None:
        i = np.arange(kh).reshape(-1, 1, 1, 1)
        j = np.arange(kw).reshape(1, -1, 1, 1)
        y = np.arange(out_h).reshape(1, 1, -1, 1)
        x = np.arange(out_w).reshape(1, 1, 1, -1)
        py = i + sh * y - ph
        px = j + sw * x - pw
        valid = (py >= 0) & (py < h) & (px >= 0) & (px < w)
        p = np.broadcast_to(py * w + px, valid.shape)[valid]
        q = np.arange(kh * kw * out_h * out_w).reshape(valid.shape)[valid]
        op = _sp.csr_matrix(
            (np.ones(p.size, dtype=np.float32), (p, q)),
            shape=(h * w, kh * kw * out_h * out_w),
        )
        op.sort_indices()
        _COL2IM_OPS[key] = op
    return op


def _col2im_t(
    grad_cols_t: np.ndarray,
    padded_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: tuple[int, int],
    padding: tuple[int, int],
    out_shape: tuple[int, ...],
    workspace: ConvWorkspace | None = None,
) -> np.ndarray:
    """:func:`_col2im` for channel-major window gradients.

    ``grad_cols_t`` has shape ``(C, kh, kw, N, out_h, out_w)`` — the natural
    output layout of the BSR input-gradient matmul (``(C*kh*kw, N*H'*W')``
    reshaped).  Instead of :func:`_col2im`'s ``kh*kw`` strided slice-adds
    (whose tiny spatial inner loops dominate at this library's image
    sizes), the scatter is one CSR product with a cached per-geometry
    operator over a ``(window offsets, C*N)`` staging of the gradient; the
    per-position accumulation order matches the slice-add loop's ``(i, j)``
    ascending order bitwise.  Falls back to slice-adds without scipy.
    """
    sh, sw = stride
    ph, pw = padding
    c, _, _, n, out_h, out_w = grad_cols_t.shape
    h, w = out_shape[2], out_shape[3]
    if _spt is not None:
        op = _col2im_scatter_op(kh, kw, sh, sw, out_h, out_w, ph, pw, h, w)
        q_dim, v_dim = kh * kw * out_h * out_w, c * n
        if workspace is not None:
            staged = workspace.get("col2im_g", (q_dim, v_dim), grad_cols_t.dtype)
            scattered = workspace.get("col2im_p", (h * w, v_dim), grad_cols_t.dtype)
        else:
            staged = np.empty((q_dim, v_dim), dtype=grad_cols_t.dtype)
            scattered = np.empty((h * w, v_dim), dtype=grad_cols_t.dtype)
        np.copyto(
            staged.reshape(kh, kw, out_h, out_w, c, n),
            grad_cols_t.transpose(1, 2, 4, 5, 0, 3),
        )
        scattered.fill(0)
        _spt.csr_matvecs(
            h * w, q_dim, v_dim, op.indptr, op.indices, op.data,
            staged.ravel(), scattered.ravel(),
        )
        src = scattered.reshape(h, w, c, n).transpose(3, 2, 0, 1)
        if workspace is not None:
            grad_x = workspace.get("grad_x", out_shape, grad_cols_t.dtype)
            np.copyto(grad_x, src)
            return grad_x
        return np.ascontiguousarray(src)
    padded_t_shape = (c, n, padded_shape[2], padded_shape[3])
    if workspace is not None:
        grad_padded = workspace.get(
            "col2im_scratch_t", padded_t_shape, grad_cols_t.dtype
        )
        grad_padded.fill(0)
    else:
        grad_padded = np.zeros(padded_t_shape, dtype=grad_cols_t.dtype)
    for i in range(kh):
        for j in range(kw):
            grad_padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += (
                grad_cols_t[:, i, j]
            )
    cropped = grad_padded[:, :, ph : ph + h, pw : pw + w]
    if workspace is not None:
        grad_x = workspace.get("grad_x", out_shape, grad_cols_t.dtype)
        np.copyto(grad_x, cropped.transpose(1, 0, 2, 3))
        return grad_x
    return np.ascontiguousarray(cropped.transpose(1, 0, 2, 3))


def _stage_grad_mat(
    grad: np.ndarray, n: int, out_h: int, out_w: int, c_out: int,
    workspace: ConvWorkspace | None,
) -> np.ndarray:
    """Output gradient ``(N, C_out, H', W')`` as a C-contiguous 2-D matrix.

    The reshape of the transposed view copies either way; with a workspace
    the copy lands in a cached buffer.
    """
    if workspace is not None:
        grad_mat = workspace.get("grad_mat", (n * out_h * out_w, c_out), grad.dtype)
        np.copyto(grad_mat.reshape(n, out_h, out_w, c_out), grad.transpose(0, 2, 3, 1))
        return grad_mat
    return grad.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)


def _accumulate_grad_w(
    weight, grad_mat: np.ndarray, cols_mat: np.ndarray,
    workspace: ConvWorkspace | None,
) -> None:
    """Accumulate the dense weight gradient ``grad_matᵀ @ cols_mat``.

    The cached grad_w buffer may be adopted as ``weight.grad``; when a
    previous accumulation is still pending (no ``zero_grad`` between
    backwards) overwriting it in place would corrupt the sum, so that rare
    path falls back to a fresh allocation.  Shared by the dense conv
    backward and the CSR :class:`~repro.sparse.kernels.Conv2dKernel`.
    """
    c_out = weight.shape[0]
    if workspace is not None and weight.grad is None:
        grad_w = workspace.get("grad_w", weight.shape, grad_mat.dtype)
        np.matmul(grad_mat.T, cols_mat, out=grad_w.reshape(c_out, cols_mat.shape[1]))
        weight._accumulate(grad_w)
    else:
        weight._accumulate((grad_mat.T @ cols_mat).reshape(weight.shape))


def _input_grad_workspace(x, workspace: ConvWorkspace | None):
    """Workspace for the input gradient, or ``None`` under the same
    pending-accumulation guard as :func:`_accumulate_grad_w`."""
    return workspace if x.grad is None else None


def conv2d(x, weight, bias=None, stride=1, padding=0, workspace=None) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-channel bias of shape ``(C_out,)``.
    stride, padding:
        Ints or ``(h, w)`` pairs.
    workspace:
        Optional :class:`ConvWorkspace` owned by the calling layer.  When
        given, every large intermediate (contiguous cols matrix, padded
        input, output, gradient buffers, col2im scratch) is re-used across
        calls, making the steady-state step allocation-free.  The output
        tensor then aliases a workspace buffer that the layer's *next*
        forward overwrites — the standard step lifetime of an activation.
    """
    x, weight = ensure_tensor(x), ensure_tensor(weight)
    bias_t = ensure_tensor(bias) if bias is not None else None
    stride_hw = _pair(stride)
    padding_hw = _pair(padding)
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(f"conv2d channel mismatch: input has {x.shape[1]}, weight expects {c_in}")

    cols, padded_shape, out_h, out_w = _im2col(
        x.data, kh, kw, stride_hw, padding_hw, workspace
    )
    n = x.shape[0]
    cols_mat = _contiguous_cols(cols, workspace).reshape(
        n * out_h * out_w, c_in * kh * kw
    )
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    if workspace is not None:
        out_mat = workspace.get("out_mat", (n * out_h * out_w, c_out), cols_mat.dtype)
        np.matmul(cols_mat, w_mat.T, out=out_mat)
        if bias_t is not None:
            np.add(out_mat, bias_t.data, out=out_mat)
        # Contiguous NCHW output (one cached transpose-copy): downstream
        # norm/pool reductions on a strided view would pay more than the
        # copy does, and the buffer is reused every step.
        out_data = workspace.get("out", (n, c_out, out_h, out_w), out_mat.dtype)
        np.copyto(out_data, out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2))
    else:
        out_mat = cols_mat @ w_mat.T  # (N*out_h*out_w, C_out)
        out_data = out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
        if bias_t is not None:
            out_data = out_data + bias_t.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)

    def backward(grad: np.ndarray) -> None:
        grad_mat = _stage_grad_mat(grad, n, out_h, out_w, c_out, workspace)
        if weight.requires_grad:
            _accumulate_grad_w(weight, grad_mat, cols_mat, workspace)
        if x.requires_grad:
            if workspace is not None:
                grad_cols = workspace.get(
                    "grad_cols", (n * out_h * out_w, c_in * kh * kw), grad.dtype
                )
                np.matmul(grad_mat, w_mat, out=grad_cols)
                grad_cols = grad_cols.reshape(n, out_h, out_w, c_in, kh, kw)
            else:
                grad_cols = (grad_mat @ w_mat).reshape(n, out_h, out_w, c_in, kh, kw)
            grad_x = _col2im(
                grad_cols, padded_shape, kh, kw, stride_hw, padding_hw, x.shape,
                _input_grad_workspace(x, workspace),
            )
            x._accumulate(grad_x)
        if bias_t is not None and bias_t.requires_grad:
            bias_t._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out_data, parents, backward)


def _max_pool2d_tiled(x, kh: int, kw: int) -> Tensor:
    """Non-overlapping max pool (kernel == stride).

    A pure reshape-reduction — no im2col, window copies, or argmax
    bookkeeping.  When H/W do not divide evenly the trailing rows/columns
    are cropped, exactly as the generic path's window enumeration skips
    them.  The backward replays the windows in the same row-major order as
    the generic path's ``argmax``, routing each gradient to the *first*
    position attaining the max (identical tie-breaking).
    """
    n, c, h, w = x.shape
    out_h, out_w = h // kh, w // kw
    hu, wu = out_h * kh, out_w * kw
    # Strided np.maximum over the kh*kw window offsets beats a reshape
    # reduction by an order of magnitude here: the reduced axes have length
    # kh/kw (tiny), so ufunc.reduce degenerates to per-pair inner loops.
    out_data = x.data[:, :, 0:hu:kh, 0:wu:kw].copy()
    for i in range(kh):
        for j in range(kw):
            if i or j:
                np.maximum(out_data, x.data[:, :, i:hu:kh, j:wu:kw], out=out_data)

    def backward(grad: np.ndarray) -> None:
        # Fresh buffer by design: _accumulate may adopt grad_x as x.grad, so
        # reusing a cached array would alias gradients across steps.
        # reprolint: disable-next=RPL005
        grad_x = np.zeros(x.shape, dtype=grad.dtype)
        unassigned = None
        for i in range(kh):
            for j in range(kw):
                take = np.equal(x.data[:, :, i:hu:kh, j:wu:kw], out_data)
                if unassigned is not None:
                    take &= unassigned
                np.multiply(grad, take, out=grad_x[:, :, i:hu:kh, j:wu:kw])
                if i < kh - 1 or j < kw - 1:
                    if unassigned is None:
                        unassigned = np.logical_not(take)
                    else:
                        unassigned &= np.logical_not(take, out=take)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def max_pool2d(x, kernel_size, stride=None) -> Tensor:
    """Max pooling over ``kernel_size`` windows (default stride = kernel)."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    stride_hw = _pair(stride) if stride is not None else (kh, kw)
    if stride_hw == (kh, kw) and x.shape[2] >= kh and x.shape[3] >= kw:
        return _max_pool2d_tiled(x, kh, kw)
    cols, padded_shape, out_h, out_w = _im2col(x.data, kh, kw, stride_hw, (0, 0))
    n, _, c = cols.shape[0], cols.shape[1], cols.shape[3]
    flat = _contiguous_cols(cols).reshape(n, out_h, out_w, c, kh * kw)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = out_data.transpose(0, 3, 1, 2)  # (N, C, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        # Cold path: strided pooling only (the common stride==kernel case is
        # handled by _max_pool2d_tiled above), and put_along_axis needs a
        # zeroed scatter target each call.
        # reprolint: disable-next=RPL005
        grad_cols = np.zeros((n, out_h, out_w, c, kh * kw), dtype=grad.dtype)
        np.put_along_axis(
            grad_cols, arg[..., None], grad.transpose(0, 2, 3, 1)[..., None], axis=-1
        )
        grad_cols = grad_cols.reshape(n, out_h, out_w, c, kh, kw)
        grad_x = _col2im(grad_cols, padded_shape, kh, kw, stride_hw, (0, 0), x.shape)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x, kernel_size, stride=None) -> Tensor:
    """Average pooling over ``kernel_size`` windows (default stride = kernel)."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    stride_hw = _pair(stride) if stride is not None else (kh, kw)
    cols, padded_shape, out_h, out_w = _im2col(x.data, kh, kw, stride_hw, (0, 0))
    out_data = cols.mean(axis=(4, 5)).transpose(0, 3, 1, 2)
    n, c = x.shape[0], x.shape[1]
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        spread = np.broadcast_to(
            (grad * scale).transpose(0, 2, 3, 1)[..., None, None],
            (n, out_h, out_w, c, kh, kw),
        )
        # _col2im's add.at needs a real (writable, contiguous) array, not the
        # zero-stride broadcast view; this materialization is that copy.
        # reprolint: disable-next=RPL005
        grad_x = _col2im(np.ascontiguousarray(spread), padded_shape, kh, kw, stride_hw, (0, 0), x.shape)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def pad2d(x, padding) -> Tensor:
    """Zero-pad the two trailing spatial dimensions by ``padding`` pixels."""
    x = ensure_tensor(x)
    ph, pw = _pair(padding)
    out_data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def backward(grad: np.ndarray) -> None:
        h, w = x.shape[2], x.shape[3]
        x._accumulate(grad[:, :, ph : ph + h, pw : pw + w])

    return Tensor._make(out_data, (x,), backward)
