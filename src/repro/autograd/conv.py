"""Differentiable 2-D convolution and pooling, implemented with im2col.

These are the performance-critical ops for the VGG/ResNet experiments.  The
forward pass lowers convolution to a single large matrix multiplication over
sliding windows (``numpy.lib.stride_tricks.sliding_window_view``); the
backward pass uses the classic col2im trick of ``KH*KW`` strided slice-adds,
avoiding any per-pixel Python loops.

All ops use NCHW layout, matching the rest of the library.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.autograd.tensor import Tensor, ensure_tensor

__all__ = ["conv2d", "max_pool2d", "avg_pool2d", "pad2d", "conv_output_size"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: tuple[int, int], padding: tuple[int, int]):
    """Extract sliding windows.

    Returns ``(cols, x_padded_shape, out_h, out_w)`` where ``cols`` has shape
    ``(N, out_h, out_w, C, kh, kw)`` and is a strided *view* when possible.
    """
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))  # (N, C, H', W', kh, kw)
    windows = windows[:, :, ::sh, ::sw]  # stride subsampling
    cols = windows.transpose(0, 2, 3, 1, 4, 5)  # (N, out_h, out_w, C, kh, kw)
    return cols, x.shape, out_h, out_w


def _col2im(
    grad_cols: np.ndarray,
    padded_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: tuple[int, int],
    padding: tuple[int, int],
    out_shape: tuple[int, ...],
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter window gradients back to the image.

    ``grad_cols`` has shape ``(N, out_h, out_w, C, kh, kw)``; the result has
    the original (un-padded) input shape ``out_shape``.
    """
    sh, sw = stride
    ph, pw = padding
    n, out_h, out_w = grad_cols.shape[:3]
    grad_padded = np.zeros(padded_shape, dtype=grad_cols.dtype)
    # One strided slice-add per kernel offset: overlapping windows accumulate.
    moved = grad_cols.transpose(0, 3, 1, 2, 4, 5)  # (N, C, out_h, out_w, kh, kw)
    for i in range(kh):
        for j in range(kw):
            grad_padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += moved[
                :, :, :, :, i, j
            ]
    if ph or pw:
        h, w = out_shape[2], out_shape[3]
        grad_padded = grad_padded[:, :, ph : ph + h, pw : pw + w]
    return grad_padded


def conv2d(x, weight, bias=None, stride=1, padding=0) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-channel bias of shape ``(C_out,)``.
    stride, padding:
        Ints or ``(h, w)`` pairs.
    """
    x, weight = ensure_tensor(x), ensure_tensor(weight)
    bias_t = ensure_tensor(bias) if bias is not None else None
    stride_hw = _pair(stride)
    padding_hw = _pair(padding)
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(f"conv2d channel mismatch: input has {x.shape[1]}, weight expects {c_in}")

    cols, padded_shape, out_h, out_w = _im2col(x.data, kh, kw, stride_hw, padding_hw)
    n = x.shape[0]
    cols_mat = np.ascontiguousarray(cols).reshape(n * out_h * out_w, c_in * kh * kw)
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    out_mat = cols_mat @ w_mat.T  # (N*out_h*out_w, C_out)
    out_data = out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    if bias_t is not None:
        out_data = out_data + bias_t.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)
        if weight.requires_grad:
            grad_w = grad_mat.T @ cols_mat  # (C_out, C_in*kh*kw)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = (grad_mat @ w_mat).reshape(n, out_h, out_w, c_in, kh, kw)
            grad_x = _col2im(grad_cols, padded_shape, kh, kw, stride_hw, padding_hw, x.shape)
            x._accumulate(grad_x)
        if bias_t is not None and bias_t.requires_grad:
            bias_t._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x, kernel_size, stride=None) -> Tensor:
    """Max pooling over ``kernel_size`` windows (default stride = kernel)."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    stride_hw = _pair(stride) if stride is not None else (kh, kw)
    cols, padded_shape, out_h, out_w = _im2col(x.data, kh, kw, stride_hw, (0, 0))
    n, _, c = cols.shape[0], cols.shape[1], cols.shape[3]
    flat = np.ascontiguousarray(cols).reshape(n, out_h, out_w, c, kh * kw)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = out_data.transpose(0, 3, 1, 2)  # (N, C, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.zeros((n, out_h, out_w, c, kh * kw), dtype=grad.dtype)
        np.put_along_axis(
            grad_cols, arg[..., None], grad.transpose(0, 2, 3, 1)[..., None], axis=-1
        )
        grad_cols = grad_cols.reshape(n, out_h, out_w, c, kh, kw)
        grad_x = _col2im(grad_cols, padded_shape, kh, kw, stride_hw, (0, 0), x.shape)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x, kernel_size, stride=None) -> Tensor:
    """Average pooling over ``kernel_size`` windows (default stride = kernel)."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    stride_hw = _pair(stride) if stride is not None else (kh, kw)
    cols, padded_shape, out_h, out_w = _im2col(x.data, kh, kw, stride_hw, (0, 0))
    out_data = cols.mean(axis=(4, 5)).transpose(0, 3, 1, 2)
    n, c = x.shape[0], x.shape[1]
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        spread = np.broadcast_to(
            (grad * scale).transpose(0, 2, 3, 1)[..., None, None],
            (n, out_h, out_w, c, kh, kw),
        )
        grad_x = _col2im(np.ascontiguousarray(spread), padded_shape, kh, kw, stride_hw, (0, 0), x.shape)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def pad2d(x, padding) -> Tensor:
    """Zero-pad the two trailing spatial dimensions by ``padding`` pixels."""
    x = ensure_tensor(x)
    ph, pw = _pair(padding)
    out_data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def backward(grad: np.ndarray) -> None:
        h, w = x.shape[2], x.shape[3]
        x._accumulate(grad[:, :, ph : ph + h, pw : pw + w])

    return Tensor._make(out_data, (x,), backward)
