"""Autograd support for fixed sparse matrices (GNN adjacency propagation).

Graph neural networks propagate node features with ``A_hat @ X`` where
``A_hat`` is a (normalized) adjacency matrix.  The adjacency is structural
data, never trained, so it participates in the graph only as a constant:
:func:`spmm` differentiates through ``X`` alone using ``A_hat.T`` on the
backward pass.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, ensure_tensor

__all__ = ["spmm"]


def spmm(adjacency: sp.spmatrix, x) -> Tensor:
    """Sparse-dense product ``adjacency @ x`` with gradient w.r.t. ``x``.

    Parameters
    ----------
    adjacency:
        A scipy sparse matrix of shape ``(M, N)``; treated as a constant.
    x:
        Dense tensor of shape ``(N, D)``.
    """
    if not sp.issparse(adjacency):
        raise TypeError(f"spmm expects a scipy sparse matrix, got {type(adjacency)!r}")
    x = ensure_tensor(x)
    if x.ndim != 2:
        raise ValueError(f"spmm expects a 2-D feature matrix, got shape {x.shape}")
    adjacency = adjacency.tocsr()
    out_data = np.asarray(adjacency @ x.data, dtype=x.dtype)
    adjacency_t = adjacency.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.asarray(adjacency_t @ grad, dtype=x.dtype))

    return Tensor._make(out_data, (x,), backward)
