"""Differentiable primitive operations on :class:`~repro.autograd.tensor.Tensor`.

Every function takes tensors (or array-likes, which are promoted to constant
tensors), computes the forward result with numpy, and registers a backward
closure that routes the output gradient to each parent via the op's local
Jacobian-vector product.  Broadcasting is supported everywhere numpy supports
it; the adjoint of broadcasting is handled by
:func:`repro.autograd.tensor._unbroadcast`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, ensure_tensor, _unbroadcast

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "matmul",
    "exp",
    "log",
    "sqrt",
    "abs",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "clip",
    "maximum",
    "minimum",
    "where",
    "sum",
    "mean",
    "var",
    "batch_norm",
    "max",
    "min",
    "reshape",
    "transpose",
    "getitem",
    "cat",
    "stack",
    "softmax",
    "log_softmax",
]


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------


def add(a, b) -> Tensor:
    """Elementwise ``a + b`` with numpy broadcasting."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad, a.shape))
        b._accumulate(_unbroadcast(grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def sub(a, b) -> Tensor:
    """Elementwise ``a - b`` with numpy broadcasting."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad, a.shape))
        b._accumulate(_unbroadcast(-grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def mul(a, b) -> Tensor:
    """Elementwise ``a * b`` with numpy broadcasting."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * b.data, a.shape))
        b._accumulate(_unbroadcast(grad * a.data, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def div(a, b) -> Tensor:
    """Elementwise ``a / b`` with numpy broadcasting."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad / b.data, a.shape))
        b._accumulate(_unbroadcast(-grad * a.data / (b.data * b.data), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def neg(a) -> Tensor:
    """Elementwise negation."""
    a = ensure_tensor(a)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(-grad)

    return Tensor._make(-a.data, (a,), backward)


def pow(a, exponent: float) -> Tensor:
    """Elementwise power with a constant scalar exponent."""
    a = ensure_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("pow supports only constant scalar exponents")
    exponent = float(exponent)
    out_data = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * exponent * a.data ** (exponent - 1.0))

    return Tensor._make(out_data, (a,), backward)


def matmul(a, b) -> Tensor:
    """Matrix product ``a @ b``.

    Supports 2-D matrices and batched matmul with broadcasting over leading
    batch dimensions (the same cases ``numpy.matmul`` supports for ndim ≥ 2).
    1-D operands are not supported; reshape to explicit matrices instead.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError(
            f"matmul requires ndim >= 2 operands, got {a.ndim} and {b.ndim}; "
            "reshape 1-D vectors explicitly"
        )
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        grad_a = grad @ np.swapaxes(b.data, -1, -2)
        grad_b = np.swapaxes(a.data, -1, -2) @ grad
        a._accumulate(_unbroadcast(grad_a, a.shape))
        b._accumulate(_unbroadcast(grad_b, b.shape))

    return Tensor._make(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# elementwise nonlinearities
# ----------------------------------------------------------------------


def exp(a) -> Tensor:
    """Elementwise exponential."""
    a = ensure_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data)

    return Tensor._make(out_data, (a,), backward)


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = ensure_tensor(a)
    out_data = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / a.data)

    return Tensor._make(out_data, (a,), backward)


def sqrt(a) -> Tensor:
    """Elementwise square root."""
    a = ensure_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * 0.5 / out_data)

    return Tensor._make(out_data, (a,), backward)


def abs(a) -> Tensor:
    """Elementwise absolute value (sub-gradient 0 at the kink)."""
    a = ensure_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * np.sign(a.data))

    return Tensor._make(out_data, (a,), backward)


def tanh(a) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = ensure_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (1.0 - out_data * out_data))

    return Tensor._make(out_data, (a,), backward)


def sigmoid(a) -> Tensor:
    """Numerically stable elementwise logistic sigmoid."""
    a = ensure_tensor(a)
    x = a.data
    out_data = np.empty_like(x)
    positive = x >= 0
    out_data[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out_data[~positive] = exp_x / (1.0 + exp_x)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (a,), backward)


def relu(a) -> Tensor:
    """Elementwise rectified linear unit."""
    a = ensure_tensor(a)
    out_data = np.maximum(a.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (a.data > 0))

    return Tensor._make(out_data, (a,), backward)


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with constant negative slope."""
    a = ensure_tensor(a)
    slope = float(negative_slope)
    out_data = np.where(a.data > 0, a.data, slope * a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * np.where(a.data > 0, 1.0, slope).astype(grad.dtype))

    return Tensor._make(out_data, (a,), backward)


def clip(a, low: float | None, high: float | None) -> Tensor:
    """Elementwise clamp to ``[low, high]`` (gradient 0 outside the range)."""
    a = ensure_tensor(a)
    out_data = np.clip(a.data, low, high)

    def backward(grad: np.ndarray) -> None:
        inside = np.ones_like(a.data, dtype=bool)
        if low is not None:
            inside &= a.data >= low
        if high is not None:
            inside &= a.data <= high
        a._accumulate(grad * inside)

    return Tensor._make(out_data, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum (gradient splits 50/50 on exact ties)."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a_wins = a.data > b.data
        tie = a.data == b.data
        grad_a = grad * (a_wins + 0.5 * tie)
        grad_b = grad * (~a_wins & ~tie) + grad * (0.5 * tie)
        a._accumulate(_unbroadcast(grad_a.astype(grad.dtype), a.shape))
        b._accumulate(_unbroadcast(grad_b.astype(grad.dtype), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Elementwise minimum (gradient splits 50/50 on exact ties)."""
    return neg(maximum(neg(a), neg(b)))


def where(condition, a, b) -> Tensor:
    """Elementwise select: ``a`` where ``condition`` else ``b``.

    ``condition`` is a boolean array (not differentiated).
    """
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * cond, a.shape))
        b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------


def _expand_reduced(grad: np.ndarray, shape: tuple[int, ...], axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(ax % len(shape) for ax in axes)
    if not keepdims:
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape)


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all elements when ``axis=None``)."""
    a = ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims).astype(a.dtype))

    return Tensor._make(out_data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis``."""
    a = ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.shape[ax % a.ndim] for ax in ((axis,) if isinstance(axis, int) else axis)]
    )

    def backward(grad: np.ndarray) -> None:
        expanded = _expand_reduced(grad, a.shape, axis, keepdims)
        a._accumulate((expanded / count).astype(a.dtype))

    return Tensor._make(out_data, (a,), backward)


def var(a, axis=None, keepdims: bool = False) -> Tensor:
    """Biased (population) variance over ``axis``, composed from primitives.

    The biased estimator matches what batch normalization uses in training
    mode, which is the only consumer in this library.
    """
    a = ensure_tensor(a)
    mu = mean(a, axis=axis, keepdims=True)
    centered = sub(a, mu)
    squared = mul(centered, centered)
    result = mean(squared, axis=axis, keepdims=keepdims)
    return result


def batch_norm(
    x, gamma, beta, axis: Sequence[int], eps: float
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Fused training-mode batch normalization with closed-form backward.

    Composing batch norm from elementwise primitives builds a ten-node
    graph per layer and dominates conv-model step profiles (each node
    materializes a full activation-sized array forward and backward).  The
    fused node makes one pass with the textbook gradient:

    ``dx = gamma * inv_std * (dy - (sum(dy) + x_hat * sum(dy * x_hat)) / m)``

    where the sums run over ``axis`` and ``m`` is the reduced element
    count.  Returns ``(out, batch_mean, batch_var)``: the normalized
    tensor ``(x - mu) / sqrt(var + eps) * gamma + beta`` with biased
    (population) variance exactly like the composed form, plus the flat
    batch statistics for the layer's running-estimate update.
    """
    x = ensure_tensor(x)
    gamma = ensure_tensor(gamma)
    beta = ensure_tensor(beta)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    data = x.data
    m = 1
    for ax in axes:
        m *= data.shape[ax % data.ndim]
    pshape = tuple(
        1 if ax in tuple(a % data.ndim for a in axes) else data.shape[ax]
        for ax in range(data.ndim)
    )
    # ufunc.reduce over the short strided H/W axes of NCHW activations is
    # an order of magnitude slower than einsum's strided-sum loops at the
    # small spatial sizes this library targets, so the 4d path sums via
    # einsum (plain left-to-right accumulation instead of pairwise — a
    # different rounding, but within normal float32 reduction tolerance).
    nchw = data.ndim == 4 and tuple(a % 4 for a in axes) == (0, 2, 3)
    if nchw:
        mu = (np.einsum("nchw->c", data) / m).reshape(pshape)
    else:
        mu = data.mean(axis=axes, keepdims=True)
    centered = data - mu
    if nchw:
        var_ = (np.einsum("nchw,nchw->c", centered, centered) / m).reshape(pshape)
    else:
        var_ = np.mean(centered * centered, axis=axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(var_ + eps)
    np.multiply(centered, inv_std, out=centered)
    x_hat = centered
    out_data = x_hat * gamma.data.reshape(pshape)
    out_data += beta.data.reshape(pshape)

    def backward(grad: np.ndarray) -> None:
        if nchw:
            dbeta = np.einsum("nchw->c", grad).reshape(pshape)
            dgamma = np.einsum("nchw,nchw->c", grad, x_hat).reshape(pshape)
        else:
            dbeta = grad.sum(axis=axes, keepdims=True)
            dgamma = (grad * x_hat).sum(axis=axes, keepdims=True)
        beta._accumulate(dbeta.reshape(beta.shape))
        gamma._accumulate(dgamma.reshape(gamma.shape))
        scale = gamma.data.reshape(pshape) * inv_std
        # One full-size temporary, mutated in place (activation-sized
        # allocations are the dominant cost of the composed form).
        dx = x_hat * dgamma
        dx += dbeta
        dx /= m
        np.subtract(grad, dx, out=dx)
        dx *= scale
        x._accumulate(dx)

    result = Tensor._make(out_data, (x, gamma, beta), backward)
    return result, mu.reshape(-1), var_.reshape(-1)


def _extreme(a, axis, keepdims: bool, mode: str) -> Tensor:
    a = ensure_tensor(a)
    reducer = np.max if mode == "max" else np.min
    out_data = reducer(a.data, axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        expanded_out = _expand_reduced(out_data if keepdims else np.asarray(out_data), a.shape, axis, keepdims)
        mask = (a.data == expanded_out).astype(a.dtype)
        # Split gradient equally among ties so the op stays a valid sub-gradient.
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        expanded_grad = _expand_reduced(grad, a.shape, axis, keepdims)
        a._accumulate((expanded_grad * mask / counts).astype(a.dtype))

    return Tensor._make(out_data, (a,), backward)


def max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Maximum over ``axis`` (gradient split among ties)."""
    return _extreme(a, axis, keepdims, "max")


def min(a, axis=None, keepdims: bool = False) -> Tensor:
    """Minimum over ``axis`` (gradient split among ties)."""
    return _extreme(a, axis, keepdims, "min")


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------


def reshape(a, shape: Sequence[int]) -> Tensor:
    """Reshape without changing the element order."""
    a = ensure_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad.reshape(a.shape))

    return Tensor._make(out_data, (a,), backward)


def transpose(a, axes: Sequence[int] | None = None) -> Tensor:
    """Permute dimensions (reverse them when ``axes`` is None)."""
    a = ensure_tensor(a)
    out_data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(np.transpose(grad, inverse))

    return Tensor._make(out_data, (a,), backward)


def getitem(a, index) -> Tensor:
    """Numpy-style indexing/slicing with gradient scatter-add on backward."""
    a = ensure_tensor(a)
    if isinstance(index, Tensor):
        index = index.data
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        a._accumulate(full)

    return Tensor._make(out_data, (a,), backward)


def cat(tensors: Iterable, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    parts = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([p.data for p in parts], axis=axis)
    sizes = [p.shape[axis] for p in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for part, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            part._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(parts), backward)


def stack(tensors: Iterable, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    parts = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([p.data for p in parts], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(parts), axis=axis)
        for part, piece in zip(parts, slices):
            part._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(parts), backward)


# ----------------------------------------------------------------------
# softmax family (fused for numerical stability and speed)
# ----------------------------------------------------------------------


def log_softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(a))`` along ``axis``."""
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_sum = grad.sum(axis=axis, keepdims=True)
        a._accumulate(grad - softmax_data * grad_sum)

    return Tensor._make(out_data, (a,), backward)


def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exp_data = np.exp(shifted)
    out_data = exp_data / exp_data.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (a,), backward)
