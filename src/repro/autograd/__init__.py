"""Reverse-mode automatic differentiation on numpy arrays.

This package is the lowest substrate of the reproduction: a small but complete
autograd engine in the spirit of PyTorch, sufficient to train the CNN / GNN
models the DST-EE paper evaluates.  The public surface is:

* :class:`~repro.autograd.tensor.Tensor` — an ndarray wrapper that records a
  computation graph and supports ``backward()``.
* :func:`~repro.autograd.tensor.tensor` — convenience constructor.
* :func:`~repro.autograd.tensor.no_grad` — context manager disabling graph
  recording (used for evaluation and for the mask surgery in drop-and-grow).
* functional ops re-exported from :mod:`~repro.autograd.ops`,
  :mod:`~repro.autograd.conv` and :mod:`~repro.autograd.sparse_ops`.
* :func:`~repro.autograd.gradcheck.gradcheck` — numerical gradient checking
  used extensively in the test-suite.
"""

from repro.autograd.tensor import (
    Tensor,
    tensor,
    no_grad,
    is_grad_enabled,
    zeros,
    ones,
    randn,
    DEFAULT_DTYPE,
)
from repro.autograd.ops import (
    abs as abs_,
    cat,
    clip,
    exp,
    log,
    log_softmax,
    matmul,
    maximum,
    mean,
    relu,
    leaky_relu,
    reshape,
    sigmoid,
    softmax,
    sqrt,
    stack,
    sum as sum_,
    tanh,
    transpose,
    where,
)
from repro.autograd.conv import avg_pool2d, conv2d, max_pool2d, pad2d
from repro.autograd.sparse_ops import spmm
from repro.autograd.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "zeros",
    "ones",
    "randn",
    "DEFAULT_DTYPE",
    "abs_",
    "cat",
    "clip",
    "exp",
    "log",
    "log_softmax",
    "matmul",
    "maximum",
    "mean",
    "relu",
    "leaky_relu",
    "reshape",
    "sigmoid",
    "softmax",
    "sqrt",
    "stack",
    "sum_",
    "tanh",
    "transpose",
    "where",
    "avg_pool2d",
    "conv2d",
    "max_pool2d",
    "pad2d",
    "spmm",
    "gradcheck",
]
