"""The :class:`Tensor` class — a numpy ndarray with reverse-mode autodiff.

Design notes
------------
Each :class:`Tensor` wraps a ``numpy.ndarray`` (``.data``) and, when it is the
result of a differentiable operation, records the parent tensors and a local
backward closure.  Calling :meth:`Tensor.backward` on a scalar (or with an
explicit output gradient) performs a topological sort of the recorded graph
and accumulates gradients into ``.grad`` of every tensor with
``requires_grad=True``.

Gradients are plain ``numpy.ndarray`` objects (not Tensors): the engine does
not support higher-order differentiation, which the paper never needs — the
GraSP baseline's Hessian-vector product is computed with finite differences
instead (see :mod:`repro.sparse.static`).

Graph recording can be disabled globally with the :func:`no_grad` context
manager; inside it every op returns a constant tensor, which is how
evaluation passes and mask-surgery code avoid building graphs.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np
from repro.rng import resolve_rng

DEFAULT_DTYPE = np.float32

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Inside the block every operation behaves like a pure numpy computation:
    results have ``requires_grad=False`` and no parents.  Nesting is allowed.
    """
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shaped like a broadcast result) back to ``shape``.

    Broadcasting in the forward pass implicitly replicates data; the adjoint
    of replication is summation, so gradients must be summed over the axes
    that were expanded.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were length-1 in the original shape.
    squeeze_axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if squeeze_axes:
        grad = grad.sum(axis=squeeze_axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    """Convert to ndarray; Python floats/lists default to float32.

    Explicitly-passed ndarrays keep their dtype (so float64 computations —
    e.g. gradient checking — stay float64).
    """
    if isinstance(value, (np.ndarray, np.generic)) and dtype is None:
        return np.asarray(value)
    arr = np.asarray(value, dtype=dtype if dtype is not None else None)
    if arr.dtype == np.float64 and dtype is None:
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``.  Python floats/lists are
        converted to :data:`DEFAULT_DTYPE` (float32).
    requires_grad:
        When True, :meth:`backward` accumulates a gradient into ``.grad``.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self.name = name
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        from repro.autograd import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Return a graph-detached cast copy."""
        return Tensor(self.data.astype(dtype), requires_grad=False)

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op result, recording the graph only when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        if grad.dtype != self.data.dtype:
            grad = grad.astype(self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            May be omitted only when this tensor is a scalar, in which case
            it defaults to 1.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar tensor; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Interior nodes do not need to keep their gradient (leaves
                # have no backward closure), freeing memory early.
                if node._parents:
                    node.grad = None if node is not self else node.grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # operator overloads (implementations live in repro.autograd.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.autograd import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __mul__(self, other):
        from repro.autograd import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other):
        from repro.autograd import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.autograd import ops

        return ops.sub(other, self)

    def __truediv__(self, other):
        from repro.autograd import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.autograd import ops

        return ops.div(other, self)

    def __neg__(self):
        from repro.autograd import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from repro.autograd import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other):
        from repro.autograd import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from repro.autograd import ops

        return ops.getitem(self, index)

    # reductions / shape as methods for convenience -------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.min(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.autograd import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def flatten(self, start_dim: int = 0):
        """Collapse dims from ``start_dim`` onward into one."""
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def transpose(self, *axes):
        from repro.autograd import ops

        return ops.transpose(self, axes if axes else None)

    def abs(self):
        from repro.autograd import ops

        return ops.abs(self)

    def exp(self):
        from repro.autograd import ops

        return ops.exp(self)

    def log(self):
        from repro.autograd import ops

        return ops.log(self)

    def sqrt(self):
        from repro.autograd import ops

        return ops.sqrt(self)

    def relu(self):
        from repro.autograd import ops

        return ops.relu(self)

    def sigmoid(self):
        from repro.autograd import ops

        return ops.sigmoid(self)

    def tanh(self):
        from repro.autograd import ops

        return ops.tanh(self)

    def var(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.var(self, axis=axis, keepdims=keepdims)


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------


def tensor(data, requires_grad: bool = False, name: str | None = None) -> Tensor:
    """Construct a :class:`Tensor` (alias of the class constructor)."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def zeros(*shape, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """Tensor of zeros with the given shape."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """Tensor of ones with the given shape."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def randn(
    *shape,
    requires_grad: bool = False,
    rng: np.random.Generator | None = None,
    dtype=DEFAULT_DTYPE,
) -> Tensor:
    """Tensor of standard-normal samples with the given shape."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    generator = resolve_rng(rng)
    return Tensor(generator.standard_normal(shape).astype(dtype), requires_grad=requires_grad)


def ensure_tensor(value) -> Tensor:
    """Coerce numpy arrays / scalars into constant tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
