"""Numerical gradient checking for the autograd engine.

Used throughout the test-suite to validate every op's backward pass against a
central finite-difference approximation computed in float64.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(func(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    base = target.data.astype(np.float64).copy()
    grad = np.zeros_like(base)
    flat_base = base.reshape(-1)
    flat_grad = grad.reshape(-1)

    def objective() -> float:
        out = func(*inputs)
        return float(np.sum(out.data, dtype=np.float64))

    for i in range(flat_base.size):
        original = flat_base[i]
        flat_base[i] = original + eps
        target.data = base.reshape(target.shape).astype(target.dtype)
        plus = objective()
        flat_base[i] = original - eps
        target.data = base.reshape(target.shape).astype(target.dtype)
        minus = objective()
        flat_base[i] = original
        target.data = base.reshape(target.shape).astype(target.dtype)
        flat_grad[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-4,
    atol: float = 1e-2,
    rtol: float = 1e-2,
) -> bool:
    """Compare analytic gradients of ``sum(func(*inputs))`` with finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    True on success.  Inputs must be float tensors; those with
    ``requires_grad=False`` are treated as constants and skipped.

    Tolerances default to float32-friendly values; tighten them when passing
    float64 inputs.
    """
    for tensor_in in inputs:
        tensor_in.zero_grad()
    out = func(*inputs)
    out.backward(np.ones_like(out.data))

    checked_any = False
    for idx, tensor_in in enumerate(inputs):
        if not tensor_in.requires_grad:
            continue
        checked_any = True
        analytic = tensor_in.grad
        if analytic is None:
            raise AssertionError(f"input {idx} received no gradient")
        numeric = numerical_gradient(func, inputs, idx, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    if not checked_any:
        raise AssertionError("gradcheck called with no differentiable inputs")
    return True
