"""Seeded-RNG discipline helpers.

Every stochastic component in the deterministic training paths (layers,
data loaders, sparse controllers, RL workloads) takes an ``rng`` argument
and falls back to a *seeded* generator when the caller passes ``None``.
An argless ``np.random.default_rng()`` would draw OS entropy instead,
which silently breaks bitwise kill-and-resume and the serial==parallel
trajectory guarantee — reprolint rule RPL001 rejects it.

:func:`resolve_rng` is the single sanctioned fallback: it returns the
caller's generator untouched, or a generator seeded with
:data:`DEFAULT_SEED` so "I did not pass an rng" is itself a reproducible
choice.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "resolve_rng"]

# One repo-wide default so components constructed without an explicit rng
# still produce identical runs across processes and machines.
DEFAULT_SEED = 0


def resolve_rng(
    rng: np.random.Generator | None, seed: int = DEFAULT_SEED
) -> np.random.Generator:
    """Return ``rng`` unchanged, or a deterministically seeded generator.

    Use this instead of ``np.random.default_rng()`` (no argument) for
    optional-``rng`` fallbacks; the argless form seeds from OS entropy
    and makes the component unreproducible by default.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(seed)
