"""The acquisition function of Eq. 1 and its two components.

``score = |∂l/∂W|  +  c · ln(t) / (N + ε)``

The first term (exploitation) is RigL's greedy gradient-magnitude rule; the
second (exploration) is a UCB-style coverage bonus driven by the occurrence
counters of :class:`~repro.sparse.counter.CoverageTracker`.  Setting ``c=0``
recovers RigL exactly, which the ablation benches exploit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["exploitation_score", "exploration_score", "acquisition_score"]


def exploitation_score(grad: np.ndarray) -> np.ndarray:
    """Exploitation term: absolute dense gradient (Eq. 1, first term)."""
    return np.abs(grad)


def exploration_score(counter: np.ndarray, step: int, c: float, epsilon: float = 1.0) -> np.ndarray:
    """Exploration term ``c·ln(t)/(N+ε)`` (Eq. 1, second term).

    Parameters
    ----------
    counter:
        Occurrence counts ``N`` (how many rounds each weight was active).
    step:
        Current training iteration ``t`` (must be ≥ 1; the log of the global
        step keeps the bonus growing slowly over training, so long-ignored
        weights eventually out-score small-gradient active candidates).
    c:
        Trade-off coefficient (the paper sweeps 1e-4 … 5e-3 in Fig. 3).
    epsilon:
        Positive constant keeping the denominator non-zero.  With the
        default 1.0 every never-active weight receives the same bonus
        ``c·ln(t)`` and ties are broken by the gradient term.
    """
    if step < 1:
        raise ValueError(f"step must be >= 1 for ln(t), got {step}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return c * np.log(float(step)) / (counter + epsilon)


def acquisition_score(
    grad: np.ndarray,
    counter: np.ndarray,
    step: int,
    c: float,
    epsilon: float = 1.0,
) -> np.ndarray:
    """Full DST-EE acquisition score (Eq. 1).

    Computed with two buffers and in-place ufuncs — this runs over the full
    dense weight shape every mask-update round, so temporaries matter.
    """
    if step < 1:
        raise ValueError(f"step must be >= 1 for ln(t), got {step}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    score = np.abs(grad)
    bonus = counter + epsilon
    np.divide(c * np.log(float(step)), bonus, out=bonus)
    np.add(score, bonus, out=score)
    return score
