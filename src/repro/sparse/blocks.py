"""Block-structured masks: tile indexing, triplet (COO) form, CSR expansion.

Unstructured CSR is BLAS-hostile at the paper's conv shapes (the committed
BENCH_engine.json shows the csr backend *losing* to dense on vgg_small at
every sparsity), so the block path constrains masks to ``B×B`` tiles of the
2-D weight view — the idiom of Graphcore's dynamic-sparsity stack.  Three
pieces live here:

* :class:`MatrixBlockIndexer` — the tiling geometry of one 2-D weight view:
  tile↔flat mappings and vectorized score pooling, so every existing drop
  and growth rule works unchanged at block granularity.  Shapes that are
  not divisible by the block size are rejected loudly (callers that want a
  fallback catch this and use ``block_size=1``, i.e. unstructured).
* :class:`BlockMask` — a mask as a sorted set of active block ids with COO
  ``(row, col)`` triplet views.  Drop-and-grow edits manipulate
  ``O(nnz_blocks)`` indices instead of scanning dense boolean masks.
* :func:`expand_block_csr` — vectorized ``O(nnz)`` expansion of an active
  block set into element-level CSR structure (``indptr``/``indices`` plus
  the element rows), used by the BSR training kernel and the serving
  loaders.  No per-row Python loop: ragged per-row tiling is done with
  ``repeat``/``cumsum`` index arithmetic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MatrixBlockIndexer", "BlockMask", "expand_block_csr"]


class MatrixBlockIndexer:
    """Tiling geometry of an ``(rows, cols)`` matrix in ``B×B`` blocks.

    Flat block ids enumerate tiles row-major: block ``b`` covers element
    rows ``[B*(b // block_cols), ...)`` and columns ``[B*(b % block_cols),
    ...)``.
    """

    def __init__(self, rows: int, cols: int, block_size: int):
        rows, cols, block_size = int(rows), int(cols), int(block_size)
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if rows % block_size or cols % block_size:
            raise ValueError(
                f"matrix shape ({rows}, {cols}) is not divisible by "
                f"block_size {block_size}; choose a divisor of both "
                f"dimensions or fall back to block_size=1 (unstructured)"
            )
        self.rows = rows
        self.cols = cols
        self.block_size = block_size
        self.block_rows = rows // block_size
        self.block_cols = cols // block_size
        self.n_blocks = self.block_rows * self.block_cols

    def __repr__(self) -> str:
        return (
            f"MatrixBlockIndexer(rows={self.rows}, cols={self.cols}, "
            f"block_size={self.block_size})"
        )

    # ------------------------------------------------------------------
    # mappings
    # ------------------------------------------------------------------
    def block_view(self, mat2d: np.ndarray) -> np.ndarray:
        """``(block_rows, block_cols, B, B)`` view-like tiling of ``mat2d``."""
        b = self.block_size
        return mat2d.reshape(self.block_rows, b, self.block_cols, b).transpose(0, 2, 1, 3)

    def pool(self, values2d: np.ndarray) -> np.ndarray:
        """Mean of ``values2d`` over each tile, flat ``(n_blocks,)``.

        Mean (not sum) pooling keeps block scores on the same scale as
        element scores, so global (cross-layer) rankings that mix block
        and unstructured layers stay comparable.
        """
        b = self.block_size
        values2d = np.asarray(values2d)
        if b == 1:
            return values2d.reshape(-1).copy()
        # Two contiguous reductions instead of a mean over the strided 4-d
        # block view: same result, ~2x less memory-traffic time per round.
        row_sum = values2d.reshape(self.block_rows, b, self.cols).sum(axis=1)
        pooled = row_sum.reshape(self.block_rows, self.block_cols, b).sum(axis=2)
        return pooled.reshape(-1) / (b * b)

    def blocks_of_flat(self, flat_idx: np.ndarray) -> np.ndarray:
        """Flat block id of each flat *element* index."""
        b = self.block_size
        rows, cols = np.divmod(np.asarray(flat_idx), self.cols)
        return (rows // b) * self.block_cols + (cols // b)

    def expand_blocks(self, block_idx: np.ndarray) -> np.ndarray:
        """Flat element indices covered by ``block_idx``, shape ``(k, B*B)``.

        Within each block the elements come out row-major, so
        ``result.reshape(k, B, B)`` is the tile in its natural layout.
        """
        b = self.block_size
        block_idx = np.asarray(block_idx, dtype=np.int64).reshape(-1)
        brow, bcol = np.divmod(block_idx, self.block_cols)
        top_left = brow * b * self.cols + bcol * b
        offsets = (np.arange(b)[:, None] * self.cols + np.arange(b)[None, :]).reshape(-1)
        return top_left[:, None] + offsets[None, :]


class BlockMask:
    """A block mask as a sorted array of active flat block ids (COO-style).

    The triplet view (``block_rows``/``block_cols`` plus the implicit all-B
    block shape) is what drop-and-grow manipulates: edits are set
    operations on ``O(nnz_blocks)`` sorted int arrays, never a scan of the
    dense boolean mask.
    """

    def __init__(self, indexer: MatrixBlockIndexer, active_blocks: np.ndarray):
        self.indexer = indexer
        # Sort + adjacent-compare dedup instead of np.unique: the hash-based
        # unique kernel is the top cost in mask-update profiles, and inputs
        # here are typically already sorted (sort of sorted data is cheap).
        active = np.sort(np.asarray(active_blocks, dtype=np.int64).reshape(-1))
        if active.size > 1:
            distinct = np.empty(active.size, dtype=bool)
            distinct[0] = True
            np.not_equal(active[1:], active[:-1], out=distinct[1:])
            if not distinct.all():
                active = active[distinct]
        if active.size and (active[0] < 0 or active[-1] >= indexer.n_blocks):
            raise ValueError(
                f"block ids must be in [0, {indexer.n_blocks}), "
                f"got range [{active[0]}, {active[-1]}]"
            )
        self.active_blocks = active

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, indexer: MatrixBlockIndexer, mask2d: np.ndarray, validate: bool = True
    ) -> "BlockMask":
        """Pool a dense boolean mask into block form.

        With ``validate=True`` a tile that is neither fully active nor
        fully inactive raises — a half-filled tile means the caller mixed
        element-granular edits into a block-structured mask.
        """
        tiles = indexer.block_view(np.asarray(mask2d, dtype=bool))
        any_on = tiles.any(axis=(2, 3)).reshape(-1)
        if validate:
            all_on = tiles.all(axis=(2, 3)).reshape(-1)
            if not np.array_equal(any_on, all_on):
                broken = int(np.count_nonzero(any_on & ~all_on))
                raise ValueError(
                    f"mask is not block-structured: {broken} tile(s) of size "
                    f"{indexer.block_size} are partially active"
                )
        return cls(indexer, np.flatnonzero(any_on))

    def to_dense(self) -> np.ndarray:
        """Dense boolean ``(rows, cols)`` mask with every active tile set."""
        idx = self.indexer
        flat = np.zeros(idx.rows * idx.cols, dtype=bool)
        if self.active_blocks.size:
            flat[idx.expand_blocks(self.active_blocks).reshape(-1)] = True
        return flat.reshape(idx.rows, idx.cols)

    # ------------------------------------------------------------------
    # COO triplet view
    # ------------------------------------------------------------------
    @property
    def block_row_indices(self) -> np.ndarray:
        return self.active_blocks // self.indexer.block_cols

    @property
    def block_col_indices(self) -> np.ndarray:
        return self.active_blocks % self.indexer.block_cols

    def triplets(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(block_rows, block_cols, block_size)`` — the COO triplet form."""
        return self.block_row_indices, self.block_col_indices, self.indexer.block_size

    # ------------------------------------------------------------------
    # O(nnz_blocks) edits
    # ------------------------------------------------------------------
    def drop(self, block_idx: np.ndarray) -> None:
        """Deactivate ``block_idx`` (ids not currently active are ignored)."""
        drop = np.asarray(block_idx, dtype=np.int64).reshape(-1)
        active = self.active_blocks
        if drop.size == 0 or active.size == 0:
            return
        # searchsorted membership instead of setdiff1d: the active set is
        # sorted unique, so this is O((nnz + k) log nnz) with no hashing.
        pos = np.searchsorted(active, drop)
        pos = pos[(pos < active.size) & (active[np.minimum(pos, active.size - 1)] == drop)]
        keep = np.ones(active.size, dtype=bool)
        keep[pos] = False
        self.active_blocks = active[keep]

    def grow(self, block_idx: np.ndarray) -> None:
        """Activate ``block_idx`` (duplicates are merged)."""
        merged = np.concatenate(
            (self.active_blocks, np.asarray(block_idx, dtype=np.int64).reshape(-1))
        )
        merged.sort()
        if merged.size > 1:
            distinct = np.empty(merged.size, dtype=bool)
            distinct[0] = True
            np.not_equal(merged[1:], merged[:-1], out=distinct[1:])
            merged = merged[distinct]
        self.active_blocks = merged

    @property
    def active_count(self) -> int:
        return int(self.active_blocks.size)

    def density(self) -> float:
        return self.active_count / self.indexer.n_blocks

    def __repr__(self) -> str:
        return (
            f"BlockMask(blocks={self.active_count}/{self.indexer.n_blocks}, "
            f"block_size={self.indexer.block_size})"
        )


def expand_block_csr(
    active_blocks: np.ndarray, block_rows: int, block_cols: int, block_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Element-level CSR structure of an active block set.

    Returns ``(indptr, indices, rows)`` for the ``(block_rows * B,
    block_cols * B)`` matrix whose non-zeros are exactly the active tiles:
    ``indptr`` is the per-element-row CSR pointer array, ``indices`` the
    element column of every nnz slot in CSR order, and ``rows`` the element
    row of the same slots (so ``rows * n_cols + indices`` gathers values
    from the flat dense weight).  Column indices come out sorted within
    each row.

    Fully vectorized: the ragged per-row repetition of each block-row's
    column pattern is computed with ``repeat``/``cumsum`` arithmetic in
    ``O(nnz)``, with no Python loop over rows or blocks.
    """
    b = int(block_size)
    active = np.asarray(active_blocks, dtype=np.int64).reshape(-1)
    n_rows = block_rows * b
    indptr = np.zeros(n_rows + 1, dtype=np.int32)
    if active.size == 0:
        return indptr, np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int64)

    brow, bcol = np.divmod(np.sort(active), block_cols)
    counts = np.bincount(brow, minlength=block_rows)  # blocks per block-row

    # Column pattern of each block-row group, laid out back to back:
    # for every active block, its B element columns (ascending).
    base = (bcol[:, None] * b + np.arange(b)[None, :]).reshape(-1)
    seg_len = counts * b  # pattern length per block-row
    seg_start = np.concatenate(([0], np.cumsum(seg_len[:-1])))

    # Each block-row's pattern repeats for its B element rows.
    out_per_group = seg_len * b
    total = int(out_per_group.sum())
    group_id = np.repeat(np.arange(block_rows), out_per_group)
    out_start = np.concatenate(([0], np.cumsum(out_per_group[:-1])))
    within = np.arange(total) - np.repeat(out_start, out_per_group)
    lengths = seg_len[group_id]
    indices = base[seg_start[group_id] + within % lengths]
    rows = group_id * b + within // lengths

    row_nnz = np.repeat(counts, b) * b
    np.cumsum(row_nnz, out=indptr[1:])
    return indptr, indices.astype(np.int32), rows
