"""Layer-wise sparsity distributions (uniform, Erdős–Rényi, ERK).

The paper initializes sparsity with **ERK** (Erdős–Rényi-Kernel, introduced
by SET and used by RigL/ITOP): layer ``l`` gets density proportional to
``(n_in + n_out + kh + kw) / (n_in * n_out * kh * kw)``, so small/narrow
layers stay denser than wide ones.  Densities are capped at 1 with the
standard iterative redistribution: any layer whose proportional density
exceeds 1 is made fully dense and the remaining budget is re-spread.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "uniform_density",
    "erdos_renyi",
    "erdos_renyi_kernel",
    "layer_densities",
    "block_budget",
    "validate_block_quantization",
]


def _validate_density(density: float) -> float:
    if not 0.0 < density <= 1.0:
        raise ValueError(f"global density must be in (0, 1], got {density}")
    return float(density)


def uniform_density(shapes: Sequence[tuple[int, ...]], density: float) -> list[float]:
    """Every layer gets the same density (the GNN experiments use this)."""
    density = _validate_density(density)
    return [density for _ in shapes]


def _proportional(
    shapes: Sequence[tuple[int, ...]], density: float, raw_scores: np.ndarray
) -> list[float]:
    """Distribute a global non-zero budget proportionally to ``raw_scores``.

    Iteratively caps layers at density 1 and redistributes the remainder,
    preserving the total number of non-zero weights.
    """
    density = _validate_density(density)
    sizes = np.array([int(np.prod(s)) for s in shapes], dtype=np.float64)
    total_nonzero = density * sizes.sum()
    dense = np.zeros(len(shapes), dtype=bool)
    for _ in range(len(shapes) + 1):
        free = ~dense
        budget = total_nonzero - sizes[dense].sum()
        if budget <= 0:
            # Degenerate: dense layers alone exceed the budget; spread evenly.
            densities = np.where(dense, 1.0, 0.0)
            break
        denom = (raw_scores[free] * sizes[free]).sum()
        scale = budget / denom
        densities = np.where(dense, 1.0, scale * raw_scores)
        over = (densities > 1.0) & free
        if not over.any():
            break
        dense |= over
    densities = np.clip(densities, 0.0, 1.0)
    return [float(d) for d in densities]


def erdos_renyi(shapes: Sequence[tuple[int, ...]], density: float) -> list[float]:
    """Erdős–Rényi: density ∝ ``(n_in + n_out) / (n_in * n_out)``.

    Kernel dimensions are ignored (original SET formulation for FC layers).
    """
    raw = np.array([(s[0] + s[1]) / (s[0] * s[1]) for s in shapes], dtype=np.float64)
    return _proportional(shapes, density, raw)


def erdos_renyi_kernel(shapes: Sequence[tuple[int, ...]], density: float) -> list[float]:
    """ERK: density ∝ ``sum(dims) / prod(dims)`` (kernel-aware, paper default)."""
    raw = np.array([np.sum(s) / np.prod(s) for s in shapes], dtype=np.float64)
    return _proportional(shapes, density, raw)


def block_budget(density: float, n_blocks: int) -> tuple[int, float]:
    """Quantize a layer density to a whole-block budget.

    Block-structured layers allocate non-zeros in ``B×B`` tiles, so the
    layer budget must be a whole number of blocks.  Returns ``(n_active
    blocks, exact density)`` where the density is the quantized budget as a
    fraction of ``n_blocks`` — this is the ``target_density`` the layer
    actually trains at, so downstream drop-count math never works from the
    pre-quantization value.  A positive density always gets at least one
    block (an empty layer cannot train).
    """
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    if density <= 0.0:
        return 0, 0.0
    n_active = int(round(_validate_density(density) * n_blocks))
    n_active = max(1, min(n_blocks, n_active))
    return n_active, n_active / n_blocks


_DISTRIBUTIONS = {
    "uniform": uniform_density,
    "er": erdos_renyi,
    "erk": erdos_renyi_kernel,
}


def validate_block_quantization(
    densities: Sequence[float], block_counts: Sequence[int | None]
) -> None:
    """Reject layer densities that block rounding would silently inflate.

    ``block_budget`` guarantees a positive density at least one block — a
    safety floor that keeps a layer trainable, but on a tiny layer it can
    multiply the requested density (e.g. 0.01 on a 4-block layer becomes
    0.25, a 25x inflation) without any signal to the caller.  This check
    makes that loud: a ``ValueError`` is raised for any layer whose
    requested budget rounds to zero blocks, i.e. where the floor — not
    ordinary half-block rounding — would decide the allocation.

    ``block_counts[i]`` is layer ``i``'s tile count, or ``None``/``1`` for
    unstructured layers (exempt).
    """
    if len(densities) != len(block_counts):
        raise ValueError(
            f"{len(densities)} densities vs {len(block_counts)} block counts"
        )
    for index, (density, n_blocks) in enumerate(zip(densities, block_counts)):
        if n_blocks is None or n_blocks <= 1 or density <= 0.0:
            continue
        if int(round(density * n_blocks)) == 0:
            raise ValueError(
                f"layer {index}: density {density:.6g} over {n_blocks} blocks "
                f"rounds to zero blocks; the min-one-block floor would inflate "
                f"it to {1.0 / n_blocks:.6g} — use a smaller block size or a "
                f"higher density for this layer"
            )


def layer_densities(
    shapes: Sequence[tuple[int, ...]],
    density: float,
    method: str = "erk",
    block_counts: Sequence[int | None] | None = None,
) -> list[float]:
    """Dispatch to a named distribution (``"uniform"``, ``"er"``, ``"erk"``).

    With ``block_counts`` (per-layer tile counts for block-structured
    layers, ``None``/``1`` for unstructured ones), the resulting densities
    are additionally validated to be achievable after block quantization —
    see :func:`validate_block_quantization`.
    """
    try:
        fn = _DISTRIBUTIONS[method.lower()]
    except KeyError:
        raise ValueError(
            f"unknown sparsity distribution {method!r}; choose from {sorted(_DISTRIBUTIONS)}"
        ) from None
    densities = fn(shapes, density)
    if block_counts is not None:
        validate_block_quantization(densities, block_counts)
    return densities
