"""Mask analysis utilities: topology drift, overlap, per-layer statistics.

ITOP's central observation — which DST-EE builds on — is that the *benefit*
of dynamic sparse training comes from how much of the parameter space the
evolving masks visit.  These helpers quantify that from mask snapshots:

* :func:`mask_overlap` / :func:`mask_jaccard` — how similar two masks are;
* :class:`MaskDriftTracker` — per-round overlap with the previous and the
  initial mask (how fast the topology moves, and how far it ends up);
* :func:`layer_density_table` — per-layer density summary for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.masked import MaskedModel

__all__ = [
    "mask_overlap",
    "mask_jaccard",
    "MaskDriftTracker",
    "layer_density_table",
]


def mask_overlap(a: np.ndarray, b: np.ndarray) -> float:
    """|A∩B| / |A|: fraction of ``a``'s active set also active in ``b``."""
    if a.shape != b.shape:
        raise ValueError(f"mask shapes differ: {a.shape} vs {b.shape}")
    active = int(a.sum())
    if active == 0:
        return 1.0
    return float((a & b).sum() / active)


def mask_jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity |A∩B| / |A∪B| of two boolean masks."""
    if a.shape != b.shape:
        raise ValueError(f"mask shapes differ: {a.shape} vs {b.shape}")
    union = int((a | b).sum())
    if union == 0:
        return 1.0
    return float((a & b).sum() / union)


@dataclass
class DriftRecord:
    """Drift statistics for one observation."""

    round_index: int
    overlap_with_previous: float
    overlap_with_initial: float
    jaccard_with_initial: float


class MaskDriftTracker:
    """Track how far the sparse topology moves over mask updates.

    Call :meth:`observe` after every mask update; records global (size-
    weighted) overlap with the previous and initial masks.  A greedy method
    plateaus near its initial mask; exploration-driven methods drift
    further — the mechanism behind the paper's coverage argument.
    """

    def __init__(self, masked: MaskedModel):
        self.masked = masked
        self._initial = masked.masks_snapshot()
        self._previous = masked.masks_snapshot()
        self.records: list[DriftRecord] = []

    def observe(self, round_index: int) -> DriftRecord:
        current = self.masked.masks_snapshot()
        total = self.masked.total_size

        def weighted(metric, reference):
            acc = 0.0
            for name, mask in current.items():
                acc += metric(reference[name], mask) * mask.size
            return acc / total

        record = DriftRecord(
            round_index=round_index,
            overlap_with_previous=weighted(mask_overlap, self._previous),
            overlap_with_initial=weighted(mask_overlap, self._initial),
            jaccard_with_initial=weighted(mask_jaccard, self._initial),
        )
        self.records.append(record)
        self._previous = current
        return record

    @property
    def final_drift_from_initial(self) -> float:
        """1 - overlap with the initial mask at the last observation."""
        if not self.records:
            return 0.0
        return 1.0 - self.records[-1].overlap_with_initial


def layer_density_table(masked: MaskedModel) -> list[dict]:
    """Per-layer density/size/non-zero rows, plus a global summary row."""
    rows = []
    for target in masked.targets:
        rows.append({
            "layer": target.name,
            "shape": "x".join(str(d) for d in target.param.shape),
            "size": target.size,
            "nnz": target.active_count,
            "density": round(target.density, 4),
        })
    rows.append({
        "layer": "TOTAL",
        "shape": "-",
        "size": masked.total_size,
        "nnz": masked.total_active,
        "density": round(masked.global_density(), 4),
    })
    return rows
