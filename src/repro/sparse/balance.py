"""Cross-layer density balancing (Parger et al., gradient-mass style).

"Gradient-based Weight Density Balancing for Robust Dynamic Sparse
Training" observes that a *fixed* per-layer density split (uniform, ER,
ERK) leaves the layer allocation frozen at whatever the initializer
guessed, while the training signal — how much gradient mass each layer
carries — says where capacity is actually needed.  The fix is to treat the
global non-zero count as one budget and reallocate it across layers at
every mask update, rate-limited so the topology never jumps.

:class:`GradientMassRebalancer` implements that policy on top of the
:class:`~repro.sparse.budget.DensityBudget` API: at each ΔT it smooths the
per-layer dense-gradient mass with an EMA, computes each layer's desired
share of the global budget, clips the shift per layer to ``max_shift`` of
its current allocation, quantizes to the layer's drop/grow unit, and
repairs the total so the global budget is conserved *exactly* (in
elements) — the engine then realizes the new allocations as asymmetric
drop/grow counts.

:class:`DensityBalanceController` is the packaged controller: a
:class:`~repro.sparse.engine.DynamicSparseEngine` with RigL-style rules
and the rebalancer attached.  Started from a *uniform* split it recovers
an ERK-like profile from the gradient signal alone — the comparison the
``rebalance`` bench section surfaces.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.budget import DensityBudget
from repro.sparse.engine import DynamicSparseEngine
from repro.sparse.growers import DropRule, GradientGrowth, GrowthRule, MagnitudeDrop
from repro.sparse.masked import MaskedModel
from repro.sparse.schedule import TrainingSchedule

__all__ = ["GradientMassRebalancer", "DensityBalanceController"]


class GradientMassRebalancer:
    """Reallocate a global budget across layers by EMA'd gradient mass.

    Parameters
    ----------
    max_shift:
        Per-round rate limit: a layer's allocation moves by at most this
        fraction of its current allocation (Parger's robustness guard — a
        noisy round cannot gut a layer).
    ema_beta:
        Smoothing for the per-layer mean-|grad| signal across rounds.
    """

    def __init__(self, max_shift: float = 0.1, ema_beta: float = 0.9):
        if not 0.0 < max_shift <= 1.0:
            raise ValueError(f"max_shift must be in (0, 1], got {max_shift}")
        if not 0.0 <= ema_beta < 1.0:
            raise ValueError(f"ema_beta must be in [0, 1), got {ema_beta}")
        self.max_shift = float(max_shift)
        self.ema_beta = float(ema_beta)
        self._ema: dict[str, float] = {}
        self.rounds = 0

    # ------------------------------------------------------------------
    def _update_signal(self, masked: MaskedModel) -> dict[str, float]:
        """EMA of each layer's mean absolute dense gradient."""
        beta = self.ema_beta if self._ema else 0.0
        for target in masked.targets:
            grad = target.param.grad
            mass = float(np.abs(grad).mean()) if grad is not None else 0.0
            self._ema[target.name] = beta * self._ema.get(target.name, 0.0) + (
                1.0 - beta
            ) * mass
        return self._ema

    def rebalance(
        self, masked: MaskedModel, budget: DensityBudget, step: int
    ) -> dict[str, int]:
        """Mutate ``budget`` toward the gradient-mass shares; return deltas.

        The returned dict maps layer name to the applied element delta
        (positive = allocation gained).  ``sum(deltas.values()) == 0``
        always: the repair pass walks units between layers until the total
        matches, and falls back to undoing shifts if the layers' unit sizes
        cannot express the residual.
        """
        signal = self._update_signal(masked)
        self.rounds += 1
        names = [t.name for t in masked.targets if t.name in budget]
        total = budget.total
        weight_sum = sum(signal[n] * budget.capacity_of(n) for n in names)
        if weight_sum <= 0.0:
            return {n: 0 for n in names}

        proposed: dict[str, int] = {}
        for name in names:
            alloc = budget.allocation(name)
            unit = budget.unit(name)
            desired = signal[name] * budget.capacity_of(name) / weight_sum * total
            limit = self.max_shift * alloc
            delta = float(np.clip(desired - alloc, -limit, limit))
            # Quantize toward zero, then clamp to [one unit, capacity].
            delta_units = int(delta / unit)
            new_alloc = alloc + delta_units * unit
            new_alloc = max(unit, min(budget.capacity_of(name), new_alloc))
            proposed[name] = new_alloc

        # Repair: move single units between layers until the total is exact.
        residual = total - sum(proposed.values())
        for _ in range(budget.capacity):
            if residual == 0:
                break
            candidates = []
            for name in names:
                unit = budget.unit(name)
                if residual > 0:
                    if unit <= residual and proposed[name] + unit <= budget.capacity_of(name):
                        candidates.append((signal[name], name))
                else:
                    if unit <= -residual and proposed[name] - unit >= unit:
                        candidates.append((-signal[name], name))
            if not candidates:
                # Units cannot express the residual (mixed granularities):
                # give up on this round's shift rather than breaking the
                # global budget.
                return {n: 0 for n in names}
            _, name = max(candidates)
            step_units = budget.unit(name) if residual > 0 else -budget.unit(name)
            proposed[name] += step_units
            residual -= step_units

        deltas = {}
        for name in names:
            deltas[name] = proposed[name] - budget.allocation(name)
            budget.set_allocation(name, proposed[name])
        return deltas

    # ------------------------------------------------------------------
    # checkpointing (EMA and round counter evolve across the run)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"ema": dict(self._ema), "rounds": int(self.rounds)}

    def load_state_dict(self, state: dict) -> None:
        self._ema = {str(name): float(value) for name, value in state["ema"].items()}
        self.rounds = int(state["rounds"])


class DensityBalanceController(DynamicSparseEngine):
    """Drop-and-grow engine with Parger-style cross-layer rebalancing.

    A :class:`DynamicSparseEngine` whose every mask update starts with a
    :class:`GradientMassRebalancer` pass: the global budget is conserved
    exactly while per-layer allocations chase the gradient-mass shares,
    rate-limited by ``max_shift``.  Defaults to RigL's rules
    (gradient growth, magnitude drop).
    """

    def __init__(
        self,
        masked: MaskedModel,
        schedule: TrainingSchedule | None = None,
        budget: DensityBudget | None = None,
        *,
        growth_rule: GrowthRule | None = None,
        drop_rule: DropRule | None = None,
        optimizer=None,
        rng: np.random.Generator | None = None,
        max_shift: float = 0.1,
        balance_ema_beta: float = 0.9,
        total_steps: int | None = None,
        delta_t: int | None = None,
        drop_fraction: float | None = None,
        drop_schedule: str | None = None,
        stop_fraction: float | None = None,
    ):
        super().__init__(
            masked,
            growth_rule if growth_rule is not None else GradientGrowth(),
            drop_rule=drop_rule if drop_rule is not None else MagnitudeDrop(),
            optimizer=optimizer,
            rng=rng,
            schedule=schedule,
            budget=budget,
            rebalancer=GradientMassRebalancer(max_shift=max_shift, ema_beta=balance_ema_beta),
            total_steps=total_steps,
            delta_t=delta_t,
            drop_fraction=drop_fraction,
            drop_schedule=drop_schedule,
            stop_fraction=stop_fraction,
        )
