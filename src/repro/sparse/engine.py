"""The drop-and-grow engine (Algorithm 1 of the paper) and fixed-mask training.

:class:`DynamicSparseEngine` implements the paper's training loop semantics:

* every iteration, gradients outside the mask are zeroed before the
  optimizer step, so only active weights train;
* every ``ΔT`` iterations (while ``t < stop_step``) the optimizer step is
  *replaced* by a mask update: per layer, ``k_i`` active weights with the
  lowest drop-rule score are deactivated and ``k_i`` inactive weights with
  the highest growth-rule score are activated (newly grown weights start at
  zero with reset optimizer state);
* the coverage counters ``N`` are advanced after every mask update
  (``N ← N + M``), driving DST-EE's exploration bonus.

The engine is strategy-agnostic: DST-EE, RigL, SET, SNFS, DeepR, MEST and
DSR are all configurations of drop rule × growth rule × allocation (see
:mod:`repro.sparse.growers` and the method registry in
:mod:`repro.experiments.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optim.sgd import Optimizer
from repro.sparse.counter import CoverageTracker
from repro.sparse.growers import (
    DropRule,
    GrowthRule,
    LayerContext,
    MagnitudeDrop,
)
from repro.sparse.masked import MaskedModel, SparseParam
from repro.sparse.schedule import UpdateSchedule, make_drop_schedule

__all__ = ["SparsityController", "FixedMaskController", "DynamicSparseEngine"]


class SparsityController:
    """Protocol between the trainer and any sparsification scheme.

    ``on_backward`` runs after the backward pass; returning True tells the
    trainer to skip the optimizer step (used by mask-update iterations,
    Algorithm 1).  ``after_step`` runs after each optimizer step.

    ``state_dict`` / ``load_state_dict`` support resume-exact checkpointing
    (:mod:`repro.train.checkpoint`).  The base implementation captures the
    masks (restored *without* clobbering each layer's ``target_density``,
    which reconstruction re-derives from the sparsity distribution);
    controllers with more evolving state extend it.
    """

    masked: MaskedModel

    def on_backward(self, step: int) -> bool:
        raise NotImplementedError

    def after_step(self, step: int) -> None:
        raise NotImplementedError

    def on_epoch_end(self, epoch: int) -> None:
        """Optional hook (dense-to-sparse schedules use it)."""

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot (base: controller type + current masks)."""
        masked = getattr(self, "masked", None)
        state: dict = {"type": type(self).__name__}
        if masked is not None:
            state["masks"] = masked.masks_snapshot()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        saved_type = state.get("type", type(self).__name__)
        if saved_type != type(self).__name__:
            raise ValueError(
                f"checkpoint controller is {saved_type!r}, "
                f"this controller is {type(self).__name__!r}"
            )
        masked = getattr(self, "masked", None)
        if masked is None or "masks" not in state:
            return
        by_name = {t.name: t for t in masked.targets}
        for name, mask in state["masks"].items():
            if name not in by_name:
                raise KeyError(f"checkpoint mask for unknown layer {name!r}")
            target = by_name[name]
            if mask.shape != target.mask.shape:
                raise ValueError(
                    f"mask shape mismatch for {name!r}: "
                    f"{mask.shape} vs {target.mask.shape}"
                )
            # Direct assignment (not MaskedModel.set_masks): target_density
            # must keep the distribution-derived value a fresh construction
            # computes, or a resumed run could diverge from the
            # uninterrupted one wherever target_density is consulted.
            target.mask = mask.astype(bool)
        masked.apply_masks()


class FixedMaskController(SparsityController):
    """Static-mask sparse training (SNIP/GraSP/SynFlow after pruning)."""

    def __init__(self, masked: MaskedModel):
        self.masked = masked

    def on_backward(self, step: int) -> bool:
        self.masked.mask_gradients()
        return False

    def after_step(self, step: int) -> None:
        if self.masked.per_step_apply_needed:
            self.masked.apply_masks()


@dataclass
class MaskUpdateRecord:
    """Bookkeeping for one drop-and-grow round (feeds Fig. 3 and tests)."""

    step: int
    round_index: int
    drop_fraction: float
    total_dropped: int
    total_grown: int
    exploration_rate: float
    global_density: float


class DynamicSparseEngine(SparsityController):
    """Drop-and-grow dynamic sparse training (Algorithm 1).

    Parameters
    ----------
    masked:
        The :class:`MaskedModel` whose masks evolve.
    growth_rule, drop_rule:
        Strategy objects from :mod:`repro.sparse.growers`.
    total_steps:
        Total training iterations (for schedules).
    delta_t:
        Mask-update period ``ΔT``.
    drop_fraction:
        Initial fraction of active weights moved per update.
    drop_schedule:
        ``"cosine"`` (RigL annealing, default), ``"constant"``, ``"linear"``.
    stop_fraction:
        Fraction of training after which the topology is frozen.
    optimizer:
        If given, its per-parameter state (momentum) is zeroed at newly
        grown coordinates.
    allow_regrow:
        Whether a weight dropped in this round may be regrown in the same
        round (off by default, matching ITOP-style implementations).
    global_drop:
        Pool the drop ranking across layers (DSR behaviour) instead of
        per-layer ``k_i``.
    grow_allocation:
        ``"per_layer"`` grows exactly where it dropped; ``"proportional"``
        (DSR) redistributes the global growth budget proportionally to each
        layer's remaining active count.
    grad_ema_beta:
        Smoothing for the dense-gradient EMA (only maintained when the
        growth rule requires it, e.g. SNFS).
    rng:
        Randomness for random growth and tie-breaking.
    """

    def __init__(
        self,
        masked: MaskedModel,
        growth_rule: GrowthRule,
        total_steps: int,
        drop_rule: DropRule | None = None,
        delta_t: int = 100,
        drop_fraction: float = 0.3,
        drop_schedule: str = "cosine",
        stop_fraction: float = 0.75,
        optimizer: Optimizer | None = None,
        allow_regrow: bool = False,
        global_drop: bool = False,
        grow_allocation: str = "per_layer",
        grad_ema_beta: float = 0.9,
        rng: np.random.Generator | None = None,
    ):
        if grow_allocation not in ("per_layer", "proportional"):
            raise ValueError(f"unknown grow_allocation {grow_allocation!r}")
        self.masked = masked
        self.growth_rule = growth_rule
        self.drop_rule = drop_rule if drop_rule is not None else MagnitudeDrop()
        self.update_schedule = UpdateSchedule(delta_t, total_steps, stop_fraction)
        self.drop_schedule = make_drop_schedule(drop_schedule, drop_fraction, total_steps)
        self.optimizer = optimizer
        self.allow_regrow = bool(allow_regrow)
        self.global_drop = bool(global_drop)
        self.grow_allocation = grow_allocation
        self.grad_ema_beta = float(grad_ema_beta)
        self.rng = rng if rng is not None else np.random.default_rng()

        self.coverage = CoverageTracker(masked)
        self.history: list[MaskUpdateRecord] = []
        self._needs_ema = getattr(growth_rule, "needs_grad_ema", False)
        self._grad_ema: dict[str, np.ndarray] = {}
        self._ema_scratch: np.ndarray | None = None
        if self._needs_ema:
            # Preallocated EMA buffers plus one shared scratch sized to the
            # largest layer: the per-step EMA update allocates nothing.
            for target in masked.targets:
                self._grad_ema[target.name] = np.zeros_like(target.param.data)
            self._ema_scratch = np.empty(
                max((t.size for t in masked.targets), default=0), dtype=np.float32
            )
        self._exclude_scratch = np.zeros(
            max((t.size for t in masked.targets), default=0), dtype=bool
        )
        self._needs_signs = getattr(self.drop_rule, "needs_sign_reference", False)
        self._sign_refs: dict[str, np.ndarray] = {}
        if self._needs_signs:
            for target in masked.targets:
                self._sign_refs[target.name] = np.sign(target.param.data).astype(np.float32)

    # ------------------------------------------------------------------
    # trainer hooks
    # ------------------------------------------------------------------
    def on_backward(self, step: int) -> bool:
        """Algorithm 1's branch: mask update (skip SGD) or masked gradient step."""
        if self._needs_ema:
            self._update_grad_ema()
        if self.update_schedule.is_update_step(step):
            self.mask_update(step)
            return True
        self.masked.mask_gradients()
        return False

    def after_step(self, step: int) -> None:
        """Re-apply masks after the optimizer step (keeps the invariant exact).

        Skipped when a sparse-aware optimizer is bound to the masked model
        (:meth:`MaskedModel.bind_optimizer`): it only ever touches active
        coordinates, so inactive weights are already exactly zero.
        """
        if self.masked.per_step_apply_needed:
            self.masked.apply_masks()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _update_grad_ema(self) -> None:
        beta = self.grad_ema_beta
        for target in self.masked.targets:
            grad = target.param.grad
            if grad is None:
                continue
            ema = self._grad_ema[target.name]
            scratch = self._ema_scratch[: grad.size].reshape(grad.shape)
            np.multiply(ema, beta, out=ema)
            np.multiply(grad, 1.0 - beta, out=scratch)
            np.add(ema, scratch, out=ema)

    def _context(self, target: SparseParam, step: int) -> LayerContext:
        return LayerContext(
            step=step,
            rng=self.rng,
            dense_grad=target.param.grad,
            counter=self.coverage.counter_for(target.name),
            grad_ema=self._grad_ema.get(target.name),
            sign_reference=self._sign_refs.get(target.name),
        )

    def _drop_counts(self, fraction: float) -> list[int]:
        """Per-layer number of weights to move this round."""
        counts = []
        for target in self.masked.targets:
            active = target.active_count
            inactive = target.size - active
            k = int(fraction * active)
            # Cannot drop more than would leave the layer empty, nor grow
            # more than the number of inactive positions.
            k = min(k, max(active - 1, 0), inactive)
            counts.append(max(k, 0))
        return counts

    def _active_drop_scores(self, target: SparseParam, step: int) -> np.ndarray:
        """Drop-rule scores gathered at the (cached) active indices.

        Uses the rule's subset scorer when it has one, so ranking cost
        scales with the number of active weights rather than layer size.
        """
        ctx = self._context(target, step)
        active_idx = target.active_indices
        scores_at = getattr(self.drop_rule, "scores_at", None)
        if scores_at is not None:
            return np.asarray(scores_at(target, ctx, active_idx), dtype=np.float64)
        scores = np.asarray(self.drop_rule.scores(target, ctx), dtype=np.float64)
        return scores.reshape(-1)[active_idx]

    def _global_drop_counts(self, fraction: float, step: int) -> list[int]:
        """DSR-style: rank all active weights globally, drop the bottom set."""
        all_scores = []
        owners = []
        for index, target in enumerate(self.masked.targets):
            active_scores = self._active_drop_scores(target, step)
            all_scores.append(active_scores)
            owners.append(np.full(active_scores.size, index))
        flat_scores = np.concatenate(all_scores)
        flat_owners = np.concatenate(owners)
        k_total = int(fraction * flat_scores.size)
        if k_total == 0:
            return [0] * len(self.masked.targets)
        chosen = np.argpartition(flat_scores, k_total - 1)[:k_total]
        counts = np.bincount(flat_owners[chosen], minlength=len(self.masked.targets))
        # Respect per-layer feasibility.
        feasible = []
        for target, k in zip(self.masked.targets, counts):
            inactive = target.size - target.active_count
            feasible.append(int(min(k, max(target.active_count - 1, 0), inactive)))
        return feasible

    def _allocate_growth(self, drop_counts: list[int]) -> list[int]:
        """How many weights each layer grows back this round."""
        if self.grow_allocation == "per_layer":
            return list(drop_counts)
        # Proportional (DSR): redistribute the global budget by active share.
        total = int(np.sum(drop_counts))
        if total == 0:
            return [0] * len(drop_counts)
        actives = np.array(
            [t.active_count - k for t, k in zip(self.masked.targets, drop_counts)],
            dtype=np.float64,
        )
        weights = actives / actives.sum() if actives.sum() > 0 else np.ones_like(actives) / len(actives)
        raw = weights * total
        alloc = np.floor(raw).astype(int)
        remainder = total - alloc.sum()
        order = np.argsort(-(raw - alloc))
        for i in range(remainder):
            alloc[order[i % len(alloc)]] += 1
        # Clamp to available inactive slots per layer; spill leftover to others.
        for index, target in enumerate(self.masked.targets):
            capacity = target.size - (target.active_count - drop_counts[index])
            alloc[index] = min(alloc[index], capacity)
        return [int(a) for a in alloc]

    def mask_update(self, step: int) -> MaskUpdateRecord:
        """One drop-and-grow round.  Requires fresh (dense) gradients."""
        fraction = self.drop_schedule(step)
        if self.global_drop:
            drop_counts = self._global_drop_counts(fraction, step)
        else:
            drop_counts = self._drop_counts(fraction)
        grow_counts = self._allocate_growth(drop_counts)

        total_dropped = 0
        total_grown = 0
        dropped_indices: list[np.ndarray] = []

        # ---------------- drop phase ----------------
        for target, k_drop in zip(self.masked.targets, drop_counts):
            if k_drop <= 0:
                dropped_indices.append(np.empty(0, dtype=np.int64))
                continue
            active_idx = target.active_indices
            active_scores = self._active_drop_scores(target, step)
            order = np.argpartition(active_scores, k_drop - 1)[:k_drop]
            drop_idx = active_idx[order]
            target.mask.reshape(-1)[drop_idx] = False
            target.mark_mask_dirty()
            dropped_indices.append(drop_idx)
            total_dropped += int(drop_idx.size)

        # ---------------- grow phase ----------------
        for target, k_grow, drop_idx in zip(self.masked.targets, grow_counts, dropped_indices):
            if k_grow <= 0:
                continue
            total_grown += self._grow_layer(target, k_grow, drop_idx, step)

        # Keep the global non-zero count exact: if allocation clamping or a
        # shortage of inactive slots left a deficit, re-activate the best
        # just-dropped weights anywhere.
        deficit = total_dropped - total_grown
        if deficit > 0:
            total_grown += self._fill_deficit(deficit, dropped_indices)

        # ---------------- bookkeeping ----------------
        self.masked.apply_masks()
        self.coverage.update()
        record = MaskUpdateRecord(
            step=step,
            round_index=self.coverage.rounds,
            drop_fraction=fraction,
            total_dropped=total_dropped,
            total_grown=total_grown,
            exploration_rate=self.coverage.exploration_rate(),
            global_density=self.masked.global_density(),
        )
        self.history.append(record)
        return record

    def _grow_layer(
        self, target: SparseParam, k_grow: int, drop_idx: np.ndarray, step: int
    ) -> int:
        """Activate up to ``k_grow`` inactive weights in one layer."""
        candidate_idx = target.inactive_indices
        if not self.allow_regrow and drop_idx.size:
            # O(candidates) membership test via a reused scratch table (a
            # sort-based set difference is ~50x slower at these sizes).
            exclude = self._exclude_scratch
            exclude[drop_idx] = True
            candidate_idx = candidate_idx[~exclude[candidate_idx]]
            exclude[drop_idx] = False
        if candidate_idx.size == 0:
            return 0
        k = min(k_grow, candidate_idx.size)
        ctx = self._context(target, step)
        # Native dtype throughout: growth ranking is the dominant cost of a
        # round, and an f64 upcast of a full-size score array doubles its
        # memory traffic for no ranking benefit.
        scores = np.asarray(self.growth_rule.scores(target, ctx)).reshape(-1)
        candidate_scores = scores[candidate_idx]
        if k < candidate_idx.size:
            top = np.argpartition(candidate_scores, candidate_scores.size - k)[
                candidate_scores.size - k:
            ]
        else:
            top = np.arange(candidate_idx.size)
        grow_idx = candidate_idx[top]
        target.mask.reshape(-1)[grow_idx] = True
        target.mark_mask_dirty()
        # Newly grown weights start from zero with fresh optimizer state.
        flat_weights = target.param.data.reshape(-1)
        flat_weights[grow_idx] = 0.0
        self._reset_optimizer_state(target, grow_idx)
        if self._needs_signs:
            # DeepR assigns a random sign to re-activated connections.
            signs = self._sign_refs[target.name].reshape(-1)
            signs[grow_idx] = self.rng.choice([-1.0, 1.0], size=grow_idx.size)
        return int(grow_idx.size)

    def _fill_deficit(self, deficit: int, dropped_indices: list[np.ndarray]) -> int:
        """Re-activate the highest-|w| just-dropped weights to keep k fixed.

        Fully vectorized: one concatenated magnitude array and a single
        argpartition pick the global top-``deficit`` candidates.
        """
        magnitudes: list[np.ndarray] = []
        owners: list[np.ndarray] = []
        positions: list[np.ndarray] = []
        for index, (target, drop_idx) in enumerate(
            zip(self.masked.targets, dropped_indices)
        ):
            if drop_idx.size == 0:
                continue
            flat_mask = target.mask.reshape(-1)
            candidates = drop_idx[~flat_mask[drop_idx]]  # not re-grown this round
            if candidates.size == 0:
                continue
            magnitudes.append(np.abs(target.param.data.reshape(-1)[candidates]))
            owners.append(np.full(candidates.size, index))
            positions.append(candidates)
        if not magnitudes:
            return 0
        flat_mag = np.concatenate(magnitudes)
        flat_owner = np.concatenate(owners)
        flat_pos = np.concatenate(positions)
        k = min(deficit, flat_mag.size)
        if k < flat_mag.size:
            chosen = np.argpartition(-flat_mag, k - 1)[:k]
        else:
            chosen = np.arange(flat_mag.size)
        for index, target in enumerate(self.masked.targets):
            revive = flat_pos[chosen[flat_owner[chosen] == index]]
            if revive.size == 0:
                continue
            target.mask.reshape(-1)[revive] = True
            target.mark_mask_dirty()
        return int(chosen.size)

    def _reset_optimizer_state(self, target: SparseParam, grow_idx: np.ndarray) -> None:
        if self.optimizer is None:
            return
        state = self.optimizer.state.get(id(target.param))
        if not state:
            return
        for value in state.values():
            if isinstance(value, np.ndarray) and value.shape == target.param.shape:
                value.reshape(-1)[grow_idx] = 0.0

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything the drop-and-grow state machine needs to resume exactly.

        On top of the base masks: coverage counters (Algorithm 1's ``N``),
        the mask-update history, the engine RNG's bit-generator state
        (random growth / tie-breaking), the dense-gradient EMA (SNFS) and
        the sign references (DeepR).  The update/drop schedules are pure
        functions of the global step, so they need no state.
        """
        state = super().state_dict()
        state["coverage"] = self.coverage.state_dict()
        state["history"] = [vars(record).copy() for record in self.history]
        state["rng"] = self.rng.bit_generator.state
        if self._needs_ema:
            state["grad_ema"] = {
                name: arr.copy() for name, arr in self._grad_ema.items()
            }
        if self._needs_signs:
            state["sign_refs"] = {
                name: arr.copy() for name, arr in self._sign_refs.items()
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place (resume-exact)."""
        super().load_state_dict(state)
        self.coverage.load_state_dict(state["coverage"])
        self.history = [
            MaskUpdateRecord(**{k: v for k, v in record.items()})
            for record in state["history"]
        ]
        self.rng.bit_generator.state = state["rng"]
        for name, saved in state.get("grad_ema", {}).items():
            if name not in self._grad_ema:
                raise KeyError(f"gradient EMA for unknown layer {name!r}")
            np.copyto(self._grad_ema[name], saved.reshape(self._grad_ema[name].shape))
        for name, saved in state.get("sign_refs", {}).items():
            if name not in self._sign_refs:
                raise KeyError(f"sign reference for unknown layer {name!r}")
            np.copyto(
                self._sign_refs[name], saved.reshape(self._sign_refs[name].shape)
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def exploration_curve(self) -> list[tuple[int, float]]:
        """``(round, exploration_rate)`` series — the Fig. 3 left panels."""
        return [(r.round_index, r.exploration_rate) for r in self.history]
