"""The drop-and-grow engine (Algorithm 1 of the paper) and fixed-mask training.

:class:`DynamicSparseEngine` implements the paper's training loop semantics:

* every iteration, gradients outside the mask are zeroed before the
  optimizer step, so only active weights train;
* every ``ΔT`` iterations (while ``t < stop_step``) the optimizer step is
  *replaced* by a mask update: per layer, ``k_i`` active weights with the
  lowest drop-rule score are deactivated and ``k_i`` inactive weights with
  the highest growth-rule score are activated (newly grown weights start at
  zero with reset optimizer state);
* the coverage counters ``N`` are advanced after every mask update
  (``N ← N + M``), driving DST-EE's exploration bonus.

The engine is strategy-agnostic: DST-EE, RigL, SET, SNFS, DeepR, MEST and
DSR are all configurations of drop rule × growth rule × allocation (see
:mod:`repro.sparse.growers` and the method registry in
:mod:`repro.experiments.registry`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.optim.sgd import Optimizer
from repro.sparse.budget import DensityBudget, assign_target_density
from repro.sparse.counter import CoverageTracker
from repro.sparse.growers import (
    DropRule,
    GrowthRule,
    LayerContext,
    MagnitudeDrop,
)
from repro.sparse.masked import MaskedModel, SparseParam
from repro.sparse.schedule import TrainingSchedule
from repro.rng import resolve_rng

__all__ = ["SparsityController", "FixedMaskController", "DynamicSparseEngine"]


class SparsityController:
    """Protocol between the trainer and any sparsification scheme.

    ``on_backward`` runs after the backward pass; returning True tells the
    trainer to skip the optimizer step (used by mask-update iterations,
    Algorithm 1).  ``after_step`` runs after each optimizer step.

    ``state_dict`` / ``load_state_dict`` support resume-exact checkpointing
    (:mod:`repro.train.checkpoint`).  The base implementation captures the
    masks, the masked model's :class:`~repro.sparse.budget.DensityBudget`
    and the per-layer target densities, so a resumed run reproduces any
    rebalancing the saved run had applied; controllers with more evolving
    state extend it.

    Unified construction (see docs/controllers.md): every controller
    accepts ``(masked, schedule, budget, ...)`` where ``schedule`` is a
    :class:`~repro.sparse.schedule.TrainingSchedule` and ``budget`` a
    :class:`~repro.sparse.budget.DensityBudget` (defaulting to
    ``masked.budget``); method-specific knobs stay keyword arguments.
    """

    masked: MaskedModel

    def before_backward(self, step: int) -> None:
        """Optional hook called with the step number before its backward.

        Lets a controller tell the kernels what the coming backward must
        produce (e.g. whether dense weight gradients are needed).  The
        base implementation does nothing; training loops that never call
        it get the always-safe default (dense gradients every step).
        """

    def on_backward(self, step: int) -> bool:
        raise NotImplementedError

    def after_step(self, step: int) -> None:
        raise NotImplementedError

    def on_epoch_end(self, epoch: int) -> None:
        """Optional hook (dense-to-sparse schedules use it)."""

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot (base: type, masks, budget, densities)."""
        masked = getattr(self, "masked", None)
        state: dict = {"type": type(self).__name__}
        if masked is not None:
            state["masks"] = masked.masks_snapshot()
            budget = getattr(masked, "budget", None)
            if budget is not None:
                state["budget"] = budget.state_dict()
                state["target_densities"] = {
                    t.name: float(t.target_density) for t in masked.targets
                }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        saved_type = state.get("type", type(self).__name__)
        if saved_type != type(self).__name__:
            raise ValueError(
                f"checkpoint controller is {saved_type!r}, "
                f"this controller is {type(self).__name__!r}"
            )
        masked = getattr(self, "masked", None)
        if masked is None or "masks" not in state:
            return
        by_name = {t.name: t for t in masked.targets}
        for name, mask in state["masks"].items():
            if name not in by_name:
                raise KeyError(f"checkpoint mask for unknown layer {name!r}")
            target = by_name[name]
            if mask.shape != target.mask.shape:
                raise ValueError(
                    f"mask shape mismatch for {name!r}: "
                    f"{mask.shape} vs {target.mask.shape}"
                )
            # Direct assignment (not MaskedModel.set_masks): target_density
            # is restored below from the checkpoint itself — for a run that
            # never rebalanced this equals the distribution-derived value a
            # fresh construction computes, and for a rebalanced run it is
            # the value the saved run was actually training at.
            target.mask = mask.astype(bool)
        if "budget" in state:
            masked.budget.load_state_dict(state["budget"])
        for name, density in state.get("target_densities", {}).items():
            if name not in by_name:
                raise KeyError(f"checkpoint density for unknown layer {name!r}")
            assign_target_density(by_name[name], density)
        masked.apply_masks()


class FixedMaskController(SparsityController):
    """Static-mask sparse training (SNIP/GraSP/SynFlow after pruning)."""

    def __init__(
        self,
        masked: MaskedModel,
        schedule: TrainingSchedule | None = None,
        budget: DensityBudget | None = None,
    ):
        # Unified signature: a fixed mask has no timing and its budget is
        # frozen at construction, so both are accepted (for build_method
        # uniformity) and only recorded.
        self.masked = masked
        self.schedule = schedule
        self.budget = budget if budget is not None else masked.budget

    def on_backward(self, step: int) -> bool:
        self.masked.mask_gradients()
        return False

    def after_step(self, step: int) -> None:
        if self.masked.per_step_apply_needed:
            self.masked.apply_masks()


@dataclass
class MaskUpdateRecord:
    """Bookkeeping for one drop-and-grow round (feeds Fig. 3 and tests).

    ``duration_ms`` is the wall-clock cost of the round (the ΔT overhead the
    perf bench reports); ``rebalanced`` is the number of elements the
    round's rebalancing phase moved *into* layers (inter-layer transfer
    volume, 0 when no rebalancer is attached).  Both default so checkpoints
    written before the fields existed still load.
    """

    step: int
    round_index: int
    drop_fraction: float
    total_dropped: int
    total_grown: int
    exploration_rate: float
    global_density: float
    duration_ms: float = 0.0
    rebalanced: int = 0


class DynamicSparseEngine(SparsityController):
    """Drop-and-grow dynamic sparse training (Algorithm 1).

    Parameters
    ----------
    masked:
        The :class:`MaskedModel` whose masks evolve.
    growth_rule, drop_rule:
        Strategy objects from :mod:`repro.sparse.growers`.
    total_steps:
        Total training iterations (for schedules).
    delta_t:
        Mask-update period ``ΔT``.
    drop_fraction:
        Initial fraction of active weights moved per update.
    drop_schedule:
        ``"cosine"`` (RigL annealing, default), ``"constant"``, ``"linear"``.
    stop_fraction:
        Fraction of training after which the topology is frozen.
    optimizer:
        If given, its per-parameter state (momentum) is zeroed at newly
        grown coordinates.
    allow_regrow:
        Whether a weight dropped in this round may be regrown in the same
        round (off by default, matching ITOP-style implementations).
    global_drop:
        Pool the drop ranking across layers (DSR behaviour) instead of
        per-layer ``k_i``.
    grow_allocation:
        ``"per_layer"`` grows exactly where it dropped; ``"proportional"``
        (DSR) redistributes the global growth budget proportionally to each
        layer's remaining active count.
    grad_ema_beta:
        Smoothing for the dense-gradient EMA (only maintained when the
        growth rule requires it, e.g. SNFS).
    rng:
        Randomness for random growth and tie-breaking.
    schedule:
        A :class:`~repro.sparse.schedule.TrainingSchedule` — the unified
        alternative to the ``total_steps``/``delta_t``/``drop_fraction``/
        ``drop_schedule``/``stop_fraction`` kwargs (mutually exclusive with
        them).
    budget:
        The :class:`~repro.sparse.budget.DensityBudget` the engine keeps
        the masks converged to (default: ``masked.budget``).  Mutating it —
        via ``rebalancer`` or externally (e.g. the GAN balancer) — makes
        the next mask update drop/grow asymmetrically per layer until the
        masks match the allocations again, conserving the global budget.
    rebalancer:
        Optional object with ``rebalance(masked, budget, step) -> dict``
        (and ``state_dict``/``load_state_dict``), called at the start of
        every mask update to move allocation between layers (see
        :class:`repro.sparse.balance.GradientMassRebalancer`).
    """

    # Pure strategy/schedule objects: their outputs depend only on
    # construction-time config and the step they are called with, so resume
    # correctness does not depend on checkpointing them.  (Mask state,
    # ``history``, the budget and the rebalancer ARE checkpointed, in
    # state_dict().)
    CHECKPOINT_EXEMPT = {"drop_rule", "update_schedule", "drop_schedule", "schedule"}

    def __init__(
        self,
        masked: MaskedModel,
        growth_rule: GrowthRule,
        total_steps: int | None = None,
        drop_rule: DropRule | None = None,
        delta_t: int | None = None,
        drop_fraction: float | None = None,
        drop_schedule: str | None = None,
        stop_fraction: float | None = None,
        optimizer: Optimizer | None = None,
        allow_regrow: bool = False,
        global_drop: bool = False,
        grow_allocation: str = "per_layer",
        grad_ema_beta: float = 0.9,
        rng: np.random.Generator | None = None,
        *,
        schedule: TrainingSchedule | None = None,
        budget: DensityBudget | None = None,
        rebalancer=None,
    ):
        if grow_allocation not in ("per_layer", "proportional"):
            raise ValueError(f"unknown grow_allocation {grow_allocation!r}")
        legacy_timing = {
            "total_steps": total_steps,
            "delta_t": delta_t,
            "drop_fraction": drop_fraction,
            "drop_schedule": drop_schedule,
            "stop_fraction": stop_fraction,
        }
        if schedule is None:
            if total_steps is None:
                raise TypeError(
                    "pass schedule=TrainingSchedule(...) or the legacy "
                    "total_steps/delta_t/... kwargs"
                )
            schedule = TrainingSchedule(
                total_steps=int(total_steps),
                delta_t=100 if delta_t is None else int(delta_t),
                drop_fraction=0.3 if drop_fraction is None else float(drop_fraction),
                drop_schedule="cosine" if drop_schedule is None else drop_schedule,
                stop_fraction=0.75 if stop_fraction is None else float(stop_fraction),
            )
        elif any(value is not None for value in legacy_timing.values()):
            passed = sorted(k for k, v in legacy_timing.items() if v is not None)
            raise TypeError(f"pass either schedule= or {passed}, not both")
        self.masked = masked
        self.growth_rule = growth_rule
        self.drop_rule = drop_rule if drop_rule is not None else MagnitudeDrop()
        self.schedule = schedule
        self.update_schedule = schedule.update_schedule()
        self.drop_schedule = schedule.drop_fraction_schedule()
        self.budget = budget if budget is not None else masked.budget
        self.rebalancer = rebalancer
        self.optimizer = optimizer
        self.allow_regrow = bool(allow_regrow)
        self.global_drop = bool(global_drop)
        self.grow_allocation = grow_allocation
        self.grad_ema_beta = float(grad_ema_beta)
        self.rng = resolve_rng(rng)

        self.coverage = CoverageTracker(masked)
        self.history: list[MaskUpdateRecord] = []
        self._needs_ema = getattr(growth_rule, "needs_grad_ema", False)
        self._grad_ema: dict[str, np.ndarray] = {}
        self._ema_scratch: np.ndarray | None = None
        if self._needs_ema:
            # Preallocated EMA buffers plus one shared scratch sized to the
            # largest layer: the per-step EMA update allocates nothing.
            for target in masked.targets:
                self._grad_ema[target.name] = np.zeros_like(target.param.data)
            self._ema_scratch = np.empty(
                max((t.size for t in masked.targets), default=0), dtype=np.float32
            )
        self._exclude_scratch = np.zeros(
            max((t.size for t in masked.targets), default=0), dtype=bool
        )
        self._needs_signs = getattr(self.drop_rule, "needs_sign_reference", False)
        self._sign_refs: dict[str, np.ndarray] = {}
        if self._needs_signs:
            for target in masked.targets:
                self._sign_refs[target.name] = np.sign(target.param.data).astype(np.float32)

    # ------------------------------------------------------------------
    # trainer hooks
    # ------------------------------------------------------------------
    def before_backward(self, step: int) -> None:
        """Tell the kernels whether this step's backward needs dense grads.

        Growth rules only consult dense weight gradients at mask-update
        steps (EMA-based rules consult them every step), so in between the
        block kernels may compute active-tile gradients only.  The flag is
        a pure function of ``step``, which keeps kill-and-resume runs
        bitwise identical to uninterrupted ones.
        """
        dense_needed = self._needs_ema or self.update_schedule.is_update_step(step)
        for target in self.masked.targets:
            target.dense_grads_required = dense_needed

    def on_backward(self, step: int) -> bool:
        """Algorithm 1's branch: mask update (skip SGD) or masked gradient step."""
        if self._needs_ema:
            self._update_grad_ema()
        if self.update_schedule.is_update_step(step):
            self.mask_update(step)
            return True
        if self.masked.per_step_apply_needed:
            # A bound sparse-aware optimizer never reads inactive-coordinate
            # gradients, so zeroing them is pure overhead in that mode.
            self.masked.mask_gradients()
        return False

    def after_step(self, step: int) -> None:
        """Re-apply masks after the optimizer step (keeps the invariant exact).

        Skipped when a sparse-aware optimizer is bound to the masked model
        (:meth:`MaskedModel.bind_optimizer`): it only ever touches active
        coordinates, so inactive weights are already exactly zero.
        """
        if self.masked.per_step_apply_needed:
            self.masked.apply_masks()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _update_grad_ema(self) -> None:
        beta = self.grad_ema_beta
        for target in self.masked.targets:
            grad = target.param.grad
            if grad is None:
                continue
            ema = self._grad_ema[target.name]
            scratch = self._ema_scratch[: grad.size].reshape(grad.shape)
            np.multiply(ema, beta, out=ema)
            np.multiply(grad, 1.0 - beta, out=scratch)
            np.add(ema, scratch, out=ema)

    def _context(self, target: SparseParam, step: int) -> LayerContext:
        return LayerContext(
            step=step,
            rng=self.rng,
            dense_grad=target.param.grad,
            counter=self.coverage.counter_for(target.name),
            grad_ema=self._grad_ema.get(target.name),
            sign_reference=self._sign_refs.get(target.name),
        )

    @staticmethod
    def _unit_size(target: SparseParam) -> int:
        """Elements per drop/grow unit: ``B*B`` for block layers, else 1."""
        return target.block_size * target.block_size if target.indexer is not None else 1

    @staticmethod
    def _unit_counts(target: SparseParam) -> tuple[int, int]:
        """``(active, inactive)`` unit counts at the layer's granularity."""
        if target.indexer is not None:
            active = target.active_block_count
            return active, target.indexer.n_blocks - active
        active = target.active_count
        return active, target.size - active

    def _drop_counts(self, fraction: float) -> list[int]:
        """Per-layer number of *units* (blocks or weights) to move this round."""
        counts = []
        for target in self.masked.targets:
            active, inactive = self._unit_counts(target)
            k = int(fraction * active)
            # Cannot drop more than would leave the layer empty, nor grow
            # more than the number of inactive positions.
            k = min(k, max(active - 1, 0), inactive)
            counts.append(max(k, 0))
        return counts

    def _active_drop_scores(self, target: SparseParam, step: int) -> np.ndarray:
        """Drop-rule scores gathered at the (cached) active indices.

        Uses the rule's subset scorer when it has one, so ranking cost
        scales with the number of active weights rather than layer size.
        """
        ctx = self._context(target, step)
        active_idx = target.active_indices
        scores_at = getattr(self.drop_rule, "scores_at", None)
        if scores_at is not None:
            return np.asarray(scores_at(target, ctx, active_idx), dtype=np.float64)
        scores = np.asarray(self.drop_rule.scores(target, ctx), dtype=np.float64)
        return scores.reshape(-1)[active_idx]

    def _active_unit_drop_scores(self, target: SparseParam, step: int) -> np.ndarray:
        """Drop scores per active *unit*, aligned with the active unit order.

        Unstructured layers return element scores at ``active_indices``;
        block layers pool element scores to a tile mean (same scale as
        element scores, so global rankings mix granularities cleanly),
        aligned with ``active_blocks``.
        """
        scores = self._active_drop_scores(target, step)
        if target.indexer is None:
            return scores
        blocks = target.active_blocks
        block_ids = target.indexer.blocks_of_flat(target.active_indices)
        pos = np.searchsorted(blocks, block_ids)
        pooled = np.bincount(pos, weights=scores, minlength=blocks.size)
        return pooled / self._unit_size(target)

    def _global_drop_counts(self, fraction: float, step: int) -> list[int]:
        """DSR-style: rank all active units globally, drop the bottom set.

        Units are weighted by their element count, so the global budget
        (``fraction`` of active *weights*) stays exact when block and
        unstructured layers mix: units are taken in ascending-score order
        until the cumulative element weight reaches the budget.
        """
        all_scores = []
        owners = []
        weights = []
        total_active = 0
        for index, target in enumerate(self.masked.targets):
            unit_scores = self._active_unit_drop_scores(target, step)
            all_scores.append(unit_scores)
            owners.append(np.full(unit_scores.size, index))
            weights.append(np.full(unit_scores.size, self._unit_size(target)))
            total_active += target.active_count
        flat_scores = np.concatenate(all_scores)
        flat_owners = np.concatenate(owners)
        flat_weights = np.concatenate(weights)
        k_total = int(fraction * total_active)
        if k_total == 0:
            return [0] * len(self.masked.targets)
        order = np.argsort(flat_scores, kind="stable")
        cum = np.cumsum(flat_weights[order])
        n_chosen = int(np.searchsorted(cum, k_total))
        if n_chosen < order.size and cum[n_chosen] <= k_total:
            n_chosen += 1
        chosen = order[:n_chosen]
        counts = np.bincount(flat_owners[chosen], minlength=len(self.masked.targets))
        # Respect per-layer feasibility (in units).
        feasible = []
        for target, k in zip(self.masked.targets, counts):
            active, inactive = self._unit_counts(target)
            feasible.append(int(min(k, max(active - 1, 0), inactive)))
        return feasible

    def _allocate_growth(self, drop_counts: list[int]) -> list[int]:
        """How many *units* each layer grows back this round.

        Proportional allocation works in element space (the paper's budget
        is a weight count) and quantizes each block layer's share down to
        whole tiles; any quantization shortfall is made up by
        :meth:`_fill_deficit` reviving just-dropped weights.
        """
        if self.grow_allocation == "per_layer":
            return list(drop_counts)
        # Proportional (DSR): redistribute the global budget by active share.
        sizes = [self._unit_size(t) for t in self.masked.targets]
        total = int(sum(k * s for k, s in zip(drop_counts, sizes)))
        if total == 0:
            return [0] * len(drop_counts)
        actives = np.array(
            [t.active_count - k * s for t, k, s in zip(self.masked.targets, drop_counts, sizes)],
            dtype=np.float64,
        )
        if actives.sum() > 0:
            weights = actives / actives.sum()
        else:
            weights = np.ones_like(actives) / len(actives)
        raw = weights * total
        alloc = np.floor(raw).astype(int)
        remainder = total - alloc.sum()
        order = np.argsort(-(raw - alloc))
        for i in range(remainder):
            alloc[order[i % len(alloc)]] += 1
        # Clamp to available inactive slots per layer and quantize block
        # layers to whole tiles (floor — never exceed the element budget).
        units = []
        for index, (target, size) in enumerate(zip(self.masked.targets, sizes)):
            inactive_units = self._unit_counts(target)[1]
            capacity = (inactive_units + drop_counts[index]) * size
            elements = min(int(alloc[index]), capacity)
            units.append(elements // size)
        return units

    def mask_update(self, step: int) -> MaskUpdateRecord:
        """One drop-and-grow round.  Requires fresh (dense) gradients.

        Block layers drop and grow whole ``B×B`` tiles (unit counts from the
        allocators, tile-pooled scores for the rankings); unstructured
        layers keep the original element-granular path.

        Rebalancing phase: the round starts by letting the attached
        ``rebalancer`` (if any) move allocation between layers in
        ``self.budget``, then realizes whatever difference exists between
        the budget and the live masks — shrinking layers drop extra units,
        growing layers grow extra units — so per-layer grow counts may
        differ from drop counts while the *global* non-zero count lands
        exactly on ``budget.total``.  With an untouched budget and no
        rebalancer the round is identical to the classic symmetric
        drop-and-grow.
        """
        start = time.perf_counter()
        rebalanced = 0
        if self.rebalancer is not None:
            moves = self.rebalancer.rebalance(self.masked, self.budget, step) or {}
            rebalanced = int(sum(max(delta, 0) for delta in moves.values()))
        active_before = self.masked.total_active
        deltas = self.budget.deltas(self.masked)
        if any(deltas.values()):
            # target_density tracks the (re)allocations it is derived from.
            self.budget.bind(self.masked)
        fraction = self.drop_schedule(step)
        if self.global_drop:
            drop_counts = self._global_drop_counts(fraction, step)
        else:
            drop_counts = self._drop_counts(fraction)
        grow_counts = self._allocate_growth(drop_counts)

        # Fold the budget deltas into the per-layer unit counts: a layer
        # below its allocation grows extra units, a layer above it drops
        # extra units (never severing — at least one unit stays active).
        for index, target in enumerate(self.masked.targets):
            delta_units = deltas.get(target.name, 0) // self._unit_size(target)
            if delta_units > 0:
                grow_counts[index] += delta_units
            elif delta_units < 0:
                active_units = self._unit_counts(target)[0]
                headroom = max(active_units - 1 - drop_counts[index], 0)
                drop_counts[index] += min(-delta_units, headroom)
        for index, target in enumerate(self.masked.targets):
            inactive_units = self._unit_counts(target)[1]
            grow_counts[index] = min(grow_counts[index], inactive_units + drop_counts[index])

        total_dropped = 0
        total_grown = 0
        dropped_indices: list[np.ndarray] = []  # element indices (all layers)
        dropped_blocks: list[np.ndarray | None] = []  # block ids (block layers)

        # ---------------- drop phase ----------------
        for target, k_drop in zip(self.masked.targets, drop_counts):
            if k_drop <= 0:
                dropped_indices.append(np.empty(0, dtype=np.int64))
                dropped_blocks.append(
                    np.empty(0, dtype=np.int64) if target.indexer is not None else None
                )
                continue
            if target.indexer is not None:
                active_blocks = target.active_blocks
                block_scores = self._active_unit_drop_scores(target, step)
                order = np.argpartition(block_scores, k_drop - 1)[:k_drop]
                drop_blk = active_blocks[order]
                drop_idx = target.drop_blocks(drop_blk)
                dropped_blocks.append(drop_blk)
            else:
                active_idx = target.active_indices
                active_scores = self._active_drop_scores(target, step)
                order = np.argpartition(active_scores, k_drop - 1)[:k_drop]
                drop_idx = active_idx[order]
                target.mask.reshape(-1)[drop_idx] = False
                target.mark_mask_dirty()
                dropped_blocks.append(None)
            dropped_indices.append(drop_idx)
            total_dropped += int(drop_idx.size)

        # ---------------- grow phase ----------------
        for target, k_grow, drop_idx, drop_blk in zip(
            self.masked.targets, grow_counts, dropped_indices, dropped_blocks
        ):
            if k_grow <= 0:
                continue
            if target.indexer is not None:
                total_grown += self._grow_layer_blocks(target, k_grow, drop_blk, step)
            else:
                total_grown += self._grow_layer(target, k_grow, drop_idx, step)

        # Keep the global non-zero count exact: the round must land on
        # ``budget.total`` (== the pre-round active count plus any net
        # budget change), so if allocation clamping or a shortage of
        # inactive slots left a deficit, re-activate the best just-dropped
        # weights anywhere.
        net = self.budget.total - active_before
        deficit = total_dropped + net - total_grown
        if deficit > 0:
            total_grown += self._fill_deficit(deficit, dropped_indices, dropped_blocks)

        # ---------------- bookkeeping ----------------
        self.masked.apply_masks()
        self.coverage.update()
        record = MaskUpdateRecord(
            step=step,
            round_index=self.coverage.rounds,
            drop_fraction=fraction,
            total_dropped=total_dropped,
            total_grown=total_grown,
            exploration_rate=self.coverage.exploration_rate(),
            global_density=self.masked.global_density(),
            duration_ms=(time.perf_counter() - start) * 1e3,
            rebalanced=rebalanced,
        )
        self.history.append(record)
        return record

    def _grow_layer(self, target: SparseParam, k_grow: int, drop_idx: np.ndarray, step: int) -> int:
        """Activate up to ``k_grow`` inactive weights in one layer."""
        candidate_idx = target.inactive_indices
        if not self.allow_regrow and drop_idx.size:
            # O(candidates) membership test via a reused scratch table (a
            # sort-based set difference is ~50x slower at these sizes).
            exclude = self._exclude_scratch
            exclude[drop_idx] = True
            candidate_idx = candidate_idx[~exclude[candidate_idx]]
            exclude[drop_idx] = False
        if candidate_idx.size == 0:
            return 0
        k = min(k_grow, candidate_idx.size)
        ctx = self._context(target, step)
        # Native dtype throughout: growth ranking is the dominant cost of a
        # round, and an f64 upcast of a full-size score array doubles its
        # memory traffic for no ranking benefit.
        scores = np.asarray(self.growth_rule.scores(target, ctx)).reshape(-1)
        candidate_scores = scores[candidate_idx]
        if k < candidate_idx.size:
            top = np.argpartition(candidate_scores, candidate_scores.size - k)[
                candidate_scores.size - k:
            ]
        else:
            top = np.arange(candidate_idx.size)
        grow_idx = candidate_idx[top]
        target.mask.reshape(-1)[grow_idx] = True
        target.mark_mask_dirty()
        self._init_grown(target, grow_idx)
        return int(grow_idx.size)

    def _grow_layer_blocks(
        self, target: SparseParam, k_grow: int, drop_blk: np.ndarray, step: int
    ) -> int:
        """Activate up to ``k_grow`` inactive *tiles* in a block layer.

        Growth scores are tile-pooled (mean), so every existing growth rule
        works unchanged; grown tiles start at zero with fresh optimizer
        state, exactly like element growth.
        """
        candidate_blk = target.inactive_blocks
        if not self.allow_regrow and drop_blk is not None and drop_blk.size:
            # Scratch-table membership test, same trick as the element path:
            # hash-based setdiff1d shows up as the top mask-update cost.
            exclude = np.zeros(target.indexer.n_blocks, dtype=bool)
            exclude[drop_blk] = True
            candidate_blk = candidate_blk[~exclude[candidate_blk]]
        if candidate_blk.size == 0:
            return 0
        k = min(k_grow, candidate_blk.size)
        ctx = self._context(target, step)
        scores = np.asarray(self.growth_rule.scores(target, ctx))
        rows, cols = target.shape2d
        pooled = target.indexer.pool(scores.reshape(rows, cols))
        candidate_scores = pooled[candidate_blk]
        if k < candidate_blk.size:
            top = np.argpartition(candidate_scores, candidate_scores.size - k)[
                candidate_scores.size - k:
            ]
        else:
            top = np.arange(candidate_blk.size)
        grow_idx = target.grow_blocks(candidate_blk[top])
        self._init_grown(target, grow_idx)
        return int(grow_idx.size)

    def _init_grown(self, target: SparseParam, grow_idx: np.ndarray) -> None:
        """Newly grown weights start from zero with fresh optimizer state."""
        flat_weights = target.param.data.reshape(-1)
        flat_weights[grow_idx] = 0.0
        self._reset_optimizer_state(target, grow_idx)
        if self._needs_signs:
            # DeepR assigns a random sign to re-activated connections.
            signs = self._sign_refs[target.name].reshape(-1)
            signs[grow_idx] = self.rng.choice([-1.0, 1.0], size=grow_idx.size)

    def _fill_deficit(
        self,
        deficit: int,
        dropped_indices: list[np.ndarray],
        dropped_blocks: list[np.ndarray | None] | None = None,
    ) -> int:
        """Re-activate the highest-|w| just-dropped weights to keep k fixed.

        Candidates are whole units: just-dropped elements (unstructured
        layers) or just-dropped tiles (block layers, scored by tile-mean
        magnitude, weighted by their ``B*B`` element count).  Units are
        revived greedily in descending magnitude while they fit the
        remaining element deficit, so a block layer can undershoot by at
        most ``B*B - 1`` elements when granularities mix — the density
        error is transient (the next round re-balances from the mask).
        """
        if dropped_blocks is None:
            dropped_blocks = [None] * len(dropped_indices)
        magnitudes: list[np.ndarray] = []
        owners: list[np.ndarray] = []
        positions: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for index, (target, drop_idx, drop_blk) in enumerate(
            zip(self.masked.targets, dropped_indices, dropped_blocks)
        ):
            if drop_idx.size == 0:
                continue
            if target.indexer is not None:
                # Tiles dropped this round and not re-grown.
                scratch = np.zeros(target.indexer.n_blocks, dtype=bool)
                scratch[drop_blk] = True
                scratch[target.active_blocks] = False
                candidates = np.flatnonzero(scratch)
                if candidates.size == 0:
                    continue
                tiles = target.param.data.reshape(-1)[target.indexer.expand_blocks(candidates)]
                magnitudes.append(np.abs(tiles).mean(axis=1))
                weights.append(np.full(candidates.size, self._unit_size(target), dtype=np.int64))
            else:
                flat_mask = target.mask.reshape(-1)
                candidates = drop_idx[~flat_mask[drop_idx]]  # not re-grown this round
                if candidates.size == 0:
                    continue
                magnitudes.append(np.abs(target.param.data.reshape(-1)[candidates]))
                weights.append(np.ones(candidates.size, dtype=np.int64))
            owners.append(np.full(candidates.size, index))
            positions.append(candidates)
        if not magnitudes:
            return 0
        flat_mag = np.concatenate(magnitudes)
        flat_owner = np.concatenate(owners)
        flat_pos = np.concatenate(positions)
        flat_weight = np.concatenate(weights)
        order = np.argsort(-flat_mag, kind="stable")
        remaining = deficit
        take = np.zeros(flat_mag.size, dtype=bool)
        for i in order:
            w = int(flat_weight[i])
            if w <= remaining:
                take[i] = True
                remaining -= w
                if remaining == 0:
                    break
        revived = 0
        for index, target in enumerate(self.masked.targets):
            revive = flat_pos[take & (flat_owner == index)]
            if revive.size == 0:
                continue
            if target.indexer is not None:
                revived += int(target.grow_blocks(revive).size)
            else:
                target.mask.reshape(-1)[revive] = True
                target.mark_mask_dirty()
                revived += int(revive.size)
        return revived

    def _reset_optimizer_state(self, target: SparseParam, grow_idx: np.ndarray) -> None:
        if self.optimizer is None:
            return
        state = self.optimizer.state.get(id(target.param))
        if not state:
            return
        for value in state.values():
            if isinstance(value, np.ndarray) and value.shape == target.param.shape:
                value.reshape(-1)[grow_idx] = 0.0

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything the drop-and-grow state machine needs to resume exactly.

        On top of the base masks: coverage counters (Algorithm 1's ``N``),
        the mask-update history, the engine RNG's bit-generator state
        (random growth / tie-breaking), the dense-gradient EMA (SNFS) and
        the sign references (DeepR).  The update/drop schedules are pure
        functions of the global step, so they need no state.
        """
        state = super().state_dict()
        state["coverage"] = self.coverage.state_dict()
        state["history"] = [vars(record).copy() for record in self.history]
        state["rng"] = self.rng.bit_generator.state
        if self._needs_ema:
            state["grad_ema"] = {name: arr.copy() for name, arr in self._grad_ema.items()}
        if self._needs_signs:
            state["sign_refs"] = {name: arr.copy() for name, arr in self._sign_refs.items()}
        if self.rebalancer is not None:
            state["rebalancer"] = self.rebalancer.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place (resume-exact)."""
        super().load_state_dict(state)
        self.coverage.load_state_dict(state["coverage"])
        self.history = [
            MaskUpdateRecord(**{k: v for k, v in record.items()})
            for record in state["history"]
        ]
        self.rng.bit_generator.state = state["rng"]
        for name, saved in state.get("grad_ema", {}).items():
            if name not in self._grad_ema:
                raise KeyError(f"gradient EMA for unknown layer {name!r}")
            np.copyto(self._grad_ema[name], saved.reshape(self._grad_ema[name].shape))
        for name, saved in state.get("sign_refs", {}).items():
            if name not in self._sign_refs:
                raise KeyError(f"sign reference for unknown layer {name!r}")
            np.copyto(self._sign_refs[name], saved.reshape(self._sign_refs[name].shape))
        if "rebalancer" in state and self.rebalancer is not None:
            self.rebalancer.load_state_dict(state["rebalancer"])

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def exploration_curve(self) -> list[tuple[int, float]]:
        """``(round, exploration_rate)`` series — the Fig. 3 left panels."""
        return [(r.round_index, r.exploration_rate) for r in self.history]
