"""Drop-fraction and mask-update schedules.

RigL (and the paper, which keeps RigL's training recipe) anneal the fraction
of weights moved per drop-and-grow step with a cosine schedule and stop
updating the mask after a fixed fraction of training.  MEST instead decays
the rate linearly.  All variants live here so the engine stays agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = [
    "DropFractionSchedule",
    "ConstantSchedule",
    "CosineDecaySchedule",
    "LinearDecaySchedule",
    "UpdateSchedule",
    "TrainingSchedule",
    "make_drop_schedule",
]


class DropFractionSchedule:
    """Base: maps a training step to a drop fraction in [0, 1)."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantSchedule(DropFractionSchedule):
    """Fixed drop fraction (SET's behaviour)."""

    def __init__(self, fraction: float):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"drop fraction must be in (0, 1), got {fraction}")
        self.fraction = float(fraction)

    def __call__(self, step: int) -> float:
        return self.fraction


class CosineDecaySchedule(DropFractionSchedule):
    """RigL's ``f(t) = f0/2 · (1 + cos(π t / T))`` annealing."""

    def __init__(self, fraction: float, total_steps: int):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"drop fraction must be in (0, 1), got {fraction}")
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        self.fraction = float(fraction)
        self.total_steps = int(total_steps)

    def __call__(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        return self.fraction * 0.5 * (1.0 + math.cos(math.pi * progress))


class LinearDecaySchedule(DropFractionSchedule):
    """MEST-style linear decay from ``fraction`` to ``end_fraction``."""

    def __init__(self, fraction: float, total_steps: int, end_fraction: float = 0.0):
        self.fraction = float(fraction)
        self.end_fraction = float(end_fraction)
        self.total_steps = int(total_steps)

    def __call__(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        return self.fraction + (self.end_fraction - self.fraction) * progress


class UpdateSchedule:
    """When mask updates happen: every ``delta_t`` steps until ``stop_step``.

    Following Algorithm 1 ("t mod ΔT == 0 and t < T_end") with RigL's
    convention of freezing the topology for the last part of training
    (``stop_fraction`` of the total budget, default 0.75).
    """

    def __init__(self, delta_t: int, total_steps: int, stop_fraction: float = 0.75):
        if delta_t <= 0:
            raise ValueError(f"delta_t must be positive, got {delta_t}")
        if not 0.0 < stop_fraction <= 1.0:
            raise ValueError(f"stop_fraction must be in (0, 1], got {stop_fraction}")
        self.delta_t = int(delta_t)
        self.total_steps = int(total_steps)
        self.stop_step = int(stop_fraction * total_steps)

    def is_update_step(self, step: int) -> bool:
        """True when ``step`` is a drop-and-grow step."""
        return step > 0 and step % self.delta_t == 0 and step < self.stop_step


@dataclass(frozen=True)
class TrainingSchedule:
    """Every *when/how-much* knob of a sparsity controller, in one value.

    Part of the unified controller API (see docs/controllers.md): instead
    of each controller growing its own ``total_steps``/``delta_t``/
    ``drop_fraction``/... kwargs, every controller accepts
    ``(masked, schedule, budget, ...)``.  Density lives in the
    :class:`~repro.sparse.budget.DensityBudget`; timing lives here.

    ``t_start_fraction``/``t_end_fraction`` are only consumed by the
    dense-to-sparse schedules (GMP/STR); the drop-and-grow engine uses
    ``drop_fraction``/``drop_schedule``/``stop_fraction``.
    """

    total_steps: int
    delta_t: int = 100
    drop_fraction: float = 0.3
    drop_schedule: str = "cosine"
    stop_fraction: float = 0.75
    t_start_fraction: float = 0.1
    t_end_fraction: float = 0.7

    def __post_init__(self):
        if self.total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {self.total_steps}")
        if self.delta_t <= 0:
            raise ValueError(f"delta_t must be positive, got {self.delta_t}")

    def with_overrides(self, **changes) -> "TrainingSchedule":
        """Copy with some fields replaced (method-specific overrides)."""
        return replace(self, **changes)

    def update_schedule(self) -> UpdateSchedule:
        return UpdateSchedule(self.delta_t, self.total_steps, self.stop_fraction)

    def drop_fraction_schedule(self) -> DropFractionSchedule:
        return make_drop_schedule(self.drop_schedule, self.drop_fraction, self.total_steps)

    @property
    def t_start(self) -> int:
        return int(self.t_start_fraction * self.total_steps)

    @property
    def t_end(self) -> int:
        return int(self.t_end_fraction * self.total_steps)


def make_drop_schedule(kind: str, fraction: float, total_steps: int) -> DropFractionSchedule:
    """Build a named schedule (``"constant"``, ``"cosine"``, ``"linear"``)."""
    kind = kind.lower()
    if kind == "constant":
        return ConstantSchedule(fraction)
    if kind == "cosine":
        return CosineDecaySchedule(fraction, total_steps)
    if kind == "linear":
        return LinearDecaySchedule(fraction, total_steps)
    raise ValueError(f"unknown drop schedule {kind!r}")
