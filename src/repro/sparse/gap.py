"""GaP — scheduled grow-and-prune (Ma et al., ICLR'22), from related work.

The paper's §II discusses GaP as the coverage-maximizing alternative:
partition the network's layers, cyclically *grow one partition to dense*
while the previous dense partition is *pruned back to sparse*, so that over
a full cycle every weight gets training time.  Its drawback — motivating
DST-EE — is cost: one partition always trains dense.

This controller implements that schedule on top of :class:`MaskedModel`:

* layers are split into ``n_partitions`` round-robin groups;
* every ``period`` steps the active partition advances: the new one's masks
  are set to all-ones (grow to dense; revived weights start at zero), and
  the outgoing one is magnitude-pruned back to its per-layer target density;
* gradients outside the masks are zeroed, exactly as in the drop-and-grow
  engine.

Because one partition is dense at all times, the training-FLOPs multiplier
sits well above the fixed-budget dynamic methods — the comparison the
benches surface.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.budget import DensityBudget
from repro.sparse.engine import SparsityController
from repro.sparse.masked import MaskedModel
from repro.sparse.schedule import TrainingSchedule

__all__ = ["GaPController"]


class GaPController(SparsityController):
    """Cyclic grow-and-prune over layer partitions.

    Unified form (see docs/controllers.md)::

        GaPController(masked, schedule, budget, n_partitions=..., period=...)

    ``budget`` holds the *sparse-phase* per-layer allocations each partition
    is pruned back to after its dense excursion; it defaults to
    ``masked.budget`` (the construction-time split).  The legacy form
    ``GaPController(masked, total_steps, ...)`` — second positional argument
    an ``int`` — still works and is mapped onto a default schedule.

    Parameters
    ----------
    masked:
        A :class:`MaskedModel` built at the *target* sparsity; the budget's
        densities define what each partition is pruned back to.
    n_partitions:
        Number of round-robin layer groups (the paper's GaP uses a handful).
    period:
        Steps between partition rotations (default: an equal share of the
        first ``stop_fraction`` of training, leaving the tail fully sparse).
    """

    # The rotation geometry and the sparse-phase targets are fixed at
    # construction; only masks/partition pointer/history evolve.
    CHECKPOINT_EXEMPT = {"budget", "schedule"}

    def __init__(
        self,
        masked: MaskedModel,
        schedule: TrainingSchedule | int | None = None,
        budget: DensityBudget | None = None,
        n_partitions: int = 4,
        period: int | None = None,
        *,
        total_steps: int | None = None,
    ):
        if isinstance(schedule, int) or total_steps is not None:
            # Legacy form: (masked, total_steps, ...).  No deprecation churn:
            # the int maps 1:1 onto a schedule with GaP's stop fraction.
            if total_steps is None:
                total_steps = int(schedule)
            schedule = TrainingSchedule(
                total_steps=int(total_steps),
                delta_t=max(1, period if period is not None else 1),
                stop_fraction=0.75,
            )
        elif schedule is None:
            raise TypeError("pass schedule=TrainingSchedule(...) or the legacy total_steps int")
        if n_partitions < 1:
            raise ValueError(f"need >= 1 partition, got {n_partitions}")
        self.masked = masked
        self.schedule = schedule
        self.budget = budget if budget is not None else masked.budget
        self.n_partitions = min(int(n_partitions), len(masked.targets))
        self.total_steps = schedule.total_steps
        rotations = 2 * self.n_partitions  # two full cycles by default
        self.stop_step = int(schedule.stop_fraction * self.total_steps)
        default_period = max(1, self.stop_step // max(rotations, 1))
        self.period = int(period) if period is not None else default_period
        self._partitions: list[list[int]] = [
            list(range(start, len(masked.targets), self.n_partitions))
            for start in range(self.n_partitions)
        ]
        self._dense_partition: int | None = None
        # Sparse-phase targets come from the budget, not the live masks: a
        # partition mid-excursion is dense, but it returns to its allocation.
        self._target_densities = [
            self.budget.density(t.name) if t.name in self.budget else t.target_density
            for t in masked.targets
        ]
        self.history: list[tuple[int, int]] = []
        # Grow the first partition immediately so training starts mid-cycle.
        self._rotate(step=0)

    # ------------------------------------------------------------------
    def on_backward(self, step: int) -> bool:
        if step > 0 and step % self.period == 0 and step < self.stop_step:
            self._rotate(step)
        elif step >= self.stop_step and self._dense_partition is not None:
            # Final rotation: prune the last dense partition, go fully sparse.
            self._prune_partition(self._dense_partition)
            self._dense_partition = None
        self.masked.mask_gradients()
        return False

    def after_step(self, step: int) -> None:
        self.masked.apply_masks()

    # ------------------------------------------------------------------
    def _rotate(self, step: int) -> None:
        next_partition = (
            0 if self._dense_partition is None
            else (self._dense_partition + 1) % self.n_partitions
        )
        if self._dense_partition is not None:
            self._prune_partition(self._dense_partition)
        self._grow_partition(next_partition)
        self._dense_partition = next_partition
        self.history.append((step, next_partition))

    def _grow_partition(self, partition: int) -> None:
        """Set every layer in the partition to dense (revivals start at 0)."""
        for layer_index in self._partitions[partition]:
            target = self.masked.targets[layer_index]
            revived = ~target.mask
            target.param.data.reshape(-1)[revived.reshape(-1)] = 0.0
            target.mask = np.ones_like(target.mask)

    def _prune_partition(self, partition: int) -> None:
        """Magnitude-prune the partition back to its per-layer densities."""
        for layer_index in self._partitions[partition]:
            target = self.masked.targets[layer_index]
            density = self._target_densities[layer_index]
            k = max(1, int(round(density * target.size)))
            flat = np.abs(target.param.data.reshape(-1))
            keep = np.argpartition(-flat, k - 1)[:k]
            mask = np.zeros(target.size, dtype=bool)
            mask[keep] = True
            target.mask = mask.reshape(target.mask.shape)
            target.apply()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["dense_partition"] = self._dense_partition
        state["history"] = [tuple(item) for item in self.history]
        return state

    def load_state_dict(self, state: dict) -> None:
        # The constructor already ran _rotate(0); restoring masks (base) plus
        # the dense-partition pointer and rotation history makes the resumed
        # controller bitwise-match the one that was saved.
        super().load_state_dict(state)
        if "dense_partition" in state:
            raw = state["dense_partition"]
            self._dense_partition = None if raw is None else int(raw)
        if "history" in state:
            self.history = [(int(step), int(part)) for step, part in state["history"]]

    # ------------------------------------------------------------------
    def dense_fraction(self) -> float:
        """Fraction of sparsifiable weights currently in the dense partition."""
        if self._dense_partition is None:
            return 0.0
        dense_size = sum(
            self.masked.targets[i].size
            for i in self._partitions[self._dense_partition]
        )
        return dense_size / self.masked.total_size
