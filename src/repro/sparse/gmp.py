"""Gradual magnitude pruning (dense-to-sparse), GraNet-style schedule.

Training starts dense; every ``delta_t`` steps between ``t_start`` and
``t_end`` the global sparsity is raised along the cubic schedule of Zhu &
Gupta (2018) (also used by GraNet, the source of the paper's baseline
numbers):

``s(t) = s_f + (s_i − s_f) · (1 − (t − t0)/(t1 − t0))³``

Pruning is global magnitude: the smallest-|w| active weights are removed.
Optionally, a RigL-style regrow step (``regrow_fraction > 0``) reactivates a
fraction of pruned weights by gradient magnitude — GraNet's
"neuroregeneration".  With ``regrow_fraction=0`` this is classic GMP.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.sparse.budget import DensityBudget
from repro.sparse.engine import SparsityController
from repro.sparse.masked import MaskedModel
from repro.sparse.schedule import TrainingSchedule
from repro.rng import resolve_rng

__all__ = ["cubic_sparsity", "GMPController"]


def cubic_sparsity(step: int, t_start: int, t_end: int, initial: float, final: float) -> float:
    """Zhu–Gupta cubic sparsity schedule, clamped outside ``[t_start, t_end]``."""
    if step <= t_start:
        return initial
    if step >= t_end:
        return final
    progress = (step - t_start) / (t_end - t_start)
    return final + (initial - final) * (1.0 - progress) ** 3


class GMPController(SparsityController):
    """Dense-to-sparse gradual magnitude pruning.

    Unified form (see docs/controllers.md)::

        GMPController(masked, schedule, budget, regrow_fraction=..., rng=...)

    where ``schedule`` is a :class:`~repro.sparse.schedule.TrainingSchedule`
    (its ``t_start_fraction``/``t_end_fraction``/``delta_t`` drive the
    pruning window) and ``budget`` is the *final*
    :class:`~repro.sparse.budget.DensityBudget` — the global allocation the
    cubic schedule prunes down to (per-layer split nominal: GMP prunes by
    global magnitude).

    The pre-budget form ``GMPController(masked, final_sparsity,
    total_steps, ...)`` still works for one release and emits a
    :class:`DeprecationWarning`.

    Parameters
    ----------
    masked:
        A :class:`MaskedModel` built with ``sparsity=initial_sparsity``
        (usually 0 ⇒ all-ones masks).
    regrow_fraction:
        If > 0, after each prune event, re-activate this fraction of the
        *pruned-this-step* count by dense-gradient magnitude (GraNet).
    """

    # ``budget`` and ``schedule`` are construction-time config (the final
    # target and the pruning window); they never mutate during training, so
    # resume correctness does not depend on checkpointing them.
    CHECKPOINT_EXEMPT = {"budget", "schedule"}

    def __init__(
        self,
        masked: MaskedModel,
        schedule: TrainingSchedule | float | None = None,
        budget: DensityBudget | int | None = None,
        t_start_fraction: float | None = None,
        t_end_fraction: float | None = None,
        delta_t: int | None = None,
        regrow_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
        *,
        final_sparsity: float | None = None,
        total_steps: int | None = None,
    ):
        if isinstance(schedule, (int, float)) or final_sparsity is not None:
            # Legacy form: (masked, final_sparsity, total_steps, ...).
            warnings.warn(
                "GMPController(masked, final_sparsity, total_steps, ...) is "
                "deprecated; pass a TrainingSchedule and a final DensityBudget "
                "(see docs/controllers.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            if final_sparsity is None:
                final_sparsity = float(schedule)
            if total_steps is None:
                if budget is None:
                    raise TypeError("the legacy GMPController form needs total_steps")
                total_steps = int(budget)
            schedule = TrainingSchedule(
                total_steps=int(total_steps),
                delta_t=100 if delta_t is None else int(delta_t),
                t_start_fraction=(
                    0.1 if t_start_fraction is None else float(t_start_fraction)
                ),
                t_end_fraction=0.7 if t_end_fraction is None else float(t_end_fraction),
            )
            budget = None
        else:
            if schedule is None:
                raise TypeError(
                    "pass schedule=TrainingSchedule(...) and a final DensityBudget "
                    "(or the legacy final_sparsity/total_steps form)"
                )
            if budget is None:
                raise TypeError("the unified GMPController form needs a final budget")
            if t_start_fraction is not None or t_end_fraction is not None or delta_t is not None:
                raise TypeError("timing knobs live on the TrainingSchedule")
            final_sparsity = 1.0 - budget.total / budget.capacity
        if not 0.0 < final_sparsity < 1.0:
            raise ValueError(f"final_sparsity must be in (0, 1), got {final_sparsity}")
        self.masked = masked
        self.schedule = schedule
        self.budget = budget
        self.final_sparsity = float(final_sparsity)
        self.initial_sparsity = masked.global_sparsity()
        self.total_steps = schedule.total_steps
        self.t_start = schedule.t_start
        self.t_end = schedule.t_end
        self.delta_t = schedule.delta_t
        self.regrow_fraction = float(regrow_fraction)
        self.rng = resolve_rng(rng)
        self.history: list[tuple[int, float]] = []

    def current_target(self, step: int) -> float:
        """Scheduled sparsity at ``step``."""
        return cubic_sparsity(
            step, self.t_start, self.t_end, self.initial_sparsity, self.final_sparsity
        )

    def on_backward(self, step: int) -> bool:
        if step % self.delta_t == 0 and self.t_start <= step <= self.t_end + self.delta_t:
            self._prune_to(self.current_target(step))
            # The masked model's budget mirrors the pruned masks, so budget
            # accessors (global_budget, layer_allocations) stay truthful
            # while the cubic schedule tightens.
            self.masked.budget.refresh_from_masks(self.masked)
            self.history.append((step, self.masked.global_sparsity()))
        self.masked.mask_gradients()
        return False

    def after_step(self, step: int) -> None:
        self.masked.apply_masks()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["history"] = [[int(step), float(s)] for step, s in self.history]
        state["rng"] = self.rng.bit_generator.state
        # Captured from the *live* masks at construction: a resumed run
        # constructs against already-pruned masks, so without this the cubic
        # schedule would restart from the wrong starting sparsity.
        state["initial_sparsity"] = self.initial_sparsity
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.history = [(int(step), float(s)) for step, s in state["history"]]
        self.rng.bit_generator.state = state["rng"]
        if "initial_sparsity" in state:
            self.initial_sparsity = float(state["initial_sparsity"])

    # ------------------------------------------------------------------
    def _prune_to(self, sparsity: float, allow_regrow: bool = True) -> None:
        """Globally remove smallest-|w| active weights down to ``1-sparsity``."""
        total = self.masked.total_size
        target_active = max(len(self.masked.targets), int(round((1.0 - sparsity) * total)))
        current_active = self.masked.total_active
        to_remove = current_active - target_active
        if to_remove <= 0:
            return
        magnitudes = []
        owners = []
        positions = []
        for index, target in enumerate(self.masked.targets):
            flat_mask = target.mask.reshape(-1)
            active_idx = np.flatnonzero(flat_mask)
            magnitudes.append(np.abs(target.param.data.reshape(-1)[active_idx]))
            owners.append(np.full(active_idx.size, index))
            positions.append(active_idx)
        flat_mag = np.concatenate(magnitudes)
        flat_owner = np.concatenate(owners)
        flat_pos = np.concatenate(positions)
        chosen = np.argpartition(flat_mag, to_remove - 1)[:to_remove]
        pruned_per_layer: dict[int, list[int]] = {}
        for c in chosen:
            pruned_per_layer.setdefault(int(flat_owner[c]), []).append(int(flat_pos[c]))
        for layer_index, indices in pruned_per_layer.items():
            target = self.masked.targets[layer_index]
            flat_mask = target.mask.reshape(-1)
            flat_mask[np.asarray(indices, dtype=np.int64)] = False
            if flat_mask.sum() == 0:  # never sever a layer
                best = int(np.argmax(np.abs(target.param.data)))
                flat_mask[best] = True
            target.mark_mask_dirty()
        if allow_regrow and self.regrow_fraction > 0.0:
            self._regrow(int(self.regrow_fraction * to_remove))
        self.masked.apply_masks()

    def _regrow(self, count: int) -> None:
        """GraNet neuroregeneration: regrow by dense-gradient magnitude.

        To keep the scheduled sparsity exact, an equal number of the
        smallest-|w| active weights is removed again afterwards.
        """
        if count <= 0:
            return
        entries = []
        for index, target in enumerate(self.masked.targets):
            grad = target.param.grad
            if grad is None:
                continue
            flat_mask = target.mask.reshape(-1)
            inactive_idx = np.flatnonzero(~flat_mask)
            if inactive_idx.size == 0:
                continue
            scores = np.abs(grad.reshape(-1)[inactive_idx])
            take = min(count, inactive_idx.size)
            if take < scores.size:
                top = np.argpartition(-scores, take - 1)[:take]
            else:
                top = np.arange(scores.size)
            for t in top:
                entries.append((float(scores[t]), index, int(inactive_idx[t])))
        entries.sort(key=lambda e: -e[0])
        grown = 0
        for _score, layer_index, pos in entries[:count]:
            target = self.masked.targets[layer_index]
            target.mask.reshape(-1)[pos] = True
            target.mark_mask_dirty()
            target.param.data.reshape(-1)[pos] = 0.0
            grown += 1
        if grown:
            self._prune_to(
                self.masked.global_sparsity() + grown / self.masked.total_size,
                allow_regrow=False,
            )
