"""ADMM prune-from-dense (Zhang et al., ECCV'18) — the Tables III/IV baseline.

The paper compares DST-EE against "the best sparse model pruned from the
dense model using ADMM", trained 60 epochs: 20 pretrain + 20 reweighted
ADMM + 20 retrain after hard pruning.  This module provides the ADMM state
machine; the three-phase pipeline lives in
:func:`repro.experiments.gnn.run_admm_prune_from_dense`.

ADMM splits the constrained problem  ``min L(W)  s.t.  ‖W_l‖₀ ≤ k_l``
into a differentiable part and a projection:

* during training, each target layer receives the augmented-Lagrangian
  gradient ``ρ (W − Z + U)`` in addition to the task gradient;
* periodically, ``Z ← Π_k(W + U)`` (Euclidean projection onto the k-sparse
  set = keep top-k by magnitude) and ``U ← U + W − Z``.

After the ADMM phase, :meth:`ADMMPruner.hard_prune_masks` keeps the top-k
weights per layer; retraining then proceeds with a fixed mask.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.sparse.masked import collect_sparsifiable

__all__ = ["ADMMPruner", "project_topk"]


def project_topk(weights: np.ndarray, density: float) -> np.ndarray:
    """Euclidean projection onto the k-sparse set (keep top-k by |w|)."""
    flat = weights.reshape(-1)
    k = max(1, int(round(density * flat.size)))
    projected = np.zeros_like(flat)
    keep = np.argpartition(-np.abs(flat), k - 1)[:k]
    projected[keep] = flat[keep]
    return projected.reshape(weights.shape)


class ADMMPruner:
    """ADMM state (Z, U) for pruning selected layers to a uniform sparsity.

    Parameters
    ----------
    model:
        The network being pruned.
    sparsity:
        Per-layer sparsity (the GNN experiments use uniform ratios).
    rho:
        Augmented-Lagrangian penalty coefficient.
    include_modules:
        Restrict to specific layers (e.g. the GNN's two FC layers).
    """

    def __init__(
        self,
        model: Module,
        sparsity: float,
        rho: float = 1e-2,
        include_modules=None,
    ):
        if not 0.0 < sparsity < 1.0:
            raise ValueError(f"sparsity must be in (0, 1), got {sparsity}")
        self.model = model
        self.sparsity = float(sparsity)
        self.density = 1.0 - self.sparsity
        self.rho = float(rho)
        self.targets = collect_sparsifiable(model, include_modules)
        self.Z = {
            name: project_topk(param.data.astype(np.float64), self.density)
            for name, param in self.targets
        }
        self.U = {name: np.zeros(param.shape, dtype=np.float64) for name, param in self.targets}

    def add_penalty_gradients(self) -> None:
        """Add ``ρ(W − Z + U)`` to each target's gradient (call post-backward)."""
        for name, param in self.targets:
            penalty = self.rho * (param.data - self.Z[name] + self.U[name])
            if param.grad is None:
                param.grad = penalty.astype(param.dtype)
            else:
                param.grad = param.grad + penalty.astype(param.dtype)

    def penalty_value(self) -> float:
        """Current augmented-Lagrangian penalty ``ρ/2 Σ‖W − Z + U‖²``."""
        total = 0.0
        for name, param in self.targets:
            diff = param.data - self.Z[name] + self.U[name]
            total += float((diff**2).sum())
        return 0.5 * self.rho * total

    def dual_update(self) -> None:
        """``Z ← Π_k(W + U)``; ``U ← U + W − Z`` (call every few epochs)."""
        for name, param in self.targets:
            w = param.data.astype(np.float64)
            self.Z[name] = project_topk(w + self.U[name], self.density)
            self.U[name] = self.U[name] + w - self.Z[name]

    def primal_residual(self) -> float:
        """``Σ‖W − Z‖ / Σ‖W‖`` — convergence diagnostic."""
        num = 0.0
        den = 0.0
        for name, param in self.targets:
            num += float(np.linalg.norm(param.data - self.Z[name]))
            den += float(np.linalg.norm(param.data))
        return num / max(den, 1e-12)

    def hard_prune_masks(self) -> dict[str, np.ndarray]:
        """Final top-k masks per layer (keep |w| largest at current W)."""
        masks: dict[str, np.ndarray] = {}
        for name, param in self.targets:
            flat = np.abs(param.data.reshape(-1))
            k = max(1, int(round(self.density * flat.size)))
            keep = np.argpartition(-flat, k - 1)[:k]
            mask = np.zeros(flat.size, dtype=bool)
            mask[keep] = True
            masks[name] = mask.reshape(param.shape)
        return masks
