"""Global density budgets: the single source of truth for layer allocations.

A :class:`DensityBudget` holds, per sparsifiable layer, an integer
*allocation* of active weights out of an integer *capacity*, quantized to
the layer's drop/grow *unit* (``B*B`` elements for a block-structured
layer, 1 otherwise).  Every density number downstream — per-layer
``target_density``, the global density, the engine's rebalancing deltas —
is derived from these integers, so budget arithmetic is exact: transfers
and rescales conserve the global non-zero count to the element.

This module is also the **only** place allowed to write
``SparseParam.target_density`` (reprolint rule RPL007 enforces it
statically, and the attribute is a read-only property everywhere else).
Controllers that need a density written — the engine's rebalancing phase,
:meth:`MaskedModel.set_masks`'s refresh, checkpoint restore — go through
:meth:`DensityBudget.bind`, :meth:`DensityBudget.refresh_from_masks` or
:func:`assign_target_density`.

Budgets are mutable and cheap; the masked model owns one
(``masked.budget``) built from its initial masks, and controllers may hold
separate budgets (e.g. GMP's *final* budget while the masks are still
dense).  Mutating a budget never touches masks — the drop-and-grow engine
*realizes* the budget at its next mask update (see
``DynamicSparseEngine.mask_update``).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

__all__ = ["DensityBudget", "assign_target_density"]


def assign_target_density(target, value: float) -> None:
    """Write a layer's ``target_density`` (the sanctioned RPL007 path)."""
    target._target_density = float(value)


class DensityBudget:
    """Integer per-layer allocations of a global non-zero budget.

    Parameters
    ----------
    layers:
        Iterable of ``(name, capacity, unit, allocation)`` tuples.
        ``capacity`` is the layer's element count, ``unit`` the drop/grow
        granularity in elements (``B*B`` for block layers), ``allocation``
        the number of active elements — a multiple of ``unit`` within
        ``[0, capacity]``.
    """

    def __init__(self, layers: Iterable[tuple[str, int, int, int]]):
        self._names: list[str] = []
        self._capacity: dict[str, int] = {}
        self._unit: dict[str, int] = {}
        self._alloc: dict[str, int] = {}
        for name, capacity, unit, allocation in layers:
            name = str(name)
            capacity, unit, allocation = int(capacity), int(unit), int(allocation)
            if name in self._capacity:
                raise ValueError(f"duplicate budget layer {name!r}")
            if capacity < 1:
                raise ValueError(f"{name!r}: capacity must be >= 1, got {capacity}")
            if unit < 1 or capacity % unit:
                raise ValueError(
                    f"{name!r}: unit {unit} must be >= 1 and divide capacity {capacity}"
                )
            self._names.append(name)
            self._capacity[name] = capacity
            self._unit[name] = unit
            self._alloc[name] = 0
            self.set_allocation(name, allocation)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_targets(cls, targets: Sequence) -> "DensityBudget":
        """Budget mirroring the *current* masks of ``SparseParam`` targets."""
        return cls(
            (
                t.name,
                t.size,
                t.block_size * t.block_size if t.indexer is not None else 1,
                t.active_count,
            )
            for t in targets
        )

    @classmethod
    def from_masked(cls, masked) -> "DensityBudget":
        """Budget mirroring a :class:`MaskedModel`'s current masks."""
        return cls.from_targets(masked.targets)

    @classmethod
    def from_global(cls, targets: Sequence, density: float) -> "DensityBudget":
        """Budget for a *global* density, spread uniformly by capacity.

        Used by dense-to-sparse controllers (GMP/STR), whose pruning is
        global magnitude rather than per-layer: only :attr:`total` is
        consumed, so the per-layer split is nominal (largest-remainder
        proportional to capacity, quantized to each layer's unit, at least
        one unit per layer so no layer is nominally severed).
        """
        if not 0.0 < density <= 1.0:
            raise ValueError(f"global density must be in (0, 1], got {density}")
        budget = cls.from_targets(targets)
        budget.rescale(int(round(density * budget.capacity)))
        return budget

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._names)

    @property
    def total(self) -> int:
        """Global budget: total allocated non-zero elements."""
        return sum(self._alloc.values())

    @property
    def capacity(self) -> int:
        """Total element capacity across all layers."""
        return sum(self._capacity.values())

    def allocation(self, name: str) -> int:
        return self._alloc[name]

    def capacity_of(self, name: str) -> int:
        return self._capacity[name]

    def unit(self, name: str) -> int:
        return self._unit[name]

    def density(self, name: str) -> float:
        return self._alloc[name] / self._capacity[name]

    def global_density(self) -> float:
        return self.total / self.capacity

    def allocations(self) -> dict[str, int]:
        """Per-layer allocations keyed by layer name (insertion order)."""
        return {name: self._alloc[name] for name in self._names}

    def copy(self) -> "DensityBudget":
        return DensityBudget(
            (name, self._capacity[name], self._unit[name], self._alloc[name])
            for name in self._names
        )

    def __contains__(self, name: str) -> bool:
        return name in self._capacity

    def __repr__(self) -> str:
        return (
            f"DensityBudget(total={self.total}, capacity={self.capacity}, "
            f"layers={len(self._names)})"
        )

    # ------------------------------------------------------------------
    # mutation (all element counts stay unit-quantized and in range)
    # ------------------------------------------------------------------
    def set_allocation(self, name: str, allocation: int) -> None:
        """Set one layer's allocation; loud ``ValueError`` on any violation."""
        if name not in self._capacity:
            raise KeyError(f"unknown budget layer {name!r}")
        allocation = int(allocation)
        capacity, unit = self._capacity[name], self._unit[name]
        if not 0 <= allocation <= capacity:
            raise ValueError(
                f"{name!r}: allocation {allocation} outside [0, {capacity}]"
            )
        if allocation % unit:
            raise ValueError(
                f"{name!r}: allocation {allocation} is not a multiple of the "
                f"layer's {unit}-element unit"
            )
        self._alloc[name] = allocation

    def transfer(self, src: str, dst: str, n_elements: int) -> int:
        """Move up to ``n_elements`` from ``src`` to ``dst``; returns the move.

        The amount is quantized down to the least common multiple of both
        layers' units (so each side stays unit-aligned), and clamped so the
        source keeps at least one unit and the destination stays within
        capacity.  The global total is conserved exactly.
        """
        if n_elements < 0:
            return -self.transfer(dst, src, -n_elements)
        quantum = math.lcm(self._unit[src], self._unit[dst])
        available = self._alloc[src] - self._unit[src]  # keep >= 1 unit
        headroom = self._capacity[dst] - self._alloc[dst]
        moved = min(int(n_elements), max(available, 0), headroom)
        moved = (moved // quantum) * quantum
        if moved > 0:
            self.set_allocation(src, self._alloc[src] - moved)
            self.set_allocation(dst, self._alloc[dst] + moved)
        return moved

    def rescale(self, new_total: int) -> int:
        """Re-spread allocations proportionally to hit ``new_total`` exactly.

        Largest-remainder apportionment in unit space, keeping every layer
        at >= 1 unit and <= capacity.  Raises ``ValueError`` when
        ``new_total`` is unreachable (below one unit per layer, above
        capacity, or not representable by the layers' units).  Returns the
        achieved total (== ``new_total``).
        """
        new_total = int(new_total)
        floor_total = sum(self._unit[n] for n in self._names)
        if not floor_total <= new_total <= self.capacity:
            raise ValueError(
                f"new_total {new_total} outside feasible [{floor_total}, "
                f"{self.capacity}]"
            )
        old_total = max(self.total, 1)
        raw = {n: self._alloc[n] / old_total * new_total for n in self._names}
        alloc = {}
        for n in self._names:
            unit, cap = self._unit[n], self._capacity[n]
            quantized = (int(raw[n]) // unit) * unit
            alloc[n] = min(max(quantized, unit), cap)
        remainder = new_total - sum(alloc.values())
        # Distribute (or claw back) the remainder one unit at a time,
        # preferring the largest fractional residue (classic apportionment).
        for _ in range(self.capacity):
            if remainder == 0:
                break
            best, best_score = None, None
            for n in self._names:
                unit = self._unit[n]
                if remainder > 0:
                    feasible = unit <= remainder and alloc[n] + unit <= self._capacity[n]
                else:
                    feasible = unit <= -remainder and alloc[n] - unit >= unit
                if not feasible:
                    continue
                score = raw[n] - alloc[n] if remainder > 0 else alloc[n] - raw[n]
                if best_score is None or score > best_score:
                    best, best_score = n, score
            if best is None:
                raise ValueError(
                    f"cannot reach total {new_total} with the layers' unit sizes"
                )
            step = self._unit[best] if remainder > 0 else -self._unit[best]
            alloc[best] += step
            remainder -= step
        for n in self._names:
            self.set_allocation(n, alloc[n])
        return self.total

    # ------------------------------------------------------------------
    # coupling to a MaskedModel
    # ------------------------------------------------------------------
    def bind(self, masked) -> None:
        """Write every layer's ``target_density`` from its allocation."""
        for target in masked.targets:
            if target.name not in self._capacity:
                raise KeyError(f"masked layer {target.name!r} not in budget")
            assign_target_density(target, self.density(target.name))

    def refresh_from_masks(self, masked, names: Iterable[str] | None = None) -> None:
        """Adopt the masks' actual active counts as the allocations.

        The post-hoc direction (mask -> budget), used when masks are
        replaced wholesale (static pruners, ``set_masks``).  Also refreshes
        the affected layers' ``target_density``.
        """
        wanted = None if names is None else set(names)
        for target in masked.targets:
            if wanted is not None and target.name not in wanted:
                continue
            self.set_allocation(target.name, target.active_count)
            assign_target_density(target, self.density(target.name))

    def deltas(self, masked) -> dict[str, int]:
        """Per-layer ``allocation - active`` element counts (what the engine
        must realize: positive = grow, negative = shrink)."""
        return {
            t.name: self._alloc[t.name] - t.active_count
            for t in masked.targets
            if t.name in self._capacity
        }

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "names": list(self._names),
            "capacity": [self._capacity[n] for n in self._names],
            "unit": [self._unit[n] for n in self._names],
            "allocation": [self._alloc[n] for n in self._names],
        }

    def load_state_dict(self, state: Mapping) -> None:
        names = [str(n) for n in state["names"]]
        if names != self._names:
            raise ValueError(
                f"budget layers {names} do not match this budget's {self._names}"
            )
        for n, capacity, unit in zip(names, state["capacity"], state["unit"]):
            if int(capacity) != self._capacity[n] or int(unit) != self._unit[n]:
                raise ValueError(f"budget geometry mismatch for layer {n!r}")
        for n, allocation in zip(names, state["allocation"]):
            self.set_allocation(n, int(allocation))
