"""Mask bookkeeping: which parameters are sparsified, and their masks.

:class:`MaskedModel` walks a model, selects the sparsifiable weights
(Linear/Conv2d ``weight`` tensors by default — biases and norm parameters
stay dense, as in RigL/ITOP/the paper), assigns each a boolean mask drawn
from a layer-wise density distribution, and enforces the masks on the weight
values.  All sparsifiers (dynamic, static, dense-to-sparse, ADMM) operate
through this class, so the sparsity invariants live in exactly one place.

Masks are *versioned*: every replacement bumps ``mask_version`` and drops
the cached flat active/inactive index sets, so CSR kernel structures (see
:mod:`repro.sparse.kernels`) rebuild only for layers whose masks actually
changed, and index lookups between mask edits are O(1).  Code that mutates
a mask in place (the drop-and-grow engine, GMP) must report the edit via
:meth:`SparseParam.mark_mask_dirty`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import nn
from repro.nn.module import Module, Parameter
from repro.sparse.distribution import layer_densities

__all__ = ["SparseParam", "MaskedModel", "collect_sparsifiable"]


class SparseParam:
    """One sparsified weight tensor and its mask/bookkeeping state."""

    __slots__ = (
        "name",
        "param",
        "target_density",
        "_mask",
        "_mask_version",
        "_active_idx",
        "_inactive_idx",
    )

    def __init__(
        self, name: str, param: Parameter, mask: np.ndarray, target_density: float
    ):
        self.name = name
        self.param = param
        self.target_density = float(target_density)
        self._mask = np.ascontiguousarray(mask, dtype=bool)
        self._mask_version = 0
        self._active_idx: np.ndarray | None = None
        self._inactive_idx: np.ndarray | None = None

    def __repr__(self) -> str:
        return (
            f"SparseParam(name={self.name!r}, shape={self.param.shape}, "
            f"density={self.density:.4f})"
        )

    # ------------------------------------------------------------------
    # mask access & versioning
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        return self._mask

    @mask.setter
    def mask(self, value: np.ndarray) -> None:
        self._mask = np.ascontiguousarray(value, dtype=bool)
        self.mark_mask_dirty()

    @property
    def mask_version(self) -> int:
        """Monotonic counter; changes iff the mask may have changed."""
        return self._mask_version

    def mark_mask_dirty(self) -> None:
        """Invalidate cached index sets after an in-place mask edit."""
        self._mask_version += 1
        self._active_idx = None
        self._inactive_idx = None

    @property
    def active_indices(self) -> np.ndarray:
        """Sorted flat indices of active weights (cached between edits)."""
        if self._active_idx is None:
            self._active_idx = np.flatnonzero(self._mask)
        return self._active_idx

    @property
    def inactive_indices(self) -> np.ndarray:
        """Sorted flat indices of inactive weights (cached between edits)."""
        if self._inactive_idx is None:
            self._inactive_idx = np.flatnonzero(~self._mask)
        return self._inactive_idx

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.param.size

    @property
    def active_count(self) -> int:
        return int(self.active_indices.size)

    @property
    def density(self) -> float:
        return self.active_count / self.size

    # ------------------------------------------------------------------
    # invariant enforcement (in place: the hot path allocates nothing)
    # ------------------------------------------------------------------
    def apply(self) -> None:
        """Zero the weight values outside the mask."""
        np.multiply(self.param.data, self._mask, out=self.param.data)

    def mask_gradient(self) -> None:
        """Zero the gradient outside the mask (keeps momentum clean)."""
        grad = self.param.grad
        if grad is not None:
            np.multiply(grad, self._mask, out=grad)


def _name_matches_component(name: str, spec: str) -> bool:
    """Whether ``spec`` matches ``name`` on module-path component boundaries.

    ``spec`` matches iff its dot-separated components appear as a contiguous
    run of ``name``'s components: ``"fc1"`` matches ``"fc1.weight"`` but not
    ``"fc10.weight"``; ``"features.0"`` matches ``"features.0.weight"`` but
    not ``"features.01.weight"``.
    """
    spec_parts = spec.split(".") if spec else []
    if not spec_parts:
        return False
    name_parts = name.split(".")
    span = len(spec_parts)
    return any(
        name_parts[start:start + span] == spec_parts
        for start in range(len(name_parts) - span + 1)
    )


def collect_sparsifiable(
    model: Module,
    include_modules: Sequence[Module] | None = None,
) -> list[tuple[str, Parameter]]:
    """Return ``(name, weight)`` pairs of sparsifiable parameters.

    By default: the ``weight`` of every :class:`~repro.nn.Linear` and
    :class:`~repro.nn.Conv2d` in the model.  Pass ``include_modules`` to
    restrict to specific layers (e.g. the GNN experiments sparsify only the
    two predictor FC layers).
    """
    allowed = None if include_modules is None else {id(m) for m in include_modules}
    pairs: list[tuple[str, Parameter]] = []
    for name, module in model.named_modules():
        if not isinstance(module, (nn.Linear, nn.Conv2d)):
            continue
        if allowed is not None and id(module) not in allowed:
            continue
        pairs.append((f"{name}.weight" if name else "weight", module.weight))
    if not pairs:
        raise ValueError("no sparsifiable parameters found in model")
    return pairs


class MaskedModel:
    """A model plus per-layer masks at a global sparsity level.

    Parameters
    ----------
    model:
        The network to sparsify.
    sparsity:
        Global fraction of *zero* weights among sparsifiable parameters
        (e.g. 0.9 for the paper's 90% setting).
    distribution:
        ``"erk"`` (paper default), ``"er"``, or ``"uniform"``.
    rng:
        Generator for the random initial masks.
    include_modules:
        Optional restriction of which layers get sparsified.
    dense_layer_names:
        Names of layers to keep dense, e.g. the first conv — their mask is
        all-ones and they are excluded from the global budget.  Matching is
        on module-path component boundaries (``"fc1"`` matches
        ``"fc1.weight"``, never ``"fc10.weight"``).
    masks:
        Optional precomputed masks keyed by parameter name (static pruners
        compute them on the dense model *before* constructing this class).
        When given, the random initialization is skipped entirely.
    """

    def __init__(
        self,
        model: Module,
        sparsity: float,
        distribution: str = "erk",
        rng: np.random.Generator | None = None,
        include_modules: Sequence[Module] | None = None,
        dense_layer_names: Iterable[str] = (),
        masks: dict[str, np.ndarray] | None = None,
    ):
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        self.model = model
        self.sparsity = float(sparsity)
        self.distribution = distribution
        self._rng = rng if rng is not None else np.random.default_rng()
        self._bound_optimizer = None

        pairs = collect_sparsifiable(model, include_modules)
        dense_names = tuple(dense_layer_names)
        sparse_pairs = [
            (name, p) for name, p in pairs
            if not any(_name_matches_component(name, d) for d in dense_names)
        ]
        density = 1.0 - self.sparsity
        densities = layer_densities([p.shape for _, p in sparse_pairs], density, distribution)
        self.targets: list[SparseParam] = []
        for (name, param), layer_density in zip(sparse_pairs, densities):
            if masks is not None:
                if name not in masks:
                    raise KeyError(f"precomputed masks missing layer {name!r}")
                mask = masks[name].astype(bool)
                if mask.shape != param.shape:
                    raise ValueError(
                        f"mask shape mismatch for {name!r}: {mask.shape} vs {param.shape}"
                    )
                layer_density = float(mask.mean())
            else:
                mask = self._random_mask(param.shape, layer_density)
            self.targets.append(
                SparseParam(name=name, param=param, mask=mask, target_density=layer_density)
            )
        self.apply_masks()

    # ------------------------------------------------------------------
    def _random_mask(self, shape: tuple[int, ...], density: float) -> np.ndarray:
        size = int(np.prod(shape))
        n_active = int(round(density * size))
        n_active = max(1, min(size, n_active)) if density > 0 else 0
        mask = np.zeros(size, dtype=bool)
        if n_active:
            idx = self._rng.choice(size, size=n_active, replace=False)
            mask[idx] = True
        return mask.reshape(shape)

    # ------------------------------------------------------------------
    # invariant enforcement
    # ------------------------------------------------------------------
    def apply_masks(self) -> None:
        """Zero every weight outside its mask."""
        for target in self.targets:
            target.apply()

    def mask_gradients(self) -> None:
        """Zero gradients outside the masks (call after ``backward``)."""
        for target in self.targets:
            target.mask_gradient()

    # ------------------------------------------------------------------
    # sparse-aware optimizer coupling
    # ------------------------------------------------------------------
    def bind_optimizer(self, optimizer) -> None:
        """Restrict ``optimizer`` updates of masked weights to active coordinates.

        After binding, the optimizer's step touches only ``active_indices``
        of each masked weight, so inactive weights stay exactly zero between
        mask updates and the per-step ``apply_masks`` pass becomes
        unnecessary (controllers consult :attr:`per_step_apply_needed`).
        The semantics are unchanged: gradients at inactive coordinates are
        zero (masked) and the engine resets optimizer state at regrown
        coordinates, so skipped inactive-state decay is never observable.
        """
        optimizer.bind_sparse_indices(
            {id(t.param): (lambda t=t: t.active_indices) for t in self.targets}
        )
        self._bound_optimizer = optimizer

    @property
    def per_step_apply_needed(self) -> bool:
        """Whether controllers must re-apply masks after every optimizer step."""
        return self._bound_optimizer is None

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def total_size(self) -> int:
        return sum(t.size for t in self.targets)

    @property
    def total_active(self) -> int:
        return sum(t.active_count for t in self.targets)

    def global_density(self) -> float:
        """Fraction of sparsifiable weights currently active."""
        return self.total_active / self.total_size

    def global_sparsity(self) -> float:
        """Fraction of sparsifiable weights currently zeroed."""
        return 1.0 - self.global_density()

    def layer_summary(self) -> list[dict]:
        """Per-layer stats: name, shape, density, active count."""
        return [
            {
                "name": t.name,
                "shape": t.param.shape,
                "density": t.density,
                "active": t.active_count,
                "size": t.size,
            }
            for t in self.targets
        ]

    def masks_snapshot(self) -> dict[str, np.ndarray]:
        """Copy of all masks keyed by parameter name."""
        return {t.name: t.mask.copy() for t in self.targets}

    def set_masks(self, masks: dict[str, np.ndarray]) -> None:
        """Replace masks (e.g. from a static pruner) and re-apply them.

        ``target_density`` is refreshed from the new mask so downstream
        drop-count math never works from a stale density.
        """
        by_name = {t.name: t for t in self.targets}
        for name, mask in masks.items():
            if name not in by_name:
                raise KeyError(f"unknown masked parameter {name!r}")
            target = by_name[name]
            if mask.shape != target.mask.shape:
                raise ValueError(
                    f"mask shape mismatch for {name!r}: {mask.shape} vs {target.mask.shape}"
                )
            target.mask = mask.astype(bool)
            target.target_density = float(target.mask.mean())
        self.apply_masks()
