"""Mask bookkeeping: which parameters are sparsified, and their masks.

:class:`MaskedModel` walks a model, selects the sparsifiable weights
(Linear/Conv2d/Embedding ``weight`` tensors by default — biases and norm
parameters stay dense, as in RigL/ITOP/the paper), assigns each a boolean
mask drawn
from a layer-wise density distribution, and enforces the masks on the weight
values.  All sparsifiers (dynamic, static, dense-to-sparse, ADMM) operate
through this class, so the sparsity invariants live in exactly one place.

Masks are *versioned*: every replacement bumps ``mask_version`` and drops
the cached flat active/inactive index sets, so CSR kernel structures (see
:mod:`repro.sparse.kernels`) rebuild only for layers whose masks actually
changed, and index lookups between mask edits are O(1).  Code that mutates
a mask in place (the drop-and-grow engine, GMP) must report the edit via
:meth:`SparseParam.mark_mask_dirty`.

With ``block_size > 1`` a layer's mask is constrained to ``B×B`` tiles of
its 2-D weight view (:mod:`repro.sparse.blocks`); the dense boolean mask
stays the canonical representation (checkpoints, coverage counters and
worker resyncs are unchanged), while drop-and-grow edits go through
:meth:`SparseParam.drop_blocks` / :meth:`SparseParam.grow_blocks`, which
maintain the sorted active-block set in ``O(nnz_blocks)``.  Layers whose
2-D view is not divisible by the block size (e.g. the first conv with 3
input channels) fall back to ``block_size=1``, i.e. unstructured.
"""

from __future__ import annotations

import os
import warnings
from typing import Iterable, Sequence

import numpy as np

from repro import nn
from repro.nn.module import Module, Parameter
from repro.sparse.blocks import BlockMask, MatrixBlockIndexer
from repro.sparse.budget import DensityBudget
from repro.sparse.distribution import block_budget, layer_densities
from repro.rng import resolve_rng

__all__ = [
    "BLOCK_SIZE_ENV",
    "resolve_block_size",
    "SparseParam",
    "MaskedModel",
    "collect_sparsifiable",
]

BLOCK_SIZE_ENV = "REPRO_SPARSE_BLOCK_SIZE"


def resolve_block_size(block_size: int | None = None) -> int:
    """Explicit argument > ``REPRO_SPARSE_BLOCK_SIZE`` env var > 1."""
    if block_size is None:
        block_size = int(os.environ.get(BLOCK_SIZE_ENV, "1"))
    block_size = int(block_size)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    return block_size


class SparseParam:
    """One sparsified weight tensor and its mask/bookkeeping state."""

    __slots__ = (
        "name",
        "param",
        "_target_density",
        "block_size",
        "indexer",
        "_mask",
        "_mask_version",
        "_active_idx",
        "_inactive_idx",
        "_active_blocks",
        "dense_grads_required",
    )

    def __init__(
        self,
        name: str,
        param: Parameter,
        mask: np.ndarray,
        target_density: float,
        block_size: int = 1,
    ):
        self.name = name
        self.param = param
        self._target_density = float(target_density)
        self.block_size = int(block_size)
        rows, cols = self.shape2d
        self.indexer = (
            MatrixBlockIndexer(rows, cols, self.block_size)
            if self.block_size > 1
            else None
        )
        self._mask = np.ascontiguousarray(mask, dtype=bool)
        self._mask_version = 0
        self._active_idx: np.ndarray | None = None
        self._inactive_idx: np.ndarray | None = None
        self._active_blocks: np.ndarray | None = None
        # Kernel backward contract: True (default, always safe) computes the
        # full dense weight gradient; a controller whose growth rule only
        # consults dense gradients at mask-update steps may clear it for
        # the in-between steps (see DynamicSparseEngine.before_backward),
        # letting block kernels compute active-tile gradients only.
        self.dense_grads_required = True
        if self.indexer is not None:
            # Fail at construction, not first use, if the mask isn't tiled.
            self.active_blocks  # noqa: B018 - validates block structure

    def __repr__(self) -> str:
        return (
            f"SparseParam(name={self.name!r}, shape={self.param.shape}, "
            f"density={self.density:.4f}, block_size={self.block_size})"
        )

    @property
    def target_density(self) -> float:
        """Budget-derived density this layer trains at.

        Read-only by design: the layer density is owned by the
        :class:`~repro.sparse.budget.DensityBudget` (``masked.budget``) and
        only :mod:`repro.sparse.budget` may write it (reprolint RPL007).
        """
        return self._target_density

    @property
    def shape2d(self) -> tuple[int, int]:
        """The 2-D matrix view the kernels (and block tiling) operate on."""
        shape = self.param.shape
        return int(shape[0]), int(self.param.size // shape[0])

    # ------------------------------------------------------------------
    # mask access & versioning
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        return self._mask

    @mask.setter
    def mask(self, value: np.ndarray) -> None:
        self._mask = np.ascontiguousarray(value, dtype=bool)
        self.mark_mask_dirty()

    @property
    def mask_version(self) -> int:
        """Monotonic counter; changes iff the mask may have changed."""
        return self._mask_version

    def mark_mask_dirty(self) -> None:
        """Invalidate cached index sets after an in-place mask edit."""
        self._mask_version += 1
        self._active_idx = None
        self._inactive_idx = None
        self._active_blocks = None

    @property
    def active_indices(self) -> np.ndarray:
        """Sorted flat indices of active weights (cached between edits)."""
        if self._active_idx is None:
            self._active_idx = np.flatnonzero(self._mask)
        return self._active_idx

    @property
    def inactive_indices(self) -> np.ndarray:
        """Sorted flat indices of inactive weights (cached between edits)."""
        if self._inactive_idx is None:
            self._inactive_idx = np.flatnonzero(~self._mask)
        return self._inactive_idx

    # ------------------------------------------------------------------
    # block granularity (block_size > 1 only)
    # ------------------------------------------------------------------
    @property
    def active_blocks(self) -> np.ndarray:
        """Sorted flat ids of active tiles (cached between edits).

        Derived from the canonical dense mask, validating along the way
        that every tile is all-active or all-inactive — a partially active
        tile means element-granular code edited a block-structured mask.
        """
        if self.indexer is None:
            raise ValueError(f"{self.name!r} is unstructured (block_size=1)")
        if self._active_blocks is None:
            rows, cols = self.shape2d
            block = BlockMask.from_dense(self.indexer, self._mask.reshape(rows, cols))
            self._active_blocks = block.active_blocks
        return self._active_blocks

    @property
    def inactive_blocks(self) -> np.ndarray:
        """Sorted flat ids of inactive tiles (recomputed per mask edit)."""
        scratch = np.ones(self.indexer.n_blocks, dtype=bool)
        scratch[self.active_blocks] = False
        return np.flatnonzero(scratch)

    @property
    def active_block_count(self) -> int:
        return int(self.active_blocks.size)

    def drop_blocks(self, block_idx: np.ndarray) -> np.ndarray:
        """Deactivate whole tiles; returns their flat element indices.

        ``block_idx`` must be currently active.  Hash-based ``setdiff1d``
        dominated mask-update profiles, so the sorted active set is edited
        with a ``searchsorted`` membership mask instead (``O(nnz_blocks)``).
        """
        element_idx = self.indexer.expand_blocks(block_idx).reshape(-1)
        active = self.active_blocks
        keep = np.ones(active.size, dtype=bool)
        keep[np.searchsorted(active, np.asarray(block_idx, dtype=np.int64))] = False
        new_active = active[keep]
        self._mask.reshape(-1)[element_idx] = False
        self.mark_mask_dirty()
        self._active_blocks = new_active
        return element_idx

    def grow_blocks(self, block_idx: np.ndarray) -> np.ndarray:
        """Activate whole tiles; returns their flat element indices.

        ``block_idx`` must be currently inactive, so the union is a plain
        sorted merge — no hash-based ``union1d``.
        """
        element_idx = self.indexer.expand_blocks(block_idx).reshape(-1)
        merged = np.concatenate(
            (self.active_blocks, np.asarray(block_idx, dtype=np.int64).reshape(-1))
        )
        merged.sort()
        self._mask.reshape(-1)[element_idx] = True
        self.mark_mask_dirty()
        self._active_blocks = merged
        return element_idx

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.param.size

    @property
    def active_count(self) -> int:
        return int(self.active_indices.size)

    @property
    def density(self) -> float:
        return self.active_count / self.size

    # ------------------------------------------------------------------
    # invariant enforcement (in place: the hot path allocates nothing)
    # ------------------------------------------------------------------
    def apply(self) -> None:
        """Zero the weight values outside the mask."""
        np.multiply(self.param.data, self._mask, out=self.param.data)

    def mask_gradient(self) -> None:
        """Zero the gradient outside the mask (keeps momentum clean)."""
        grad = self.param.grad
        if grad is not None:
            np.multiply(grad, self._mask, out=grad)


def _touched_rows_provider(target: SparseParam):
    """Active indices restricted to rows whose current gradient is non-zero.

    Embedding gradients are sparse by construction (``np.add.at`` scatter
    from :func:`repro.autograd.ops.getitem`): a batch touches only the
    rows its ids index.  Dense-Adam semantics would still decay the
    moments of every *active* coordinate — including rows the batch never
    saw — and then move their weights from stale momentum.  Restricting
    the bound index set to touched rows gives the lazy semantics of
    ``torch.optim.SparseAdam``: untouched rows receive neither moment
    decay nor weight updates.  The restriction is a pure function of the
    parameter's gradient at step time, so serial and worker-pool training
    (where gradients arrive pre-reduced from the pool) stay bitwise
    identical.
    """

    def provider() -> np.ndarray:
        idx = target.active_indices
        grad = target.param.grad
        if grad is None:
            return idx
        rows, cols = target.shape2d
        touched = np.any(grad.reshape(rows, cols) != 0.0, axis=1)
        if touched.all():
            return idx
        return idx[touched[idx // cols]]

    return provider


def _name_matches_component(name: str, spec: str) -> bool:
    """Whether ``spec`` matches ``name`` on module-path component boundaries.

    ``spec`` matches iff its dot-separated components appear as a contiguous
    run of ``name``'s components: ``"fc1"`` matches ``"fc1.weight"`` but not
    ``"fc10.weight"``; ``"features.0"`` matches ``"features.0.weight"`` but
    not ``"features.01.weight"``.
    """
    spec_parts = spec.split(".") if spec else []
    if not spec_parts:
        return False
    name_parts = name.split(".")
    span = len(spec_parts)
    return any(
        name_parts[start:start + span] == spec_parts
        for start in range(len(name_parts) - span + 1)
    )


def collect_sparsifiable(
    model: Module,
    include_modules: Sequence[Module] | None = None,
) -> list[tuple[str, Parameter]]:
    """Return ``(name, weight)`` pairs of sparsifiable parameters.

    By default: the ``weight`` of every :class:`~repro.nn.Linear`,
    :class:`~repro.nn.Conv2d`, and :class:`~repro.nn.Embedding` in the
    model (the LM workload sparsifies its embedding tables alongside the
    attention/MLP matmuls).  Pass ``include_modules`` to restrict to
    specific layers (e.g. the GNN experiments sparsify only the two
    predictor FC layers).
    """
    allowed = None if include_modules is None else {id(m) for m in include_modules}
    pairs: list[tuple[str, Parameter]] = []
    for name, module in model.named_modules():
        if not isinstance(module, (nn.Linear, nn.Conv2d, nn.Embedding)):
            continue
        if allowed is not None and id(module) not in allowed:
            continue
        pairs.append((f"{name}.weight" if name else "weight", module.weight))
    if not pairs:
        raise ValueError("no sparsifiable parameters found in model")
    return pairs


class MaskedModel:
    """A model plus per-layer masks at a global sparsity level.

    Parameters
    ----------
    model:
        The network to sparsify.
    sparsity:
        Global fraction of *zero* weights among sparsifiable parameters
        (e.g. 0.9 for the paper's 90% setting).
    distribution:
        ``"erk"`` (paper default), ``"er"``, or ``"uniform"``.
    rng:
        Generator for the random initial masks.
    include_modules:
        Optional restriction of which layers get sparsified.
    dense_layer_names:
        Names of layers to keep dense, e.g. the first conv — their mask is
        all-ones and they are excluded from the global budget.  Matching is
        on module-path component boundaries (``"fc1"`` matches
        ``"fc1.weight"``, never ``"fc10.weight"``).
    masks:
        Optional precomputed masks keyed by parameter name (static pruners
        compute them on the dense model *before* constructing this class).
        When given, the random initialization is skipped entirely.
    block_size:
        Mask granularity: masks are constrained to ``B×B`` tiles of each
        layer's 2-D weight view.  ``None`` reads ``REPRO_SPARSE_BLOCK_SIZE``
        (default 1 = unstructured).  Layers whose 2-D view is not divisible
        by the block size fall back to ``block_size=1`` individually (never
        silently mis-tiled); :attr:`block_fallbacks` lists them.
    block_underflow:
        What to do when a layer's requested density rounds to *zero* blocks
        (so the min-one-block floor would silently inflate it — see
        :func:`~repro.sparse.distribution.validate_block_quantization`).
        ``"error"`` (default) raises the validation ``ValueError``;
        ``"unstructured"`` keeps that layer at ``block_size=1`` so it trains
        at its true density, recorded in :attr:`block_fallbacks` like a
        non-tiling layer.
    """

    def __init__(
        self,
        model: Module,
        sparsity: float,
        distribution: str = "erk",
        rng: np.random.Generator | None = None,
        include_modules: Sequence[Module] | None = None,
        dense_layer_names: Iterable[str] = (),
        masks: dict[str, np.ndarray] | None = None,
        block_size: int | None = None,
        block_underflow: str = "error",
    ):
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        self.model = model
        self.sparsity = float(sparsity)
        self.distribution = distribution
        self.block_size = resolve_block_size(block_size)
        self.block_fallbacks: list[str] = []
        self._rng = resolve_rng(rng)
        self._bound_optimizer = None

        pairs = collect_sparsifiable(model, include_modules)
        dense_names = tuple(dense_layer_names)
        sparse_pairs = [
            (name, p) for name, p in pairs
            if not any(_name_matches_component(name, d) for d in dense_names)
        ]
        if block_underflow not in ("error", "unstructured"):
            raise ValueError(
                f"block_underflow must be 'error' or 'unstructured', got {block_underflow!r}"
            )
        density = 1.0 - self.sparsity
        # Per-layer granularity is resolved before the distribution so the
        # densities can be validated against block quantization (a density
        # that rounds to zero blocks on a tiny layer raises loudly instead
        # of being silently floored to one block).
        layer_blocks = [self._layer_block_size(name, p) for name, p in sparse_pairs]
        block_counts = [
            self._block_count(param, block) if block > 1 else None
            for (_, param), block in zip(sparse_pairs, layer_blocks)
        ]
        if block_underflow == "unstructured" and masks is None:
            raw = layer_densities([p.shape for _, p in sparse_pairs], density, distribution)
            for i, ((name, _), n_blocks) in enumerate(zip(sparse_pairs, block_counts)):
                if n_blocks and n_blocks > 1 and int(round(raw[i] * n_blocks)) == 0:
                    layer_blocks[i] = 1
                    block_counts[i] = None
                    self.block_fallbacks.append(name)
        densities = layer_densities(
            [p.shape for _, p in sparse_pairs],
            density,
            distribution,
            block_counts=block_counts if masks is None else None,
        )
        self.targets: list[SparseParam] = []
        for (name, param), layer_density, layer_block in zip(
            sparse_pairs, densities, layer_blocks
        ):
            if masks is not None:
                if name not in masks:
                    raise KeyError(f"precomputed masks missing layer {name!r}")
                mask = masks[name].astype(bool)
                if mask.shape != param.shape:
                    raise ValueError(
                        f"mask shape mismatch for {name!r}: {mask.shape} vs {param.shape}"
                    )
                layer_density = float(mask.mean())
            elif layer_block > 1:
                mask, layer_density = self._random_block_mask(
                    param.shape, layer_density, layer_block
                )
            else:
                mask = self._random_mask(param.shape, layer_density)
            self.targets.append(
                SparseParam(
                    name=name,
                    param=param,
                    mask=mask,
                    target_density=layer_density,
                    block_size=layer_block,
                )
            )
        # Integer source of truth for every density downstream: per-layer
        # allocations mirror the freshly built masks exactly.
        self.budget = DensityBudget.from_targets(self.targets)
        self.apply_masks()

    # ------------------------------------------------------------------
    @staticmethod
    def _block_count(param: Parameter, block_size: int) -> int:
        rows = int(param.shape[0])
        cols = int(param.size // rows)
        return (rows // block_size) * (cols // block_size)

    # ------------------------------------------------------------------
    def _layer_block_size(self, name: str, param: Parameter) -> int:
        """Per-layer granularity: the requested block size, or 1 when the
        2-D weight view does not tile (recorded in :attr:`block_fallbacks`)."""
        if self.block_size <= 1:
            return 1
        rows = int(param.shape[0])
        cols = int(param.size // rows)
        if rows % self.block_size or cols % self.block_size:
            self.block_fallbacks.append(name)
            return 1
        return self.block_size

    def _random_mask(self, shape: tuple[int, ...], density: float) -> np.ndarray:
        size = int(np.prod(shape))
        n_active = int(round(density * size))
        n_active = max(1, min(size, n_active)) if density > 0 else 0
        mask = np.zeros(size, dtype=bool)
        if n_active:
            idx = self._rng.choice(size, size=n_active, replace=False)
            mask[idx] = True
        return mask.reshape(shape)

    def _random_block_mask(
        self, shape: tuple[int, ...], density: float, block_size: int
    ) -> tuple[np.ndarray, float]:
        """Random whole-tile mask; returns it with the quantized density."""
        rows = int(shape[0])
        cols = int(np.prod(shape)) // rows
        indexer = MatrixBlockIndexer(rows, cols, block_size)
        n_active, exact_density = block_budget(density, indexer.n_blocks)
        blocks = (
            self._rng.choice(indexer.n_blocks, size=n_active, replace=False)
            if n_active
            else np.empty(0, dtype=np.int64)
        )
        mask = BlockMask(indexer, blocks).to_dense().reshape(shape)
        return mask, exact_density

    # ------------------------------------------------------------------
    # invariant enforcement
    # ------------------------------------------------------------------
    def apply_masks(self) -> None:
        """Zero every weight outside its mask."""
        for target in self.targets:
            target.apply()

    def mask_gradients(self) -> None:
        """Zero gradients outside the masks (call after ``backward``)."""
        for target in self.targets:
            target.mask_gradient()

    # ------------------------------------------------------------------
    # sparse-aware optimizer coupling
    # ------------------------------------------------------------------
    def bind_optimizer(self, optimizer) -> None:
        """Restrict ``optimizer`` updates of masked weights to active coordinates.

        After binding, the optimizer's step touches only ``active_indices``
        of each masked weight, so inactive weights stay exactly zero between
        mask updates and the per-step ``apply_masks`` pass becomes
        unnecessary (controllers consult :attr:`per_step_apply_needed`).
        The semantics are unchanged: gradients at inactive coordinates are
        zero (masked) and the engine resets optimizer state at regrown
        coordinates, so skipped inactive-state decay is never observable.

        :class:`~repro.nn.Embedding` weights additionally restrict the
        index set to *touched* rows (see :func:`_touched_rows_provider`),
        so only rows the batch indexed receive Adam moment updates —
        lazy ``SparseAdam`` semantics rather than whole-table decay.
        """
        embedding_params = {
            id(module.weight)
            for _, module in self.model.named_modules()
            if isinstance(module, nn.Embedding)
        }
        providers = {}
        for t in self.targets:
            if id(t.param) in embedding_params:
                providers[id(t.param)] = _touched_rows_provider(t)
            else:
                providers[id(t.param)] = lambda t=t: t.active_indices
        optimizer.bind_sparse_indices(providers)
        self._bound_optimizer = optimizer

    @property
    def per_step_apply_needed(self) -> bool:
        """Whether controllers must re-apply masks after every optimizer step."""
        return self._bound_optimizer is None

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def global_budget(self) -> int:
        """Total *allocated* non-zero elements (the budget's side of truth).

        Equals :attr:`total_active` except transiently, when a controller
        has mutated :attr:`budget` and the engine has not yet realized the
        change at its next mask update.
        """
        return self.budget.total

    def layer_allocations(self) -> dict[str, int]:
        """Per-layer element allocations (block-quantized where structured)."""
        return self.budget.allocations()

    @property
    def total_size(self) -> int:
        return sum(t.size for t in self.targets)

    @property
    def total_active(self) -> int:
        return sum(t.active_count for t in self.targets)

    def global_density(self) -> float:
        """Fraction of sparsifiable weights currently active."""
        return self.total_active / self.total_size

    def global_sparsity(self) -> float:
        """Fraction of sparsifiable weights currently zeroed."""
        return 1.0 - self.global_density()

    def layer_summary(self) -> list[dict]:
        """Per-layer stats: name, shape, density, active count."""
        return [
            {
                "name": t.name,
                "shape": t.param.shape,
                "density": t.density,
                "active": t.active_count,
                "size": t.size,
            }
            for t in self.targets
        ]

    def masks_snapshot(self) -> dict[str, np.ndarray]:
        """Copy of all masks keyed by parameter name."""
        return {t.name: t.mask.copy() for t in self.targets}

    def set_masks(
        self,
        masks: dict[str, np.ndarray],
        sync_budget: bool | None = None,
    ) -> None:
        """Replace masks (e.g. from a static pruner) and re-apply them.

        ``sync_budget`` controls whether the budget (and with it each
        layer's ``target_density``) is refreshed from the new masks:

        * ``True`` — refresh through :meth:`DensityBudget.refresh_from_masks`
          (the explicit, recommended form);
        * ``False`` — masks are replaced, the budget is left untouched (the
          engine will treat the difference as a rebalancing delta);
        * ``None`` (legacy default) — refreshes like ``True`` but emits a
          :class:`DeprecationWarning`: the silent refresh predates the
          :class:`~repro.sparse.budget.DensityBudget` API and will default
          to ``False`` in a future release.
        """
        if sync_budget is None:
            warnings.warn(
                "MaskedModel.set_masks currently refreshes target_density "
                "implicitly; pass sync_budget=True for this behaviour (or "
                "False to leave the DensityBudget untouched) — the implicit "
                "refresh is deprecated",
                DeprecationWarning,
                stacklevel=2,
            )
            sync_budget = True
        by_name = {t.name: t for t in self.targets}
        for name, mask in masks.items():
            if name not in by_name:
                raise KeyError(f"unknown masked parameter {name!r}")
            target = by_name[name]
            if mask.shape != target.mask.shape:
                raise ValueError(
                    f"mask shape mismatch for {name!r}: {mask.shape} vs {target.mask.shape}"
                )
            target.mask = mask.astype(bool)
        if sync_budget:
            self.budget.refresh_from_masks(self, names=list(masks))
        self.apply_masks()
