"""Coverage counters: the ``N_t`` tensors of Eq. 1 and the ITOP rate ``R``.

Per Algorithm 1 of the paper, each sparsified layer keeps a counter tensor
``N`` initialized to the initial mask; after every mask update the (new)
mask is added to it, so ``N[i]`` counts in how many mask-update rounds
weight ``i`` was active.  The exploration bonus ``c·ln(t)/(N+ε)`` ranks
never-active weights (N=0) above previously-active ones.

The tracker also maintains the "ever active" sets that define the ITOP
exploration rate ``R`` — the fraction of all sparsifiable weights activated
at least once during training (§III.C).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.masked import MaskedModel

__all__ = ["CoverageTracker"]


class CoverageTracker:
    """Occurrence counters + ever-active sets for a :class:`MaskedModel`."""

    def __init__(self, masked: MaskedModel):
        self.masked = masked
        self.counters: dict[str, np.ndarray] = {}
        self.ever_active: dict[str, np.ndarray] = {}
        for target in masked.targets:
            self.counters[target.name] = target.mask.astype(np.float32)
            self.ever_active[target.name] = target.mask.copy()
        self.rounds = 0
        self._total_size = sum(t.size for t in masked.targets)
        self._covered = masked.total_active

    def counter_for(self, name: str) -> np.ndarray:
        """The ``N`` tensor of one layer."""
        return self.counters[name]

    def recount(self) -> None:
        """Refresh the cached ever-active total after replacing the buffers
        directly (checkpoint restore does this)."""
        self._covered = sum(
            int(np.count_nonzero(self.ever_active[t.name]))
            for t in self.masked.targets
        )

    def update(self) -> None:
        """Accumulate the current masks (call once per mask-update round).

        Both accumulations run in place on the preallocated buffers; the
        ever-active total is maintained incrementally so the exploration
        rate is O(1) to read.
        """
        covered = 0
        for target in self.masked.targets:
            np.add(self.counters[target.name], target.mask, out=self.counters[target.name])
            ever = self.ever_active[target.name]
            np.logical_or(ever, target.mask, out=ever)
            covered += int(np.count_nonzero(ever))
        self._covered = covered
        self.rounds += 1

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of counters, ever-active sets and rounds."""
        return {
            "counters": {name: arr.copy() for name, arr in self.counters.items()},
            "ever_active": {name: arr.copy() for name, arr in self.ever_active.items()},
            "rounds": self.rounds,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place (resume-exact)."""
        for name, saved in state["counters"].items():
            if name not in self.counters:
                raise KeyError(f"coverage counter for unknown layer {name!r}")
            np.copyto(self.counters[name], saved.reshape(self.counters[name].shape))
        for name, saved in state["ever_active"].items():
            if name not in self.ever_active:
                raise KeyError(f"ever-active set for unknown layer {name!r}")
            np.copyto(
                self.ever_active[name],
                saved.reshape(self.ever_active[name].shape).astype(bool),
            )
        self.rounds = int(state["rounds"])
        self.recount()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def exploration_rate(self) -> float:
        """ITOP rate ``R``: fraction of sparsifiable weights ever activated."""
        return self._covered / self._total_size

    def layer_exploration_rates(self) -> dict[str, float]:
        """Per-layer ever-active fraction."""
        return {t.name: float(self.ever_active[t.name].mean()) for t in self.masked.targets}

    def never_active_fraction(self) -> float:
        """Fraction of weights never activated (complement of ``R``)."""
        return 1.0 - self.exploration_rate()

    def mean_occupancy(self) -> float:
        """Average of ``N`` over all weights, normalized by rounds seen.

        1.0 would mean every weight was active in every round; with a fixed
        non-zero budget this equals the global density when masks never move.
        """
        if self.rounds == 0:
            return self.masked.global_density()
        acc = sum(float(self.counters[t.name].sum()) for t in self.masked.targets)
        return acc / (self._total_size * (self.rounds + 1))
