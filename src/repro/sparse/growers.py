"""Growth and drop rules for dynamic sparse training.

The drop-and-grow engine (:mod:`repro.sparse.engine`) is parameterized by a
:class:`GrowthRule` (how to score *inactive* weights for activation) and a
:class:`DropRule` (how to score *active* weights for deactivation; lowest
scores are dropped).  The combinations reproduce the methods compared in the
paper's tables:

==============  =======================  ==========================
Method          Drop rule                Growth rule
==============  =======================  ==========================
SET             magnitude                random
RigL            magnitude                |dense gradient|
DST-EE (ours)   magnitude                |grad| + c·ln(t)/(N+ε)
SNFS            magnitude                |gradient momentum (EMA)|
DeepR           sign-flip                random
MEST            magnitude + λ·|grad|     random
DSR             global magnitude         random (proportional realloc)
==============  =======================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.sparse.masked import SparseParam
from repro.sparse.scoring import acquisition_score

__all__ = [
    "LayerContext",
    "GrowthRule",
    "DropRule",
    "RandomGrowth",
    "GradientGrowth",
    "DSTEEGrowth",
    "MomentumGrowth",
    "MagnitudeDrop",
    "MagnitudeGradientDrop",
    "SignFlipDrop",
]


@dataclass
class LayerContext:
    """Everything a rule may need to score one layer at one update step."""

    step: int
    rng: np.random.Generator
    dense_grad: np.ndarray | None = None
    counter: np.ndarray | None = None
    grad_ema: np.ndarray | None = None
    sign_reference: np.ndarray | None = None


class GrowthRule(Protocol):
    """Scores inactive weights; the top-k are activated."""

    needs_dense_grad: bool
    needs_grad_ema: bool
    needs_counter: bool

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray: ...


class DropRule(Protocol):
    """Scores active weights; the bottom-k are deactivated.

    Rules may additionally implement ``scores_at(target, ctx, flat_idx)``
    returning scores only at the given flat indices; the engine uses it so
    drop-ranking cost scales with the active count, not the layer size.
    ``scores_at`` must agree with ``scores(...)[flat_idx]`` exactly.
    """

    needs_dense_grad: bool
    needs_sign_reference: bool

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray: ...


# ----------------------------------------------------------------------
# growth rules
# ----------------------------------------------------------------------


class RandomGrowth:
    """SET/MEST/DeepR: uniform-random scores for inactive weights."""

    needs_dense_grad = False
    needs_grad_ema = False
    needs_counter = False

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray:
        return ctx.rng.random(target.param.shape)


class GradientGrowth:
    """RigL: absolute dense gradient (greedy exploitation only)."""

    needs_dense_grad = True
    needs_grad_ema = False
    needs_counter = False

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray:
        if ctx.dense_grad is None:
            raise RuntimeError("GradientGrowth requires the dense gradient")
        return np.abs(ctx.dense_grad)


class DSTEEGrowth:
    """The paper's acquisition function: exploitation + coverage exploration.

    Parameters
    ----------
    c:
        Trade-off coefficient between gradient exploitation and coverage
        exploration (Fig. 3 sweeps 1e-4 … 5e-3).
    epsilon:
        Positive denominator constant of Eq. 1.
    """

    needs_dense_grad = True
    needs_grad_ema = False
    needs_counter = True

    def __init__(self, c: float = 1e-3, epsilon: float = 1.0):
        if c < 0:
            raise ValueError(f"c must be non-negative, got {c}")
        self.c = float(c)
        self.epsilon = float(epsilon)

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray:
        if ctx.dense_grad is None:
            raise RuntimeError("DSTEEGrowth requires the dense gradient")
        if ctx.counter is None:
            raise RuntimeError("DSTEEGrowth requires the coverage counter")
        return acquisition_score(
            ctx.dense_grad, ctx.counter, max(ctx.step, 2), self.c, self.epsilon
        )


class MomentumGrowth:
    """SNFS: exponentially-smoothed dense-gradient magnitude."""

    needs_dense_grad = False
    needs_grad_ema = True
    needs_counter = False

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray:
        if ctx.grad_ema is None:
            raise RuntimeError("MomentumGrowth requires the gradient EMA")
        return np.abs(ctx.grad_ema)


# ----------------------------------------------------------------------
# drop rules
# ----------------------------------------------------------------------


class MagnitudeDrop:
    """Drop the active weights closest to zero (paper's ArgTopK drop)."""

    needs_dense_grad = False
    needs_sign_reference = False

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray:
        return np.abs(target.param.data)

    def scores_at(self, target: SparseParam, ctx: LayerContext, flat_idx: np.ndarray) -> np.ndarray:
        return np.abs(target.param.data.reshape(-1)[flat_idx])


class MagnitudeGradientDrop:
    """MEST: importance ``|w| + λ|∇w|`` — drop the least important."""

    needs_dense_grad = True
    needs_sign_reference = False

    def __init__(self, lam: float = 1.0):
        self.lam = float(lam)

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray:
        if ctx.dense_grad is None:
            raise RuntimeError("MagnitudeGradientDrop requires the dense gradient")
        return np.abs(target.param.data) + self.lam * np.abs(ctx.dense_grad)

    def scores_at(self, target: SparseParam, ctx: LayerContext, flat_idx: np.ndarray) -> np.ndarray:
        if ctx.dense_grad is None:
            raise RuntimeError("MagnitudeGradientDrop requires the dense gradient")
        weights = target.param.data.reshape(-1)[flat_idx]
        grads = ctx.dense_grad.reshape(-1)[flat_idx]
        return np.abs(weights) + self.lam * np.abs(grads)


class SignFlipDrop:
    """DeepR: drop weights whose sign flipped since activation.

    Sign-flipped weights score ``-|w|`` (dropped first, most-flipped first);
    stable weights score ``+|w|`` so, if fewer than ``k`` flips happened,
    the remainder is filled by smallest-magnitude stable weights.
    """

    needs_dense_grad = False
    needs_sign_reference = True

    def scores(self, target: SparseParam, ctx: LayerContext) -> np.ndarray:
        if ctx.sign_reference is None:
            raise RuntimeError("SignFlipDrop requires the activation-time sign snapshot")
        magnitude = np.abs(target.param.data)
        flipped = target.param.data * ctx.sign_reference < 0
        return np.where(flipped, -magnitude, magnitude)

    def scores_at(self, target: SparseParam, ctx: LayerContext, flat_idx: np.ndarray) -> np.ndarray:
        if ctx.sign_reference is None:
            raise RuntimeError("SignFlipDrop requires the activation-time sign snapshot")
        weights = target.param.data.reshape(-1)[flat_idx]
        references = ctx.sign_reference.reshape(-1)[flat_idx]
        magnitude = np.abs(weights)
        return np.where(weights * references < 0, -magnitude, magnitude)
