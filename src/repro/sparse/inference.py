"""Compiled sparse inference: turn a trained MaskedModel into CSR kernels.

Table II reports inference FLOPs of the sparse models; this module makes
those savings *runnable*: after training, :func:`compile_sparse_model`
swaps every masked :class:`~repro.nn.Linear` / :class:`~repro.nn.Conv2d`
for an inference-only replacement whose weight is stored in scipy CSR form,
so the matrix products skip zeros entirely.  At the paper's 90–98%
sparsities this is both smaller (CSR storage ∝ non-zeros) and, for large
enough layers, faster than the dense kernels.

The matmuls route through the same :class:`~repro.sparse.kernels.CsrMatmul`
helper as the training backends: the transposed CSR structure is
precomputed once, so ``x @ W.T`` runs as a single sparse product with one
contiguous output — no double-transpose copy of either operand's result.

Compiled modules are inference-only: they raise if the model is in
training mode, and they do not participate in autograd.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.autograd.conv import _im2col
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.sparse.kernels import CsrMatmul
from repro.sparse.masked import MaskedModel

__all__ = [
    "SparseLinear",
    "SparseConv2d",
    "BlockSparseLinear",
    "BlockSparseConv2d",
    "compile_sparse_model",
    "sparse_storage_bytes",
]


def _frozen_matmul(weight2d: np.ndarray) -> CsrMatmul:
    """Mask-structured CSR pair for a fixed (already masked) 2-D weight."""
    matmul = CsrMatmul(weight2d.shape)
    flat = np.ascontiguousarray(weight2d, dtype=np.float32).reshape(-1)
    matmul.sync(flat, np.flatnonzero(flat != 0.0), version=0)
    return matmul


def _frozen_bsr(
    weight2d: np.ndarray, block_size: int, active_blocks: np.ndarray
) -> "sp.bsr_matrix":
    """BSR matrix for a fixed 2-D weight with a known active-block set.

    The structure comes from the *mask*, not from the values: an active
    block whose weights happen to all be zero stays stored, so the
    export/load round-trip preserves the trained block pattern exactly.
    """
    rows, cols = weight2d.shape
    b = int(block_size)
    block_rows, block_cols = rows // b, cols // b
    blocks = np.asarray(active_blocks, dtype=np.int64)
    brow, bcol = np.divmod(blocks, block_cols)
    tiles = np.ascontiguousarray(
        np.asarray(weight2d, dtype=np.float32)
        .reshape(block_rows, b, block_cols, b)
        .transpose(0, 2, 1, 3)[brow, bcol]
    )
    indptr = np.zeros(block_rows + 1, dtype=np.int32)
    np.cumsum(np.bincount(brow, minlength=block_rows), out=indptr[1:])
    return sp.bsr_matrix(
        (tiles, bcol.astype(np.int32), indptr), shape=(rows, cols), blocksize=(b, b)
    )


class SparseLinear(Module):
    """Inference-only linear layer with a CSR weight matrix."""

    def __init__(self, dense: nn.Linear):
        super().__init__()
        self.in_features = dense.in_features
        self.out_features = dense.out_features
        self._matmul = _frozen_matmul(dense.weight.data)
        self.weight_csr = self._matmul.csr
        self.weight_csr_t = self._matmul.csr_t
        self.bias_data = None if dense.bias is None else dense.bias.data.copy()

    @classmethod
    def from_csr(
        cls,
        in_features: int,
        out_features: int,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        bias: np.ndarray | None = None,
        copy: bool = True,
    ) -> "SparseLinear":
        """Rebuild a compiled layer from stored CSR components.

        Serving-artifact round-trip hook: with ``copy=False`` the weight
        matrix aliases the caller's arrays (e.g. read-only views into a
        shared-memory arena), so multiple serving workers share one copy.
        """
        layer = cls.__new__(cls)
        Module.__init__(layer)
        layer.in_features = int(in_features)
        layer.out_features = int(out_features)
        layer._matmul = CsrMatmul.from_parts(
            (layer.out_features, layer.in_features), data, indices, indptr, copy=copy
        )
        layer.weight_csr = layer._matmul.csr
        layer.weight_csr_t = layer._matmul.csr_t
        layer.bias_data = None if bias is None else np.array(bias, dtype=np.float32, copy=True)
        layer.eval()
        return layer

    @property
    def nnz(self) -> int:
        return int(self.weight_csr.nnz)

    def shared_matrices(self):
        """(name, scipy matrix) pairs whose arrays workers may share."""
        return (("csr", self.weight_csr), ("csr_t", self.weight_csr_t))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError("SparseLinear is inference-only; call model.eval()")
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        out = self._matmul.matmul_xwt(data)
        if self.bias_data is not None:
            np.add(out, self.bias_data, out=out)
        return Tensor(out)

    def __repr__(self) -> str:
        density = self.nnz / (self.in_features * self.out_features)
        return (
            f"SparseLinear(in={self.in_features}, out={self.out_features}, "
            f"nnz={self.nnz}, density={density:.3f})"
        )


class SparseConv2d(Module):
    """Inference-only conv layer: im2col + CSR filter-matrix product."""

    def __init__(self, dense: nn.Conv2d):
        super().__init__()
        self.in_channels = dense.in_channels
        self.out_channels = dense.out_channels
        self.kernel_size = dense.kernel_size
        self.stride = dense.stride
        self.padding = dense.padding
        kh, kw = self.kernel_size
        self._matmul = _frozen_matmul(
            dense.weight.data.reshape(self.out_channels, self.in_channels * kh * kw)
        )
        self.weight_csr = self._matmul.csr
        self.weight_csr_t = self._matmul.csr_t
        self.bias_data = None if dense.bias is None else dense.bias.data.copy()

    @classmethod
    def from_csr(
        cls,
        in_channels: int,
        out_channels: int,
        kernel_size: tuple[int, int],
        stride,
        padding,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        bias: np.ndarray | None = None,
        copy: bool = True,
    ) -> "SparseConv2d":
        """Rebuild a compiled conv layer from stored CSR components.

        See :meth:`SparseLinear.from_csr`; the CSR matrix here is the
        ``(out_channels, in_channels * kh * kw)`` filter matrix.
        """
        layer = cls.__new__(cls)
        Module.__init__(layer)
        layer.in_channels = int(in_channels)
        layer.out_channels = int(out_channels)
        kh, kw = kernel_size
        layer.kernel_size = (int(kh), int(kw))
        layer.stride = tuple(stride) if isinstance(stride, (tuple, list)) else int(stride)
        layer.padding = tuple(padding) if isinstance(padding, (tuple, list)) else int(padding)
        layer._matmul = CsrMatmul.from_parts(
            (layer.out_channels, layer.in_channels * layer.kernel_size[0] * layer.kernel_size[1]),
            data,
            indices,
            indptr,
            copy=copy,
        )
        layer.weight_csr = layer._matmul.csr
        layer.weight_csr_t = layer._matmul.csr_t
        layer.bias_data = None if bias is None else np.array(bias, dtype=np.float32, copy=True)
        layer.eval()
        return layer

    @property
    def nnz(self) -> int:
        return int(self.weight_csr.nnz)

    def shared_matrices(self):
        """(name, scipy matrix) pairs whose arrays workers may share."""
        return (("csr", self.weight_csr), ("csr_t", self.weight_csr_t))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError("SparseConv2d is inference-only; call model.eval()")
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        kh, kw = self.kernel_size
        stride = self.stride if isinstance(self.stride, tuple) else (self.stride, self.stride)
        padding = self.padding if isinstance(self.padding, tuple) else (self.padding, self.padding)
        cols, _, out_h, out_w = _im2col(data, kh, kw, stride, padding)
        n = data.shape[0]
        cols_mat = np.ascontiguousarray(cols).reshape(n * out_h * out_w, self.in_channels * kh * kw)
        out_mat = np.ascontiguousarray(self._matmul.matmul_xwt(cols_mat))
        out = out_mat.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if self.bias_data is not None:
            out = out + self.bias_data.reshape(1, -1, 1, 1)
        return Tensor(np.ascontiguousarray(out, dtype=np.float32))

    def __repr__(self) -> str:
        kh, kw = self.kernel_size
        size = self.out_channels * self.in_channels * kh * kw
        return (
            f"SparseConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel_size}, nnz={self.nnz}, density={self.nnz / size:.3f})"
        )


class BlockSparseLinear(SparseLinear):
    """Inference-only linear layer with a BSR (block-CSR) weight matrix.

    Produced by :func:`compile_sparse_model` for layers trained with
    ``block_size > 1``: the storage keeps whole ``B x B`` tiles
    (``data (nnzb, B, B)``, block ``indices``/``indptr``), so artifacts
    round-trip the trained block structure and the serving product runs
    block-at-a-time.
    """

    def __init__(self, dense: nn.Linear, block_size: int, active_blocks: np.ndarray):
        Module.__init__(self)
        self.in_features = dense.in_features
        self.out_features = dense.out_features
        self.block_size = int(block_size)
        self.weight_bsr = _frozen_bsr(dense.weight.data, block_size, active_blocks)
        self.bias_data = None if dense.bias is None else dense.bias.data.copy()
        self.eval()

    @classmethod
    def from_bsr(
        cls,
        in_features: int,
        out_features: int,
        block_size: int,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        bias: np.ndarray | None = None,
        copy: bool = True,
    ) -> "BlockSparseLinear":
        """Rebuild a compiled block layer from stored BSR components."""
        layer = cls.__new__(cls)
        Module.__init__(layer)
        layer.in_features = int(in_features)
        layer.out_features = int(out_features)
        b = layer.block_size = int(block_size)
        if copy:
            data = np.array(data, dtype=np.float32)
            indices = np.array(indices)
            indptr = np.array(indptr)
        layer.weight_bsr = sp.bsr_matrix(
            (data, indices, indptr),
            shape=(layer.out_features, layer.in_features),
            blocksize=(b, b),
            copy=False,
        )
        layer.bias_data = None if bias is None else np.array(bias, dtype=np.float32)
        layer.eval()
        return layer

    @property
    def nnz(self) -> int:
        return int(self.weight_bsr.nnz)

    def shared_matrices(self):
        return (("bsr", self.weight_bsr),)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError("BlockSparseLinear is inference-only; call model.eval()")
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        out = np.ascontiguousarray((self.weight_bsr @ data.T).T, dtype=np.float32)
        if self.bias_data is not None:
            np.add(out, self.bias_data, out=out)
        return Tensor(out)

    def __repr__(self) -> str:
        density = self.nnz / (self.in_features * self.out_features)
        return (
            f"BlockSparseLinear(in={self.in_features}, out={self.out_features}, "
            f"block={self.block_size}, nnz={self.nnz}, density={density:.3f})"
        )


class BlockSparseConv2d(SparseConv2d):
    """Inference-only conv layer: im2col + BSR filter-matrix product."""

    def __init__(self, dense: nn.Conv2d, block_size: int, active_blocks: np.ndarray):
        Module.__init__(self)
        self.in_channels = dense.in_channels
        self.out_channels = dense.out_channels
        self.kernel_size = dense.kernel_size
        self.stride = dense.stride
        self.padding = dense.padding
        self.block_size = int(block_size)
        kh, kw = self.kernel_size
        self.weight_bsr = _frozen_bsr(
            dense.weight.data.reshape(self.out_channels, self.in_channels * kh * kw),
            block_size,
            active_blocks,
        )
        self.bias_data = None if dense.bias is None else dense.bias.data.copy()
        self.eval()

    @classmethod
    def from_bsr(
        cls,
        in_channels: int,
        out_channels: int,
        kernel_size: tuple[int, int],
        stride,
        padding,
        block_size: int,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        bias: np.ndarray | None = None,
        copy: bool = True,
    ) -> "BlockSparseConv2d":
        """Rebuild a compiled block conv layer from stored BSR components."""
        layer = cls.__new__(cls)
        Module.__init__(layer)
        layer.in_channels = int(in_channels)
        layer.out_channels = int(out_channels)
        kh, kw = kernel_size
        layer.kernel_size = (int(kh), int(kw))
        layer.stride = tuple(stride) if isinstance(stride, (tuple, list)) else int(stride)
        layer.padding = tuple(padding) if isinstance(padding, (tuple, list)) else int(padding)
        b = layer.block_size = int(block_size)
        if copy:
            data = np.array(data, dtype=np.float32)
            indices = np.array(indices)
            indptr = np.array(indptr)
        layer.weight_bsr = sp.bsr_matrix(
            (data, indices, indptr),
            shape=(
                layer.out_channels,
                layer.in_channels * layer.kernel_size[0] * layer.kernel_size[1],
            ),
            blocksize=(b, b),
            copy=False,
        )
        layer.bias_data = None if bias is None else np.array(bias, dtype=np.float32)
        layer.eval()
        return layer

    @property
    def nnz(self) -> int:
        return int(self.weight_bsr.nnz)

    def shared_matrices(self):
        return (("bsr", self.weight_bsr),)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError("BlockSparseConv2d is inference-only; call model.eval()")
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        kh, kw = self.kernel_size
        stride = self.stride if isinstance(self.stride, tuple) else (self.stride, self.stride)
        padding = self.padding if isinstance(self.padding, tuple) else (self.padding, self.padding)
        cols, _, out_h, out_w = _im2col(data, kh, kw, stride, padding)
        n = data.shape[0]
        cols_mat = np.ascontiguousarray(cols).reshape(n * out_h * out_w, self.in_channels * kh * kw)
        out_mat = np.ascontiguousarray((self.weight_bsr @ cols_mat.T).T)
        out = out_mat.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if self.bias_data is not None:
            out = out + self.bias_data.reshape(1, -1, 1, 1)
        return Tensor(np.ascontiguousarray(out, dtype=np.float32))

    def __repr__(self) -> str:
        kh, kw = self.kernel_size
        size = self.out_channels * self.in_channels * kh * kw
        return (
            f"BlockSparseConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel_size}, block={self.block_size}, "
            f"nnz={self.nnz}, density={self.nnz / size:.3f})"
        )


def compile_sparse_model(masked: MaskedModel) -> Module:
    """Replace every masked Linear/Conv2d in the model with a sparse version.

    The masks are applied first, so the sparse structure matches the
    trained sparsity pattern exactly.  Layers trained with ``block_size >
    1`` compile to BSR (:class:`BlockSparseLinear` /
    :class:`BlockSparseConv2d`); the rest compile to CSR.  Returns the
    (mutated) model in eval mode.  The original :class:`MaskedModel`
    should not be trained afterwards.
    """
    masked.apply_masks()
    targets_by_param = {id(t.param): t for t in masked.targets}
    model = masked.model

    def compile_children(module: Module) -> None:
        for name, child in list(module._modules.items()):
            target = None
            if isinstance(child, (nn.Linear, nn.Conv2d)):
                target = targets_by_param.get(id(child.weight))
            if target is None:
                compile_children(child)
            elif isinstance(child, nn.Linear):
                if target.block_size > 1:
                    module.add_module(
                        name,
                        BlockSparseLinear(child, target.block_size, target.active_blocks),
                    )
                else:
                    module.add_module(name, SparseLinear(child))
            else:
                if target.block_size > 1:
                    module.add_module(
                        name,
                        BlockSparseConv2d(child, target.block_size, target.active_blocks),
                    )
                else:
                    module.add_module(name, SparseConv2d(child))

    compile_children(model)
    model.eval()
    return model


def sparse_storage_bytes(model: Module) -> tuple[int, int]:
    """(sparse bytes, equivalent dense bytes) over all compiled sparse layers."""
    sparse_bytes = 0
    dense_bytes = 0
    for module in model.modules():
        if isinstance(module, (SparseLinear, SparseConv2d)):
            matrix = (
                module.weight_bsr
                if isinstance(module, (BlockSparseLinear, BlockSparseConv2d))
                else module.weight_csr
            )
            sparse_bytes += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
            dense_bytes += int(np.prod(matrix.shape)) * 4
    return sparse_bytes, dense_bytes
