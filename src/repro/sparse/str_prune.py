"""STR-style dense-to-sparse training via scheduled layerwise thresholding.

The original STR (Kusupati et al., ICML'20) reparameterizes each weight as
``sign(w)·relu(|w| − sigmoid(s_l))`` with a learnable per-layer threshold
``s_l`` whose final value is tuned indirectly through weight decay.  That
indirect control makes hitting an exact target sparsity awkward, and the
literal proximal form (subtracting τ from every weight every step) needs
STR's 100-epoch budgets for surviving weights to out-run the shrinkage bias.
Following the substitution rule (DESIGN.md §2) we keep STR's two essential
behaviours at bench scale:

* **layerwise thresholds applied to the live weights** — every step, each
  layer's weights below its threshold ``τ_l(t)`` are zeroed, but gradients
  stay dense so pruned weights can revive (STR's sub-threshold dynamics);
* **the sparsity level follows a schedule** — ``τ_l(t)`` is set to the
  |w|-quantile matching a cubic dense→sparse schedule, so which weights
  survive is decided by training dynamics while the level is exact.

EXPERIMENTS.md records this as "STR (thresholding variant)".
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.sparse.budget import DensityBudget
from repro.sparse.engine import SparsityController
from repro.sparse.gmp import cubic_sparsity
from repro.sparse.masked import MaskedModel
from repro.sparse.schedule import TrainingSchedule

__all__ = ["STRController"]


class STRController(SparsityController):
    """Proximal soft-threshold dense-to-sparse training.

    Unified form (see docs/controllers.md)::

        STRController(masked, schedule, budget, grad_clip=...)

    ``schedule`` supplies the threshold-update window
    (``t_start_fraction``/``t_end_fraction``/``delta_t``), ``budget`` the
    *final* global allocation (per-layer split nominal — thresholds are
    layerwise quantiles of a global cubic schedule).  The pre-budget form
    ``STRController(masked, final_sparsity, total_steps, ...)`` still
    works for one release and emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    masked:
        :class:`MaskedModel` built dense (``sparsity=0``); its masks track
        the current non-zero pattern for reporting/FLOPs.
    grad_clip:
        Global gradient-norm clip (dense-to-sparse stabilization).
    """

    # Construction-time config: the final target and the threshold window
    # never mutate during training (thresholds themselves ARE checkpointed).
    CHECKPOINT_EXEMPT = {"budget", "schedule"}

    def __init__(
        self,
        masked: MaskedModel,
        schedule: TrainingSchedule | float | None = None,
        budget: DensityBudget | int | None = None,
        t_start_fraction: float | None = None,
        t_end_fraction: float | None = None,
        delta_t: int | None = None,
        grad_clip: float = 5.0,
        *,
        final_sparsity: float | None = None,
        total_steps: int | None = None,
    ):
        if isinstance(schedule, (int, float)) or final_sparsity is not None:
            # Legacy form: (masked, final_sparsity, total_steps, ...).
            warnings.warn(
                "STRController(masked, final_sparsity, total_steps, ...) is "
                "deprecated; pass a TrainingSchedule and a final DensityBudget "
                "(see docs/controllers.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            if final_sparsity is None:
                final_sparsity = float(schedule)
            if total_steps is None:
                if budget is None:
                    raise TypeError("the legacy STRController form needs total_steps")
                total_steps = int(budget)
            schedule = TrainingSchedule(
                total_steps=int(total_steps),
                delta_t=50 if delta_t is None else int(delta_t),
                t_start_fraction=(
                    0.05 if t_start_fraction is None else float(t_start_fraction)
                ),
                t_end_fraction=0.75 if t_end_fraction is None else float(t_end_fraction),
            )
            budget = None
        else:
            if schedule is None:
                raise TypeError(
                    "pass schedule=TrainingSchedule(...) and a final DensityBudget "
                    "(or the legacy final_sparsity/total_steps form)"
                )
            if budget is None:
                raise TypeError("the unified STRController form needs a final budget")
            if t_start_fraction is not None or t_end_fraction is not None or delta_t is not None:
                raise TypeError("timing knobs live on the TrainingSchedule")
            final_sparsity = 1.0 - budget.total / budget.capacity
        if not 0.0 < final_sparsity < 1.0:
            raise ValueError(f"final_sparsity must be in (0, 1), got {final_sparsity}")
        self.masked = masked
        self.schedule = schedule
        self.budget = budget
        self.final_sparsity = float(final_sparsity)
        self.total_steps = schedule.total_steps
        self.t_start = schedule.t_start
        self.t_end = schedule.t_end
        self.delta_t = schedule.delta_t
        self.grad_clip = float(grad_clip)
        self._thresholds = [0.0 for _ in masked.targets]
        self.history: list[tuple[int, float]] = []

    def on_backward(self, step: int) -> bool:
        # Dense-to-sparse: gradients stay dense (pruned weights may revive
        # early in training, as in STR); masks only track the pattern.
        # Abrupt threshold jumps at high sparsity can destabilize training,
        # so the global gradient norm is clipped (standard dense-to-sparse
        # practice).
        if self.grad_clip > 0:
            self._clip_gradients()
        return False

    def _clip_gradients(self) -> None:
        grads = [p.grad for p in self.masked.model.parameters() if p.grad is not None]
        if not grads:
            return
        total_norm = float(np.sqrt(sum(float((g.astype(np.float64) ** 2).sum()) for g in grads)))
        if total_norm > self.grad_clip:
            scale = self.grad_clip / (total_norm + 1e-12)
            for param in self.masked.model.parameters():
                if param.grad is not None:
                    param.grad = (param.grad * scale).astype(param.grad.dtype)

    def after_step(self, step: int) -> None:
        if step % self.delta_t == 0 or step == 1:
            self._update_thresholds(step)
            self.history.append((step, self.masked.global_sparsity()))
        self._shrink()

    def _update_thresholds(self, step: int) -> None:
        target = cubic_sparsity(step, self.t_start, self.t_end, 0.0, self.final_sparsity)
        for index, sparse_param in enumerate(self.masked.targets):
            magnitudes = np.abs(sparse_param.param.data.reshape(-1))
            if target <= 0.0:
                self._thresholds[index] = 0.0
            else:
                self._thresholds[index] = float(np.quantile(magnitudes, target))

    def _shrink(self) -> None:
        for threshold, sparse_param in zip(self._thresholds, self.masked.targets):
            if threshold <= 0.0:
                sparse_param.mask = np.ones_like(sparse_param.mask)
                continue
            weights = sparse_param.param.data
            thresholded = np.where(np.abs(weights) >= threshold, weights, 0.0)
            sparse_param.param.data = thresholded.astype(weights.dtype)
            sparse_param.mask = thresholded != 0.0

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["thresholds"] = list(self._thresholds)
        state["history"] = [tuple(item) for item in self.history]
        return state

    def load_state_dict(self, state: dict) -> None:
        # Thresholds are only recomputed every delta_t steps, so a resumed run
        # must start from the saved ones or _shrink() would apply stale zeros
        # until the next update boundary.
        super().load_state_dict(state)
        if "thresholds" in state:
            self._thresholds = [float(value) for value in state["thresholds"]]
        if "history" in state:
            self.history = [
                (int(step), float(sparsity)) for step, sparsity in state["history"]
            ]

    def finalize(self) -> None:
        """Freeze the final pattern into the masks (call after training)."""
        for sparse_param in self.masked.targets:
            sparse_param.mask = sparse_param.param.data != 0.0
        self.masked.apply_masks()
