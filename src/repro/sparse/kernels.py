"""Training-time sparse kernel backends for masked Linear/Conv2d layers.

The drop-and-grow engine keeps masks as dense booleans, but at the paper's
90–98% sparsities the *compute* should exploit the sparse structure too
(RigL and the Graphcore dynamic-sparsity stack both make this point).  This
module provides that compute path for **training**:

* :class:`CsrMatmul` — a mask-structured CSR form of one 2-D weight view.
  The structure (``indices``/``indptr`` plus the value-gather permutations)
  is rebuilt only when the owning layer's ``mask_version`` changes, i.e.
  only for layers whose masks actually moved in a drop-and-grow round;
  values are refreshed from the dense parameter by a single ``np.take``
  into the preallocated CSR ``data`` arrays — no per-step allocation.
* :class:`BsrMatmul` — the block-structured counterpart for layers with
  ``block_size > 1`` masks: structure rebuilds expand the engine's sorted
  active-block set in ``O(nnz)`` and the products run through direct
  ``csr_matvecs`` calls (sparse operand on the left, preallocated outputs)
  that sidestep scipy's per-call operator dispatch.
* :class:`LinearKernel` / :class:`Conv2dKernel` — backend objects installed
  on ``module.forward_backend`` (see :mod:`repro.nn.linear` /
  :mod:`repro.nn.conv`).  They run the masked forward through the sparse
  matmuls and register an autograd closure whose input gradient also uses
  the sparse structure.  The **weight** gradient stays dense — growth rules
  (RigL, DST-EE, SNFS) score *inactive* weights by dense-gradient
  magnitude, so the dense GEMM ``gradᵀ @ x`` is part of the algorithm, not
  overhead.
* A dispatch layer: per layer, ``dense`` vs ``csr``/``bsr`` is
  auto-selected from the layer's density, size and mask granularity; the
  mode and thresholds are overridable per call or process-wide via
  environment variables.

Both matmul orientations use the documented ``dense @ sparse`` product with
a *stored transposed structure* (``W`` and ``W.T`` share their nnz values
through two cached gather permutations), so neither direction pays the
double-transpose copy that a naive ``(csr @ x.T).T`` incurs.  The outputs
are Fortran-contiguous, which makes chained sparse layers copy-free: the
next layer's ``x.T`` ravel is then already C-ordered.

Environment overrides
---------------------
``REPRO_SPARSE_BACKEND``            ``auto`` (default) / ``dense`` / ``csr`` / ``bsr``
``REPRO_SPARSE_DENSITY_THRESHOLD``  density at/below which ``auto`` picks CSR
``REPRO_SPARSE_MIN_SIZE``           minimum weight size for the CSR backend
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.autograd.conv import (
    _accumulate_grad_w,
    _col2im,
    _col2im_t,
    _contiguous_cols,
    _im2col,
    _input_grad_workspace,
    _pair,
    _stage_grad_mat,
)
from repro.autograd.tensor import Tensor, ensure_tensor
from repro.hotpath import hot_path
from repro.sparse.blocks import expand_block_csr
from repro.sparse.masked import MaskedModel, SparseParam

try:  # pragma: no cover - scipy always ships _sparsetools today
    from scipy.sparse import _sparsetools as _spt
except ImportError:  # pragma: no cover
    _spt = None

__all__ = [
    "BACKEND_ENV",
    "DENSITY_THRESHOLD_ENV",
    "MIN_SIZE_ENV",
    "DEFAULT_DENSITY_THRESHOLD",
    "DEFAULT_MIN_SIZE",
    "CsrMatmul",
    "BsrMatmul",
    "LinearKernel",
    "Conv2dKernel",
    "resolve_mode",
    "select_backend",
    "install_training_backends",
    "remove_training_backends",
]

BACKEND_ENV = "REPRO_SPARSE_BACKEND"
DENSITY_THRESHOLD_ENV = "REPRO_SPARSE_DENSITY_THRESHOLD"
MIN_SIZE_ENV = "REPRO_SPARSE_MIN_SIZE"

# On this CPU the scipy CSR kernels run ~7x fewer effective FLOP/s than the
# dense BLAS GEMM, so CSR wins once it does ~7x less work; 0.12 leaves some
# margin (90/95/98% sparsity -> CSR, 80% -> dense).  See docs/performance.md.
DEFAULT_DENSITY_THRESHOLD = 0.12
# Below this weight size the per-call overhead dominates; stay dense.
DEFAULT_MIN_SIZE = 16384

_MODES = ("auto", "dense", "csr", "bsr")


def resolve_mode(mode: str | None = None) -> str:
    """Explicit argument > ``REPRO_SPARSE_BACKEND`` env var > ``auto``."""
    resolved = mode if mode is not None else os.environ.get(BACKEND_ENV, "auto")
    resolved = resolved.lower()
    if resolved not in _MODES:
        raise ValueError(f"unknown sparse backend {resolved!r}; choose from {_MODES}")
    return resolved


def _float_env(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return default if raw is None else float(raw)


def select_backend(
    density: float,
    size: int,
    mode: str = "auto",
    density_threshold: float | None = None,
    min_size: int | None = None,
    block_size: int = 1,
) -> str:
    """Pick ``"dense"``, ``"csr"`` or ``"bsr"`` for one layer.

    ``"bsr"`` requires a block-structured mask (``block_size > 1``): block
    layers are forced sparse under an explicit ``mode="bsr"``, while layers
    without a block mask — the per-layer non-divisible fallbacks — go
    through the auto density/size thresholds instead (an ERK-dense fallback
    layer forced onto CSR would pay the sparse overhead at density ~1).
    """
    if mode in ("dense", "csr"):
        return mode
    if mode == "bsr" and block_size > 1:
        return "bsr"
    if density_threshold is None:
        density_threshold = _float_env(DENSITY_THRESHOLD_ENV, DEFAULT_DENSITY_THRESHOLD)
    if min_size is None:
        min_size = int(_float_env(MIN_SIZE_ENV, DEFAULT_MIN_SIZE))
    if size >= min_size and density <= density_threshold:
        return "bsr" if block_size > 1 else "csr"
    return "dense"


class CsrMatmul:
    """CSR (and transposed CSR) form of a 2-D weight view, mask-structured.

    ``sync`` refreshes the nnz values from the flat dense weight on every
    call (one cached gather per orientation) and rebuilds the index
    structure only when ``version`` changed since the last sync.
    """

    def __init__(self, shape2d: tuple[int, int]):
        self.shape2d = (int(shape2d[0]), int(shape2d[1]))
        self._version = -1
        self.csr: sp.csr_matrix | None = None  # W      (rows, cols)
        self.csr_t: sp.csr_matrix | None = None  # W.T  (cols, rows)
        self._gather: np.ndarray | None = None
        self._perm_t: np.ndarray | None = None

    @property
    def structure_version(self) -> int:
        """Mask version the current index structure was built from."""
        return self._version

    @classmethod
    def from_parts(
        cls,
        shape2d: tuple[int, int],
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        copy: bool = False,
    ) -> "CsrMatmul":
        """Frozen matmul pair rebuilt from stored CSR components.

        Serving-artifact round-trip hook (:mod:`repro.serve.artifact`): the
        exported ``(data, indices, indptr)`` of ``W`` come back as a ready
        :class:`CsrMatmul` whose transposed structure is derived once at
        load time.  With ``copy=False`` the forward matrix aliases the
        caller's arrays (e.g. views into a shared-memory weight arena), so
        N serving workers can share one read-only copy of the weights.

        The result is inference-frozen: :meth:`sync` would rebuild the
        structure from a mask and must not be called on it.
        """
        matmul = cls(shape2d)
        data = np.asarray(data, dtype=np.float32)
        indices = np.asarray(indices, dtype=np.int32)
        indptr = np.asarray(indptr, dtype=np.int32)
        if copy:
            data, indices, indptr = data.copy(), indices.copy(), indptr.copy()
        # Build an empty matrix and attach the arrays by attribute: the
        # component-triplet constructor canonicalizes (and therefore copies),
        # which would break aliasing into a shared-memory arena.
        matmul.csr = sp.csr_matrix(matmul.shape2d, dtype=np.float32)
        matmul.csr.data = data
        matmul.csr.indices = indices
        matmul.csr.indptr = indptr
        matmul.csr_t = matmul.csr.T.tocsr()
        for matrix in (matmul.csr, matmul.csr_t):
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True
        matmul._version = 0
        return matmul

    @hot_path
    def sync(self, flat_values: np.ndarray, active_idx: np.ndarray, version: int) -> None:
        if version != self._version:
            self._rebuild(active_idx)
            self._version = version
        np.take(flat_values, self._gather, out=self.csr.data)
        # The transposed values are a permutation of the ones just gathered;
        # permuting the nnz-sized buffer stays cache-resident, unlike a
        # second strided gather from the full dense weight.
        np.take(self.csr.data, self._perm_t, out=self.csr_t.data)

    def _rebuild(self, active_idx: np.ndarray) -> None:
        n_rows, n_cols = self.shape2d
        rows, cols = np.divmod(active_idx, n_cols)
        nnz = int(active_idx.size)

        indptr = np.zeros(n_rows + 1, dtype=np.int32)
        np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
        self.csr = sp.csr_matrix(
            (np.empty(nnz, dtype=np.float32), cols.astype(np.int32), indptr),
            shape=self.shape2d,
        )
        self._gather = active_idx

        # Transposed structure: the same nnz set ordered by (col, row).
        order = np.lexsort((rows, cols))
        t_indptr = np.zeros(n_cols + 1, dtype=np.int32)
        np.cumsum(np.bincount(cols, minlength=n_cols), out=t_indptr[1:])
        self.csr_t = sp.csr_matrix(
            (np.empty(nnz, dtype=np.float32), rows[order].astype(np.int32), t_indptr),
            shape=(n_cols, n_rows),
        )
        self._perm_t = order

        for matrix in (self.csr, self.csr_t):
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True

    # Both products keep the sparse operand on the left internally (scipy's
    # fast path) by routing through the pre-transposed structure.
    @hot_path
    def matmul_xwt(self, x2d: np.ndarray) -> np.ndarray:
        """``x @ W.T`` for row-major ``x`` of shape (N, cols) -> (N, rows)."""
        return np.asarray(x2d @ self.csr_t)

    @hot_path
    def matmul_gw(self, g2d: np.ndarray) -> np.ndarray:
        """``g @ W`` for row-major ``g`` of shape (N, rows) -> (N, cols)."""
        return np.asarray(g2d @ self.csr)


class BsrMatmul:
    """Block-sparse matmuls for a block-masked 2-D weight view.

    The *bookkeeping* is block-granular: structure rebuilds read the layer's
    sorted active-block set (``O(nnz_blocks)`` triplets maintained by the
    drop-and-grow engine) and expand it to element-level CSR in ``O(nnz)``
    via :func:`repro.sparse.blocks.expand_block_csr` — never a scan of the
    dense mask.  *Execution* calls scipy's ``csr_matvecs`` kernel directly
    on the expanded structure with preallocated C-contiguous operands and
    the sparse operand on the left; on this CPU that direct call beats the
    dense GEMM, the ``dense @ sparse`` operator dispatch (which pays ~0.26
    ms/call in wrapper objects) *and* scipy's own ``bsr_matvecs`` at the
    paper's shapes — see docs/performance.md.

    Both orientations are stored: ``W`` (rows×cols) and ``W.T``, each with a
    cached flat-element gather so a sync refreshes values with two
    ``np.take`` calls and no per-step allocation.  ``csr_matvecs`` computes
    ``Y += A @ X``, so the bias folds into the output initialization for
    free.  Output buffers live in a small per-instance cache keyed by name
    (same step-lifetime contract as :class:`~repro.autograd.conv.ConvWorkspace`).
    """

    def __init__(self, shape2d: tuple[int, int], block_size: int):
        self.shape2d = (int(shape2d[0]), int(shape2d[1]))
        self.block_size = int(block_size)
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        rows, cols = self.shape2d
        if rows % self.block_size or cols % self.block_size:
            raise ValueError(
                f"matrix shape {self.shape2d} is not divisible by "
                f"block_size {self.block_size}"
            )
        self._version = -1
        self._buffers: dict[str, np.ndarray] = {}
        self._indptr: np.ndarray | None = None
        self._indices: np.ndarray | None = None
        self._data: np.ndarray | None = None
        self._gather: np.ndarray | None = None
        self._indptr_t: np.ndarray | None = None
        self._indices_t: np.ndarray | None = None
        self._data_t: np.ndarray | None = None
        self._gather_t: np.ndarray | None = None
        self._brows: np.ndarray | None = None
        self._bcols: np.ndarray | None = None
        self._scatter: np.ndarray | None = None
        self._grad_w_stale = False

    @property
    def structure_version(self) -> int:
        """Mask version the current index structure was built from."""
        return self._version

    def buffer(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """Cached float32 buffer, reallocated only on shape change."""
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float32)
            self._buffers[name] = buf
        return buf

    @hot_path
    def sync(self, flat_values: np.ndarray, target: SparseParam) -> None:
        """Refresh values (and structure, iff the mask moved) from ``target``."""
        if target.mask_version != self._version:
            self._rebuild(target.active_blocks)
            self._version = target.mask_version
        np.take(flat_values, self._gather, out=self._data)
        np.take(flat_values, self._gather_t, out=self._data_t)

    def _rebuild(self, active_blocks: np.ndarray) -> None:
        rows, cols = self.shape2d
        b = self.block_size
        block_rows, block_cols = rows // b, cols // b
        indptr, indices, erows = expand_block_csr(active_blocks, block_rows, block_cols, b)
        self._indptr, self._indices = indptr, indices
        self._gather = erows * cols + indices
        self._data = np.empty(indices.size, dtype=np.float32)

        # Transposed structure: the same blocks in the (cols, rows) matrix.
        blocks = np.asarray(active_blocks, dtype=np.int64)
        brow, bcol = np.divmod(blocks, block_cols)
        indptr_t, indices_t, erows_t = expand_block_csr(
            bcol * block_rows + brow, block_cols, block_rows, b
        )
        self._indptr_t, self._indices_t = indptr_t, indices_t
        # W.T[r', c'] = W[c', r']: gather from flat W at c' * cols + r'.
        self._gather_t = indices_t.astype(np.int64) * cols + erows_t
        self._data_t = np.empty(indices_t.size, dtype=np.float32)

        # Per-block coordinates and flat element scatter for the sparse
        # weight-gradient path (active tiles only, sorted block-id order).
        self._brows, self._bcols = brow, bcol
        offsets = (np.arange(b)[:, None] * cols + np.arange(b)[None, :]).reshape(-1)
        top_left = brow * b * cols + bcol * b
        self._scatter = (top_left[:, None] + offsets[None, :]).reshape(-1)
        self._grad_w_stale = True

    def grad_w_buffer(self, shape: tuple[int, ...]) -> np.ndarray:
        """Dense weight-gradient buffer whose inactive coordinates are zero.

        :meth:`scatter_grad_w` overwrites the same ``_scatter`` positions
        every step, so between mask rebuilds the buffer only needs zeroing
        once — stale active-tile values are assigned over, everything else
        was zeroed when the structure last changed.
        """
        buf = self._buffers.get("grad_w_sparse")
        if buf is None or buf.shape != shape:
            buf = np.zeros(shape, dtype=np.float32)
            self._buffers["grad_w_sparse"] = buf
        elif self._grad_w_stale:
            buf.fill(0.0)
        self._grad_w_stale = False
        return buf

    # ------------------------------------------------------------------
    # products (sparse operand on the left; operands C-contiguous)
    # ------------------------------------------------------------------
    @hot_path
    def _matvecs(self, n_row, n_col, indptr, indices, data, x2d, out) -> None:
        if _spt is not None:
            _spt.csr_matvecs(
                n_row, n_col, x2d.shape[1], indptr, indices, data, x2d.ravel(), out.ravel()
            )
        else:  # pragma: no cover - exercised only without scipy internals
            csr = sp.csr_matrix((n_row, n_col), dtype=np.float32)
            csr.data, csr.indices, csr.indptr = data, indices, indptr
            csr.has_sorted_indices = True
            csr.has_canonical_format = True
            out += csr @ x2d

    @hot_path
    def matmul_wx(self, x_t: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
        """``W @ x_t`` (+ broadcast bias) for C-contiguous ``x_t`` of shape
        ``(cols, N)``; returns a cached C-contiguous ``(rows, N)`` buffer."""
        rows, cols = self.shape2d
        out = self.buffer("wx", (rows, x_t.shape[1]))
        if bias is not None:
            np.copyto(out, bias.reshape(rows, 1))
        else:
            out.fill(0.0)
        self._matvecs(rows, cols, self._indptr, self._indices, self._data, x_t, out)
        return out

    @hot_path
    def matmul_wtg(self, g_t: np.ndarray, reuse: bool = True) -> np.ndarray:
        """``W.T @ g_t`` for C-contiguous ``g_t`` of shape ``(rows, N)``;
        returns ``(cols, N)``.  ``reuse=False`` allocates a fresh output
        (for results the caller may hand to gradient accumulation while an
        earlier accumulation is still pending)."""
        rows, cols = self.shape2d
        if reuse:
            out = self.buffer("wtg", (cols, g_t.shape[1]))
            out.fill(0.0)
        else:
            # Fresh by contract: the caller hands this array to gradient
            # accumulation, so the cached buffer would alias across steps.
            # reprolint: disable-next=RPL005
            out = np.zeros((cols, g_t.shape[1]), dtype=np.float32)
        self._matvecs(cols, rows, self._indptr_t, self._indices_t, self._data_t, g_t, out)
        return out

    def scatter_grad_w(self, g_t: np.ndarray, x_t: np.ndarray, grad_w: np.ndarray) -> None:
        """Active-tile weight gradient, scattered into zeroed dense ``grad_w``.

        A sampled dense-dense matmul (SDDMM) at block granularity: tile
        ``(r, c)`` of the gradient is ``g_t[rB:(r+1)B] @ x_t[cB:(c+1)B].T``,
        batched over the active tiles only — ~``density``× the FLOPs of the
        full ``g_tᵀ``-style GEMM.  Only valid when the consumer never reads
        inactive-coordinate gradients (bound sparse optimizer, no growth
        scoring this step); callers gate on ``dense_grads_required``.
        """
        b = self.block_size
        rows, cols = self.shape2d
        g3 = g_t.reshape(rows // b, b, g_t.shape[1])
        x3 = x_t.reshape(cols // b, b, x_t.shape[1])
        tiles = np.matmul(g3[self._brows], x3[self._bcols].transpose(0, 2, 1))
        grad_w.reshape(-1)[self._scatter] = tiles.reshape(-1)


class _KernelBase:
    """Shared dispatch logic: re-evaluate dense-vs-CSR when the mask moves."""

    def __init__(
        self,
        module,
        target: SparseParam,
        mode: str,
        density_threshold: float | None,
        min_size: int | None,
    ):
        self.module = module
        self.target = target
        self.mode = mode
        self.density_threshold = density_threshold
        self.min_size = min_size
        self._choice = "dense"
        self._choice_version = -1

    def backend(self) -> str:
        target = self.target
        if target.mask_version != self._choice_version:
            self._choice = select_backend(
                target.density,
                target.size,
                self.mode,
                self.density_threshold,
                self.min_size,
                block_size=target.block_size,
            )
            self._choice_version = target.mask_version
        return self._choice


def _zeroed_grad_w(weight, workspace, matmul: BsrMatmul) -> np.ndarray:
    """Zeroed dense weight-gradient buffer for the sparse scatter path.

    Uses the matmul's zero-once cache unless a previous accumulation is
    still pending — the cached buffer may already be adopted as
    ``weight.grad``, and overwriting it in place would corrupt the sum.
    """
    if weight.grad is None:
        return matmul.grad_w_buffer(weight.shape)
    return np.zeros(weight.shape, dtype=np.float32)


class LinearKernel(_KernelBase):
    """Sparse training forward for a masked :class:`~repro.nn.Linear`.

    Dispatches per call to the CSR or BSR matmul pair; returns ``None``
    (declining the call, so the module falls back to its dense path) when
    dispatch picks dense or the input is unsupported.
    """

    def __init__(self, module, target, mode="auto", density_threshold=None, min_size=None):
        super().__init__(module, target, mode, density_threshold, min_size)
        self.matmul = CsrMatmul(module.weight.shape)
        self._bsr_matmul: BsrMatmul | None = None

    def _bsr(self) -> BsrMatmul:
        if self._bsr_matmul is None:
            self._bsr_matmul = BsrMatmul(self.module.weight.shape, self.target.block_size)
        return self._bsr_matmul

    def __call__(self, x) -> Tensor | None:
        choice = self.backend()
        if choice == "dense":
            return None
        x = ensure_tensor(x)
        data = x.data
        if data.ndim != 2 or data.dtype != np.float32:
            return None
        if choice == "bsr":
            return self._forward_bsr(x, data)
        return self._forward_csr(x, data)

    def _forward_csr(self, x, data: np.ndarray) -> Tensor:
        weight = self.module.weight
        bias = self.module.bias
        target = self.target
        matmul = self.matmul
        matmul.sync(weight.data.reshape(-1), target.active_indices, target.mask_version)

        out = matmul.matmul_xwt(data)
        if bias is not None:
            np.add(out, bias.data, out=out)

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray) -> None:
            if weight.requires_grad:
                # Dense by design: growth rules score inactive weights too.
                weight._accumulate(grad.T @ data)
            if x.requires_grad:
                x._accumulate(matmul.matmul_gw(grad))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=0))

        return Tensor._make(out, parents, backward)

    def _forward_bsr(self, x, data: np.ndarray) -> Tensor:
        weight = self.module.weight
        bias = self.module.bias
        matmul = self._bsr()
        matmul.sync(weight.data.reshape(-1), self.target)
        n, in_features = data.shape

        # Sparse-left orientation: stage x.T C-contiguous once, then
        # out.T = W @ x.T lands C-contiguous and out is its free F view.
        x_t = matmul.buffer("xT", (in_features, n))
        np.copyto(x_t, data.T)
        out = matmul.matmul_wx(x_t, None if bias is None else bias.data).T

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray) -> None:
            g_t = matmul.buffer("gT", (grad.shape[1], n))
            np.copyto(g_t, grad.T)
            if weight.requires_grad:
                if self.target.dense_grads_required:
                    # Dense at update steps: growth scores inactive weights.
                    weight._accumulate(grad.T @ data)
                else:
                    grad_w = _zeroed_grad_w(weight, None, matmul)
                    matmul.scatter_grad_w(g_t, x_t, grad_w)
                    weight._accumulate(grad_w)
            if x.requires_grad:
                # Fresh output when an accumulation is pending (the cached
                # buffer may already be adopted as x.grad).
                gx_t = matmul.matmul_wtg(g_t, reuse=x.grad is None)
                x._accumulate(gx_t.T)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=0))

        return Tensor._make(out, parents, backward)


class Conv2dKernel(_KernelBase):
    """Sparse training forward for a masked :class:`~repro.nn.Conv2d`.

    Lowers to im2col exactly like :func:`repro.autograd.conv.conv2d`, but
    the filter-matrix products (forward and input-gradient) run on the
    mask-structured CSR or block-sparse matrices.
    """

    def __init__(self, module, target, mode="auto", density_threshold=None, min_size=None):
        super().__init__(module, target, mode, density_threshold, min_size)
        c_out, c_in, kh, kw = module.weight.shape
        self.matmul = CsrMatmul((c_out, c_in * kh * kw))
        self._bsr_matmul: BsrMatmul | None = None

    def _bsr(self) -> BsrMatmul:
        if self._bsr_matmul is None:
            c_out, c_in, kh, kw = self.module.weight.shape
            self._bsr_matmul = BsrMatmul((c_out, c_in * kh * kw), self.target.block_size)
        return self._bsr_matmul

    def __call__(self, x) -> Tensor | None:
        choice = self.backend()
        if choice == "dense":
            return None
        x = ensure_tensor(x)
        data = x.data
        if data.ndim != 4 or data.dtype != np.float32:
            return None
        c_in = self.module.weight.shape[1]
        if data.shape[1] != c_in:
            raise ValueError(
                f"conv2d channel mismatch: input has {data.shape[1]}, weight expects {c_in}"
            )
        if choice == "bsr":
            return self._forward_bsr(x, data)
        return self._forward_csr(x, data)

    def _forward_csr(self, x, data: np.ndarray) -> Tensor:
        module = self.module
        weight = module.weight
        bias = module.bias
        target = self.target
        matmul = self.matmul
        c_out, c_in, kh, kw = weight.shape
        stride = _pair(module.stride)
        padding = _pair(module.padding)
        # The module's ConvWorkspace is shared with the dense path: only one
        # path runs per call and both use the same buffer shapes, so flips
        # of the density-based dispatch never grow the cache.
        workspace = getattr(module, "workspace", None)
        matmul.sync(weight.data.reshape(-1), target.active_indices, target.mask_version)

        cols, padded_shape, out_h, out_w = _im2col(data, kh, kw, stride, padding, workspace)
        n = data.shape[0]
        cols_mat = _contiguous_cols(cols, workspace).reshape(n * out_h * out_w, c_in * kh * kw)
        out_mat = matmul.matmul_xwt(cols_mat)  # (N*oh*ow, c_out), scipy-allocated
        if workspace is not None:
            out_data = workspace.get("out", (n, c_out, out_h, out_w), np.float32)
            if out_mat.flags.f_contiguous and not out_mat.flags.c_contiguous:
                # scipy's dense@sparse product is Fortran-ordered; its
                # transpose is then a free C-ordered view to reshape from.
                src = out_mat.T.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3)
            else:
                src = out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
            np.copyto(out_data, src)
            if bias is not None:
                np.add(out_data, bias.data.reshape(1, c_out, 1, 1), out=out_data)
        else:
            out_data = np.ascontiguousarray(out_mat).reshape(n, out_h, out_w, c_out)
            out_data = out_data.transpose(0, 3, 1, 2)
            if bias is not None:
                out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray) -> None:
            grad_mat = _stage_grad_mat(grad, n, out_h, out_w, c_out, workspace)
            if weight.requires_grad:
                # Dense by design: growth rules score inactive weights too.
                _accumulate_grad_w(weight, grad_mat, cols_mat, workspace)
            if x.requires_grad:
                # matmul_gw returns scipy's F-ordered product; _col2im needs a
                # C-contiguous 6-D view, so stage the transpose copy into the
                # workspace instead of allocating it fresh every step.
                grad_cols_mat = matmul.matmul_gw(grad_mat)
                if workspace is not None:
                    grad_cols = workspace.get(
                        "csr_grad_cols", grad_cols_mat.shape, np.float32
                    )
                    np.copyto(grad_cols, grad_cols_mat)
                else:
                    # reprolint: disable-next=RPL005
                    grad_cols = np.ascontiguousarray(grad_cols_mat)
                grad_cols = grad_cols.reshape(n, out_h, out_w, c_in, kh, kw)
                x._accumulate(
                    _col2im(
                        grad_cols,
                        padded_shape,
                        kh,
                        kw,
                        stride,
                        padding,
                        x.shape,
                        _input_grad_workspace(x, workspace),
                    )
                )
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))

        return Tensor._make(out_data, parents, backward)

    def _forward_bsr(self, x, data: np.ndarray) -> Tensor:
        """Block-sparse im2col conv: every filter-matrix product keeps the
        sparse operand on the left over transposed C-contiguous stagings.

        Only the transposed cols matrix ``(C*kh*kw, N*oh*ow)`` is staged —
        the weight gradient GEMM consumes its F-contiguous transpose view
        directly (BLAS handles the flag), so the untransposed copy the CSR
        path makes is never materialized.
        """
        module = self.module
        weight = module.weight
        bias = module.bias
        matmul = self._bsr()
        c_out, c_in, kh, kw = weight.shape
        ckk = c_in * kh * kw
        stride = _pair(module.stride)
        padding = _pair(module.padding)
        workspace = getattr(module, "workspace", None)
        matmul.sync(weight.data.reshape(-1), self.target)

        cols, padded_shape, out_h, out_w = _im2col(data, kh, kw, stride, padding, workspace)
        n = data.shape[0]
        m = n * out_h * out_w
        cols_t = matmul.buffer("colsT", (ckk, m))
        np.copyto(
            cols_t.reshape(c_in, kh, kw, n, out_h, out_w),
            cols.transpose(3, 4, 5, 0, 1, 2),
        )
        out_t = matmul.matmul_wx(
            cols_t, None if bias is None else bias.data
        )  # (c_out, N*oh*ow) C-contiguous
        src = out_t.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3)
        if workspace is not None:
            out_data = workspace.get("out", (n, c_out, out_h, out_w), np.float32)
            np.copyto(out_data, src)
        else:
            out_data = np.ascontiguousarray(src)

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray) -> None:
            grad_mat_t = matmul.buffer("gradT", (c_out, m))
            np.copyto(grad_mat_t.reshape(c_out, n, out_h, out_w), grad.transpose(1, 0, 2, 3))
            if weight.requires_grad:
                if self.target.dense_grads_required:
                    # Dense at update steps: growth scores inactive weights.
                    _accumulate_grad_w(weight, grad_mat_t.T, cols_t.T, workspace)
                else:
                    grad_w = _zeroed_grad_w(weight, workspace, matmul)
                    matmul.scatter_grad_w(grad_mat_t, cols_t, grad_w)
                    weight._accumulate(grad_w)
            if x.requires_grad:
                grad_cols_t = matmul.matmul_wtg(grad_mat_t)  # (ckk, N*oh*ow)
                x._accumulate(
                    _col2im_t(
                        grad_cols_t.reshape(c_in, kh, kw, n, out_h, out_w),
                        padded_shape,
                        kh,
                        kw,
                        stride,
                        padding,
                        x.shape,
                        _input_grad_workspace(x, workspace),
                    )
                )
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))

        return Tensor._make(out_data, parents, backward)


def install_training_backends(
    masked: MaskedModel,
    mode: str | None = None,
    density_threshold: float | None = None,
    min_size: int | None = None,
) -> dict[str, str]:
    """Attach kernel backends to every masked Linear/Conv2d of ``masked``.

    Returns the per-layer backend choice at install time (dispatch is
    re-evaluated automatically whenever a layer's mask changes).  With
    ``mode="dense"`` any previously installed backends are removed.
    """
    resolved = resolve_mode(mode)
    by_param = {id(t.param): t for t in masked.targets}
    report: dict[str, str] = {}
    for _, module in masked.model.named_modules():
        if not isinstance(module, (nn.Linear, nn.Conv2d)):
            continue
        target = by_param.get(id(module.weight))
        if target is None:
            continue
        if resolved == "dense":
            module.forward_backend = None
            report[target.name] = "dense"
            continue
        kernel_cls = LinearKernel if isinstance(module, nn.Linear) else Conv2dKernel
        module.forward_backend = kernel_cls(module, target, resolved, density_threshold, min_size)
        report[target.name] = module.forward_backend.backend()
    return report


def remove_training_backends(model) -> None:
    """Detach any kernel backends installed on ``model``'s layers."""
    for module in model.modules():
        if isinstance(module, (nn.Linear, nn.Conv2d)):
            module.forward_backend = None
