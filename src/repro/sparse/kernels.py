"""Training-time sparse kernel backends for masked Linear/Conv2d layers.

The drop-and-grow engine keeps masks as dense booleans, but at the paper's
90–98% sparsities the *compute* should exploit the sparse structure too
(RigL and the Graphcore dynamic-sparsity stack both make this point).  This
module provides that compute path for **training**:

* :class:`CsrMatmul` — a mask-structured CSR form of one 2-D weight view.
  The structure (``indices``/``indptr`` plus the value-gather permutations)
  is rebuilt only when the owning layer's ``mask_version`` changes, i.e.
  only for layers whose masks actually moved in a drop-and-grow round;
  values are refreshed from the dense parameter by a single ``np.take``
  into the preallocated CSR ``data`` arrays — no per-step allocation.
* :class:`LinearKernel` / :class:`Conv2dKernel` — backend objects installed
  on ``module.forward_backend`` (see :mod:`repro.nn.linear` /
  :mod:`repro.nn.conv`).  They run the masked forward through scipy CSR
  matmuls and register an autograd closure whose input gradient also uses
  the CSR structure.  The **weight** gradient stays dense — growth rules
  (RigL, DST-EE, SNFS) score *inactive* weights by dense-gradient
  magnitude, so the dense GEMM ``gradᵀ @ x`` is part of the algorithm, not
  overhead.
* A dispatch layer: per layer, ``dense`` vs ``csr`` is auto-selected from
  the layer's density and size; the mode and thresholds are overridable per
  call or process-wide via environment variables.

Both matmul orientations use the documented ``dense @ sparse`` product with
a *stored transposed structure* (``W`` and ``W.T`` share their nnz values
through two cached gather permutations), so neither direction pays the
double-transpose copy that a naive ``(csr @ x.T).T`` incurs.  The outputs
are Fortran-contiguous, which makes chained sparse layers copy-free: the
next layer's ``x.T`` ravel is then already C-ordered.

Environment overrides
---------------------
``REPRO_SPARSE_BACKEND``            ``auto`` (default) / ``dense`` / ``csr``
``REPRO_SPARSE_DENSITY_THRESHOLD``  density at/below which ``auto`` picks CSR
``REPRO_SPARSE_MIN_SIZE``           minimum weight size for the CSR backend
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.autograd.conv import (
    _accumulate_grad_w,
    _col2im,
    _contiguous_cols,
    _im2col,
    _input_grad_workspace,
    _pair,
    _stage_grad_mat,
)
from repro.autograd.tensor import Tensor, ensure_tensor
from repro.sparse.masked import MaskedModel, SparseParam

__all__ = [
    "BACKEND_ENV",
    "DENSITY_THRESHOLD_ENV",
    "MIN_SIZE_ENV",
    "DEFAULT_DENSITY_THRESHOLD",
    "DEFAULT_MIN_SIZE",
    "CsrMatmul",
    "LinearKernel",
    "Conv2dKernel",
    "resolve_mode",
    "select_backend",
    "install_training_backends",
    "remove_training_backends",
]

BACKEND_ENV = "REPRO_SPARSE_BACKEND"
DENSITY_THRESHOLD_ENV = "REPRO_SPARSE_DENSITY_THRESHOLD"
MIN_SIZE_ENV = "REPRO_SPARSE_MIN_SIZE"

# On this CPU the scipy CSR kernels run ~7x fewer effective FLOP/s than the
# dense BLAS GEMM, so CSR wins once it does ~7x less work; 0.12 leaves some
# margin (90/95/98% sparsity -> CSR, 80% -> dense).  See docs/performance.md.
DEFAULT_DENSITY_THRESHOLD = 0.12
# Below this weight size the per-call overhead dominates; stay dense.
DEFAULT_MIN_SIZE = 16384

_MODES = ("auto", "dense", "csr")


def resolve_mode(mode: str | None = None) -> str:
    """Explicit argument > ``REPRO_SPARSE_BACKEND`` env var > ``auto``."""
    resolved = mode if mode is not None else os.environ.get(BACKEND_ENV, "auto")
    resolved = resolved.lower()
    if resolved not in _MODES:
        raise ValueError(f"unknown sparse backend {resolved!r}; choose from {_MODES}")
    return resolved


def _float_env(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return default if raw is None else float(raw)


def select_backend(
    density: float,
    size: int,
    mode: str = "auto",
    density_threshold: float | None = None,
    min_size: int | None = None,
) -> str:
    """Pick ``"dense"`` or ``"csr"`` for one layer."""
    if mode in ("dense", "csr"):
        return mode
    if density_threshold is None:
        density_threshold = _float_env(DENSITY_THRESHOLD_ENV, DEFAULT_DENSITY_THRESHOLD)
    if min_size is None:
        min_size = int(_float_env(MIN_SIZE_ENV, DEFAULT_MIN_SIZE))
    if size >= min_size and density <= density_threshold:
        return "csr"
    return "dense"


class CsrMatmul:
    """CSR (and transposed CSR) form of a 2-D weight view, mask-structured.

    ``sync`` refreshes the nnz values from the flat dense weight on every
    call (one cached gather per orientation) and rebuilds the index
    structure only when ``version`` changed since the last sync.
    """

    def __init__(self, shape2d: tuple[int, int]):
        self.shape2d = (int(shape2d[0]), int(shape2d[1]))
        self._version = -1
        self.csr: sp.csr_matrix | None = None  # W      (rows, cols)
        self.csr_t: sp.csr_matrix | None = None  # W.T  (cols, rows)
        self._gather: np.ndarray | None = None
        self._perm_t: np.ndarray | None = None

    @property
    def structure_version(self) -> int:
        """Mask version the current index structure was built from."""
        return self._version

    @classmethod
    def from_parts(
        cls,
        shape2d: tuple[int, int],
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        copy: bool = False,
    ) -> "CsrMatmul":
        """Frozen matmul pair rebuilt from stored CSR components.

        Serving-artifact round-trip hook (:mod:`repro.serve.artifact`): the
        exported ``(data, indices, indptr)`` of ``W`` come back as a ready
        :class:`CsrMatmul` whose transposed structure is derived once at
        load time.  With ``copy=False`` the forward matrix aliases the
        caller's arrays (e.g. views into a shared-memory weight arena), so
        N serving workers can share one read-only copy of the weights.

        The result is inference-frozen: :meth:`sync` would rebuild the
        structure from a mask and must not be called on it.
        """
        matmul = cls(shape2d)
        data = np.asarray(data, dtype=np.float32)
        indices = np.asarray(indices, dtype=np.int32)
        indptr = np.asarray(indptr, dtype=np.int32)
        if copy:
            data, indices, indptr = data.copy(), indices.copy(), indptr.copy()
        # Build an empty matrix and attach the arrays by attribute: the
        # component-triplet constructor canonicalizes (and therefore copies),
        # which would break aliasing into a shared-memory arena.
        matmul.csr = sp.csr_matrix(matmul.shape2d, dtype=np.float32)
        matmul.csr.data = data
        matmul.csr.indices = indices
        matmul.csr.indptr = indptr
        matmul.csr_t = matmul.csr.T.tocsr()
        for matrix in (matmul.csr, matmul.csr_t):
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True
        matmul._version = 0
        return matmul

    def sync(self, flat_values: np.ndarray, active_idx: np.ndarray, version: int) -> None:
        if version != self._version:
            self._rebuild(active_idx)
            self._version = version
        np.take(flat_values, self._gather, out=self.csr.data)
        # The transposed values are a permutation of the ones just gathered;
        # permuting the nnz-sized buffer stays cache-resident, unlike a
        # second strided gather from the full dense weight.
        np.take(self.csr.data, self._perm_t, out=self.csr_t.data)

    def _rebuild(self, active_idx: np.ndarray) -> None:
        n_rows, n_cols = self.shape2d
        rows, cols = np.divmod(active_idx, n_cols)
        nnz = int(active_idx.size)

        indptr = np.zeros(n_rows + 1, dtype=np.int32)
        np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
        self.csr = sp.csr_matrix(
            (np.empty(nnz, dtype=np.float32), cols.astype(np.int32), indptr),
            shape=self.shape2d,
        )
        self._gather = active_idx

        # Transposed structure: the same nnz set ordered by (col, row).
        order = np.lexsort((rows, cols))
        t_indptr = np.zeros(n_cols + 1, dtype=np.int32)
        np.cumsum(np.bincount(cols, minlength=n_cols), out=t_indptr[1:])
        self.csr_t = sp.csr_matrix(
            (np.empty(nnz, dtype=np.float32), rows[order].astype(np.int32), t_indptr),
            shape=(n_cols, n_rows),
        )
        self._perm_t = order

        for matrix in (self.csr, self.csr_t):
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True

    # Both products keep the sparse operand on the left internally (scipy's
    # fast path) by routing through the pre-transposed structure.
    def matmul_xwt(self, x2d: np.ndarray) -> np.ndarray:
        """``x @ W.T`` for row-major ``x`` of shape (N, cols) -> (N, rows)."""
        return np.asarray(x2d @ self.csr_t)

    def matmul_gw(self, g2d: np.ndarray) -> np.ndarray:
        """``g @ W`` for row-major ``g`` of shape (N, rows) -> (N, cols)."""
        return np.asarray(g2d @ self.csr)


class _KernelBase:
    """Shared dispatch logic: re-evaluate dense-vs-CSR when the mask moves."""

    def __init__(self, module, target: SparseParam, mode: str,
                 density_threshold: float | None, min_size: int | None):
        self.module = module
        self.target = target
        self.mode = mode
        self.density_threshold = density_threshold
        self.min_size = min_size
        self._choice = "dense"
        self._choice_version = -1

    def backend(self) -> str:
        target = self.target
        if target.mask_version != self._choice_version:
            self._choice = select_backend(
                target.density, target.size, self.mode,
                self.density_threshold, self.min_size,
            )
            self._choice_version = target.mask_version
        return self._choice


class LinearKernel(_KernelBase):
    """CSR-backed training forward for a masked :class:`~repro.nn.Linear`.

    Returns ``None`` (declining the call, so the module falls back to its
    dense path) when dispatch picks dense or the input is unsupported.
    """

    def __init__(self, module, target, mode="auto",
                 density_threshold=None, min_size=None):
        super().__init__(module, target, mode, density_threshold, min_size)
        self.matmul = CsrMatmul(module.weight.shape)

    def __call__(self, x) -> Tensor | None:
        if self.backend() != "csr":
            return None
        x = ensure_tensor(x)
        data = x.data
        if data.ndim != 2 or data.dtype != np.float32:
            return None
        weight = self.module.weight
        bias = self.module.bias
        target = self.target
        matmul = self.matmul
        matmul.sync(weight.data.reshape(-1), target.active_indices, target.mask_version)

        out = matmul.matmul_xwt(data)
        if bias is not None:
            np.add(out, bias.data, out=out)

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray) -> None:
            if weight.requires_grad:
                # Dense by design: growth rules score inactive weights too.
                weight._accumulate(grad.T @ data)
            if x.requires_grad:
                x._accumulate(matmul.matmul_gw(grad))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=0))

        return Tensor._make(out, parents, backward)


class Conv2dKernel(_KernelBase):
    """CSR-backed training forward for a masked :class:`~repro.nn.Conv2d`.

    Lowers to im2col exactly like :func:`repro.autograd.conv.conv2d`, but
    the filter-matrix products (forward and input-gradient) run on the
    mask-structured CSR matrices.
    """

    def __init__(self, module, target, mode="auto",
                 density_threshold=None, min_size=None):
        super().__init__(module, target, mode, density_threshold, min_size)
        c_out, c_in, kh, kw = module.weight.shape
        self.matmul = CsrMatmul((c_out, c_in * kh * kw))

    def __call__(self, x) -> Tensor | None:
        if self.backend() != "csr":
            return None
        x = ensure_tensor(x)
        data = x.data
        if data.ndim != 4 or data.dtype != np.float32:
            return None
        module = self.module
        weight = module.weight
        bias = module.bias
        target = self.target
        matmul = self.matmul
        c_out, c_in, kh, kw = weight.shape
        if data.shape[1] != c_in:
            raise ValueError(
                f"conv2d channel mismatch: input has {data.shape[1]}, weight expects {c_in}"
            )
        stride = _pair(module.stride)
        padding = _pair(module.padding)
        # The module's ConvWorkspace is shared with the dense path: only one
        # path runs per call and both use the same buffer shapes, so flips
        # of the density-based dispatch never grow the cache.
        workspace = getattr(module, "workspace", None)
        matmul.sync(weight.data.reshape(-1), target.active_indices, target.mask_version)

        cols, padded_shape, out_h, out_w = _im2col(data, kh, kw, stride, padding, workspace)
        n = data.shape[0]
        cols_mat = _contiguous_cols(cols, workspace).reshape(
            n * out_h * out_w, c_in * kh * kw
        )
        out_mat = matmul.matmul_xwt(cols_mat)  # (N*oh*ow, c_out), scipy-allocated
        if workspace is not None:
            out_data = workspace.get("out", (n, c_out, out_h, out_w), np.float32)
            if out_mat.flags.f_contiguous and not out_mat.flags.c_contiguous:
                # scipy's dense@sparse product is Fortran-ordered; its
                # transpose is then a free C-ordered view to reshape from.
                src = out_mat.T.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3)
            else:
                src = out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
            np.copyto(out_data, src)
            if bias is not None:
                np.add(out_data, bias.data.reshape(1, c_out, 1, 1), out=out_data)
        else:
            out_data = np.ascontiguousarray(out_mat).reshape(n, out_h, out_w, c_out)
            out_data = out_data.transpose(0, 3, 1, 2)
            if bias is not None:
                out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray) -> None:
            grad_mat = _stage_grad_mat(grad, n, out_h, out_w, c_out, workspace)
            if weight.requires_grad:
                # Dense by design: growth rules score inactive weights too.
                _accumulate_grad_w(weight, grad_mat, cols_mat, workspace)
            if x.requires_grad:
                grad_cols = np.ascontiguousarray(matmul.matmul_gw(grad_mat))
                grad_cols = grad_cols.reshape(n, out_h, out_w, c_in, kh, kw)
                x._accumulate(
                    _col2im(
                        grad_cols, padded_shape, kh, kw, stride, padding, x.shape,
                        _input_grad_workspace(x, workspace),
                    )
                )
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))

        return Tensor._make(out_data, parents, backward)


def install_training_backends(
    masked: MaskedModel,
    mode: str | None = None,
    density_threshold: float | None = None,
    min_size: int | None = None,
) -> dict[str, str]:
    """Attach kernel backends to every masked Linear/Conv2d of ``masked``.

    Returns the per-layer backend choice at install time (dispatch is
    re-evaluated automatically whenever a layer's mask changes).  With
    ``mode="dense"`` any previously installed backends are removed.
    """
    resolved = resolve_mode(mode)
    by_param = {id(t.param): t for t in masked.targets}
    report: dict[str, str] = {}
    for _, module in masked.model.named_modules():
        if not isinstance(module, (nn.Linear, nn.Conv2d)):
            continue
        target = by_param.get(id(module.weight))
        if target is None:
            continue
        if resolved == "dense":
            module.forward_backend = None
            report[target.name] = "dense"
            continue
        kernel_cls = LinearKernel if isinstance(module, nn.Linear) else Conv2dKernel
        module.forward_backend = kernel_cls(
            module, target, resolved, density_threshold, min_size
        )
        report[target.name] = module.forward_backend.backend()
    return report


def remove_training_backends(model) -> None:
    """Detach any kernel backends installed on ``model``'s layers."""
    for module in model.modules():
        if isinstance(module, (nn.Linear, nn.Conv2d)):
            module.forward_backend = None
