"""Save / load sparse checkpoints (weights + masks + coverage counters).

A sparse checkpoint stores everything needed to resume dynamic sparse
training or to deploy the final sparse model:

* all model parameters and buffers (``model.state_dict()``),
* the boolean mask of every sparsified layer,
* optionally the coverage counters ``N`` (so DST-EE's exploration state
  survives a restart).

The file format is a single compressed ``.npz``.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.nn.module import Module
from repro.sparse.counter import CoverageTracker
from repro.sparse.masked import MaskedModel

__all__ = ["save_sparse_checkpoint", "load_sparse_checkpoint"]

_PARAM_PREFIX = "param::"
_MASK_PREFIX = "mask::"
_COUNTER_PREFIX = "counter::"
_EVER_PREFIX = "ever::"
_META_SPARSITY = "meta::sparsity"
_META_ROUNDS = "meta::rounds"


def save_sparse_checkpoint(
    masked: MaskedModel,
    path,
    coverage: CoverageTracker | None = None,
) -> None:
    """Write model state + masks (+ optional coverage) to ``path`` (.npz)."""
    payload: dict[str, np.ndarray] = {}
    for name, value in masked.model.state_dict().items():
        payload[_PARAM_PREFIX + name] = value
    for target in masked.targets:
        payload[_MASK_PREFIX + target.name] = target.mask
    payload[_META_SPARSITY] = np.array(masked.sparsity)
    if coverage is not None:
        for name, counter in coverage.counters.items():
            payload[_COUNTER_PREFIX + name] = counter
        for name, ever in coverage.ever_active.items():
            payload[_EVER_PREFIX + name] = ever
        payload[_META_ROUNDS] = np.array(coverage.rounds)
    np.savez_compressed(pathlib.Path(path), **payload)


def load_sparse_checkpoint(
    model: Module,
    path,
    include_modules=None,
) -> tuple[MaskedModel, CoverageTracker | None]:
    """Restore a sparse checkpoint into ``model``.

    Returns a :class:`MaskedModel` wrapping the restored masks and, when the
    checkpoint contains coverage state, a restored
    :class:`CoverageTracker` (otherwise None).
    """
    # Context-managed: an unclosed NpzFile keeps the file handle (and its
    # mmap) alive, and the leaks accumulate across sweep cells.
    with np.load(pathlib.Path(path)) as archive:
        state = {
            key[len(_PARAM_PREFIX):]: archive[key]
            for key in archive.files
            if key.startswith(_PARAM_PREFIX)
        }
        model.load_state_dict(state)
        masks = {
            key[len(_MASK_PREFIX):]: archive[key].astype(bool)
            for key in archive.files
            if key.startswith(_MASK_PREFIX)
        }
        sparsity = float(archive[_META_SPARSITY])
        masked = MaskedModel(model, sparsity, masks=masks, include_modules=include_modules)

        coverage = None
        counter_keys = [key for key in archive.files if key.startswith(_COUNTER_PREFIX)]
        if counter_keys:
            coverage = CoverageTracker(masked)
            for key in counter_keys:
                name = key[len(_COUNTER_PREFIX):]
                coverage.counters[name] = archive[key].astype(np.float32)
            for key in archive.files:
                if key.startswith(_EVER_PREFIX):
                    name = key[len(_EVER_PREFIX):]
                    coverage.ever_active[name] = archive[key].astype(bool)
            coverage.rounds = int(archive[_META_ROUNDS])
            coverage.recount()
    return masked, coverage
