"""Sparse training: the paper's DST-EE algorithm and every compared baseline.

Quick start::

    from repro import nn, optim
    from repro.sparse import MaskedModel, DynamicSparseEngine, DSTEEGrowth

    masked = MaskedModel(model, sparsity=0.9, distribution="erk")
    opt = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
    engine = DynamicSparseEngine(
        masked, DSTEEGrowth(c=1e-3), total_steps=total,
        delta_t=100, optimizer=opt,
    )

and pass ``engine`` to :class:`repro.train.Trainer`.
"""

from repro.sparse.blocks import BlockMask, MatrixBlockIndexer, expand_block_csr
from repro.sparse.budget import DensityBudget, assign_target_density
from repro.sparse.masked import MaskedModel, SparseParam, collect_sparsifiable
from repro.sparse.distribution import (
    erdos_renyi,
    erdos_renyi_kernel,
    layer_densities,
    uniform_density,
    validate_block_quantization,
)
from repro.sparse.counter import CoverageTracker
from repro.sparse.scoring import acquisition_score, exploitation_score, exploration_score
from repro.sparse.schedule import (
    ConstantSchedule,
    CosineDecaySchedule,
    LinearDecaySchedule,
    TrainingSchedule,
    UpdateSchedule,
    make_drop_schedule,
)
from repro.sparse.balance import DensityBalanceController, GradientMassRebalancer
from repro.sparse.growers import (
    DSTEEGrowth,
    GradientGrowth,
    LayerContext,
    MagnitudeDrop,
    MagnitudeGradientDrop,
    MomentumGrowth,
    RandomGrowth,
    SignFlipDrop,
)
from repro.sparse.engine import (
    DynamicSparseEngine,
    FixedMaskController,
    SparsityController,
)
from repro.sparse.static import global_topk_masks, grasp_masks, snip_masks, synflow_masks
from repro.sparse.gmp import GMPController, cubic_sparsity
from repro.sparse.str_prune import STRController
from repro.sparse.admm import ADMMPruner, project_topk
from repro.sparse.io import load_sparse_checkpoint, save_sparse_checkpoint
from repro.sparse.gap import GaPController
from repro.sparse.inference import (
    BlockSparseConv2d,
    BlockSparseLinear,
    SparseConv2d,
    SparseLinear,
    compile_sparse_model,
    sparse_storage_bytes,
)
from repro.sparse.kernels import (
    BsrMatmul,
    CsrMatmul,
    install_training_backends,
    remove_training_backends,
    select_backend,
)

__all__ = [
    "BlockMask",
    "MatrixBlockIndexer",
    "expand_block_csr",
    "MaskedModel",
    "SparseParam",
    "collect_sparsifiable",
    "DensityBudget",
    "assign_target_density",
    "uniform_density",
    "erdos_renyi",
    "erdos_renyi_kernel",
    "layer_densities",
    "validate_block_quantization",
    "CoverageTracker",
    "acquisition_score",
    "exploitation_score",
    "exploration_score",
    "ConstantSchedule",
    "CosineDecaySchedule",
    "LinearDecaySchedule",
    "TrainingSchedule",
    "UpdateSchedule",
    "make_drop_schedule",
    "DensityBalanceController",
    "GradientMassRebalancer",
    "LayerContext",
    "RandomGrowth",
    "GradientGrowth",
    "DSTEEGrowth",
    "MomentumGrowth",
    "MagnitudeDrop",
    "MagnitudeGradientDrop",
    "SignFlipDrop",
    "SparsityController",
    "FixedMaskController",
    "DynamicSparseEngine",
    "snip_masks",
    "grasp_masks",
    "synflow_masks",
    "global_topk_masks",
    "GMPController",
    "cubic_sparsity",
    "STRController",
    "ADMMPruner",
    "project_topk",
    "save_sparse_checkpoint",
    "load_sparse_checkpoint",
    "GaPController",
    "SparseLinear",
    "SparseConv2d",
    "BlockSparseLinear",
    "BlockSparseConv2d",
    "compile_sparse_model",
    "sparse_storage_bytes",
    "CsrMatmul",
    "BsrMatmul",
    "install_training_backends",
    "remove_training_backends",
    "select_backend",
]
