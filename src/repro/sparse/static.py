"""Pruning-at-initialization baselines: SNIP, GraSP, SynFlow.

These compute per-weight saliency on the *dense* network at initialization
and keep the globally top-ranked fraction; the resulting masks stay fixed
for the rest of training (:class:`~repro.sparse.engine.FixedMaskController`).

All three return ``{parameter_name: bool mask}`` dictionaries suitable for
``MaskedModel(..., masks=...)``.

Implementation notes
--------------------
* **SNIP** (Lee et al., ICLR'19): saliency ``|g ⊙ w|`` from one (or a few)
  mini-batches.
* **GraSP** (Wang et al., ICLR'20): saliency ``-w ⊙ (H g)``.  The
  Hessian-gradient product is computed with a central finite difference of
  gradients (the autograd engine is first-order only); keeping the *lowest*
  scores preserves gradient flow, matching the official implementation.
* **SynFlow** (Tanaka et al., NeurIPS'20): data-free iterative synaptic
  flow.  Weights are replaced by their absolute values, the input is
  all-ones, the objective is the sum of outputs, and pruning proceeds over
  ``rounds`` rounds with an exponential sparsity schedule.  BatchNorm runs
  in eval mode so the flow stays positive.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.sparse.budget import DensityBudget
from repro.sparse.masked import collect_sparsifiable

__all__ = ["snip_masks", "grasp_masks", "synflow_masks", "global_topk_masks"]


def global_topk_masks(
    scores: dict[str, np.ndarray],
    density: float | None = None,
    keep: str = "largest",
    budget: DensityBudget | None = None,
) -> dict[str, np.ndarray]:
    """Keep the global top (or bottom) ``density`` fraction across all layers.

    Instead of a float ``density``, a :class:`DensityBudget` may be passed:
    exactly ``budget.total`` weights are kept (the global count, not a
    rounded fraction), so masks built here line up element-for-element with
    the budget a controller will later enforce.  Guarantees at least one
    active weight per layer so no layer is severed.
    """
    names = list(scores)
    flat = np.concatenate([scores[n].reshape(-1) for n in names])
    if budget is not None:
        if density is not None:
            raise ValueError("pass either density or budget, not both")
        if budget.capacity != flat.size:
            raise ValueError(
                f"budget capacity {budget.capacity} does not match "
                f"{flat.size} scored weights"
            )
        k = max(1, budget.total)
    else:
        if density is None or not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        k = max(1, int(round(density * flat.size)))
    ranked = flat if keep == "largest" else -flat
    threshold_idx = np.argpartition(-ranked, k - 1)[:k]
    chosen = np.zeros(flat.size, dtype=bool)
    chosen[threshold_idx] = True
    masks: dict[str, np.ndarray] = {}
    offset = 0
    for name in names:
        size = scores[name].size
        layer_mask = chosen[offset : offset + size].reshape(scores[name].shape)
        if not layer_mask.any():
            # Never sever a layer completely: keep its single best weight.
            best = np.argmax(ranked[offset : offset + size])
            layer_mask.reshape(-1)[best] = True
        masks[name] = layer_mask
        offset += size
    return masks


def _accumulate_gradients(
    model: Module,
    loss_fn: Callable,
    batches: Iterable,
    targets: Sequence[tuple[str, object]],
) -> dict[str, np.ndarray]:
    """Sum of parameter gradients over the given batches."""
    grads = {name: np.zeros(param.shape, dtype=np.float64) for name, param in targets}
    n = 0
    for inputs, labels in batches:
        model.zero_grad()
        loss = loss_fn(model(inputs), labels)
        loss.backward()
        for name, param in targets:
            if param.grad is not None:
                grads[name] += param.grad
        n += 1
    if n == 0:
        raise ValueError("no batches provided for saliency computation")
    for name in grads:
        grads[name] /= n
    return grads


def snip_masks(
    model: Module,
    loss_fn: Callable,
    batches: Iterable,
    sparsity: float,
    include_modules: Sequence[Module] | None = None,
) -> dict[str, np.ndarray]:
    """SNIP: keep the weights with the largest ``|g ⊙ w|`` saliency."""
    targets = collect_sparsifiable(model, include_modules)
    grads = _accumulate_gradients(model, loss_fn, batches, targets)
    scores = {name: np.abs(grads[name] * param.data) for name, param in targets}
    return global_topk_masks(scores, density=1.0 - sparsity, keep="largest")


def grasp_masks(
    model: Module,
    loss_fn: Callable,
    batches: Iterable,
    sparsity: float,
    include_modules: Sequence[Module] | None = None,
    fd_eps: float = 1e-2,
) -> dict[str, np.ndarray]:
    """GraSP: keep the weights that preserve gradient flow (lowest ``w·Hg``).

    The Hessian-gradient product is approximated by the central finite
    difference ``Hg ≈ (∇L(w + δĝ) − ∇L(w − δĝ)) / 2δ`` with
    ``δ = fd_eps / ‖g‖``.
    """
    targets = collect_sparsifiable(model, include_modules)
    batch_list = list(batches)
    base_grads = _accumulate_gradients(model, loss_fn, batch_list, targets)
    grad_norm = np.sqrt(sum(float((g**2).sum()) for g in base_grads.values()))
    delta = fd_eps / max(grad_norm, 1e-12)

    originals = {name: param.data.copy() for name, param in targets}

    def perturb(sign: float) -> dict[str, np.ndarray]:
        for name, param in targets:
            param.data = (originals[name] + sign * delta * base_grads[name]).astype(param.dtype)
        return _accumulate_gradients(model, loss_fn, batch_list, targets)

    plus = perturb(+1.0)
    minus = perturb(-1.0)
    for name, param in targets:  # restore
        param.data = originals[name]

    scores: dict[str, np.ndarray] = {}
    for name, param in targets:
        hvp = (plus[name] - minus[name]) / (2.0 * delta)
        scores[name] = param.data.astype(np.float64) * hvp
    # GraSP removes the weights with the *highest* w·Hg score.
    return global_topk_masks(scores, density=1.0 - sparsity, keep="smallest")


def synflow_masks(
    model: Module,
    input_shape: tuple[int, ...],
    sparsity: float,
    include_modules: Sequence[Module] | None = None,
    rounds: int = 20,
) -> dict[str, np.ndarray]:
    """SynFlow: data-free iterative synaptic-flow pruning.

    ``input_shape`` excludes the batch dimension (a single all-ones example
    is used).  ``rounds`` controls the exponential schedule granularity
    (the original paper uses 100; 20 is accurate enough at these scales and
    noted in EXPERIMENTS.md).
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    targets = collect_sparsifiable(model, include_modules)
    originals = {name: param.data.copy() for name, param in targets}
    was_training = model.training
    model.eval()  # BatchNorm must use running stats for positive flow

    target_density = 1.0 - sparsity
    masks = {name: np.ones(param.shape, dtype=bool) for name, param in targets}
    ones_input = Tensor(np.ones((1,) + tuple(input_shape), dtype=np.float32))

    try:
        for round_index in range(1, rounds + 1):
            density = target_density ** (round_index / rounds)
            # Linearize: replace weights by |w| under the current mask.
            for name, param in targets:
                param.data = (np.abs(originals[name]) * masks[name]).astype(param.dtype)
            model.zero_grad()
            out = model(ones_input)
            flow = out.sum()
            flow.backward()
            scores = {}
            for name, param in targets:
                grad = param.grad if param.grad is not None else np.zeros(param.shape)
                layer_scores = np.abs(param.data * grad)
                # Already-pruned weights must stay pruned.
                layer_scores[~masks[name]] = -np.inf
                scores[name] = layer_scores
            masks = global_topk_masks(scores, density=density, keep="largest")
    finally:
        for name, param in targets:
            param.data = originals[name]
        model.train(was_training)
    return masks
