"""Mini-batch loader with optional shuffling and batch transforms."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.dataset import ArrayDataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate a dataset in mini-batches of ``(Tensor inputs, ndarray targets)``.

    Parameters
    ----------
    dataset:
        The :class:`~repro.data.dataset.ArrayDataset` to iterate.
    batch_size:
        Examples per batch; the final short batch is kept (no dropping) unless
        ``drop_last=True``.
    shuffle:
        Reshuffle example order at the start of every epoch.
    transform:
        Optional callable ``(batch_inputs, rng) -> batch_inputs`` applied to
        each input batch (data augmentation).
    rng:
        Generator driving shuffling and transforms; pass one for reproducible
        epochs.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 128,
        shuffle: bool = False,
        transform: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.transform = transform
        self.rng = rng if rng is not None else np.random.default_rng()
        self.drop_last = bool(drop_last)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[Tensor, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            batch_x = self.dataset.inputs[idx]
            batch_y = self.dataset.targets[idx]
            if self.transform is not None:
                batch_x = self.transform(batch_x, self.rng)
            yield Tensor(np.ascontiguousarray(batch_x)), batch_y
