"""Mini-batch loader with optional shuffling, transforms, and prefetching."""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterator

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.dataset import ArrayDataset
from repro.rng import resolve_rng

__all__ = ["DataLoader"]


class _PrefetchIterator:
    """Consume batches produced by a background thread.

    The producer runs the exact serial batch pipeline (shuffle, indexing,
    transform) on a bounded queue, so batch *contents and order* are
    bitwise identical to ``prefetch=0`` — only the overlap with the
    training step changes.  Producer exceptions are re-raised at the
    consumer's next ``__next__``.  :meth:`close` stops the producer and
    *joins* it, so a closed iterator can never race a successor for the
    loader's shared RNG; abandoning an epoch mid-way does advance that RNG
    by the (bounded) prefetched batches, unlike ``prefetch=0``.
    """

    _DONE = object()

    def __init__(self, source: Iterator, depth: int):
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._finished = False
        self._thread = threading.Thread(
            target=self._produce, args=(source,), daemon=True
        )
        self._thread.start()

    def _produce(self, source: Iterator) -> None:
        try:
            for item in source:
                while not self._stop.is_set():
                    try:
                        self._queue.put(("item", item), timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if self._stop.is_set():
                    return
            payload = ("done", None)
        except BaseException as exc:  # re-raised on the consumer side
            payload = ("error", exc)
        while not self._stop.is_set():
            try:
                self._queue.put(payload, timeout=0.1)
                return
            except queue.Full:
                continue

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self):
        if self._finished:  # iterator protocol: keep raising after the end
            raise StopIteration
        kind, value = self._queue.get()
        if kind == "item":
            return value
        self._finished = True
        self._stop.set()
        if kind == "error":
            raise value
        raise StopIteration

    def close(self) -> None:
        """Stop and join the producer (idempotent).

        Joining matters: a merely-signalled producer could still be inside
        the dataset/RNG pipeline when the next epoch's producer starts on
        the same ``DataLoader``, and ``np.random.Generator`` is not
        thread-safe.
        """
        self._stop.set()
        self._thread.join()

    def __del__(self):  # pragma: no cover - GC safety net
        self._stop.set()


class DataLoader:
    """Iterate a dataset in mini-batches of ``(Tensor inputs, ndarray targets)``.

    Parameters
    ----------
    dataset:
        The :class:`~repro.data.dataset.ArrayDataset` to iterate.
    batch_size:
        Examples per batch; the final short batch is kept (no dropping) unless
        ``drop_last=True``.
    shuffle:
        Reshuffle example order at the start of every epoch.
    transform:
        Optional callable ``(batch_inputs, rng) -> batch_inputs`` applied to
        each input batch (data augmentation).
    rng:
        Generator driving shuffling and transforms; pass one for reproducible
        epochs.
    prefetch:
        When > 0, batches are assembled by a background thread up to
        ``prefetch`` batches ahead, overlapping indexing/augmentation with
        the training step.  Batches are bitwise identical to ``prefetch=0``
        (the producer runs the same pipeline in the same order); default
        off.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 128,
        shuffle: bool = False,
        transform: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
        prefetch: int = 0,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if prefetch < 0:
            raise ValueError(f"prefetch must be >= 0, got {prefetch}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.transform = transform
        self.rng = resolve_rng(rng)
        self.drop_last = bool(drop_last)
        self.prefetch = int(prefetch)
        self._active_prefetch: _PrefetchIterator | None = None

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[Tensor, np.ndarray]]:
        if self.prefetch > 0:
            # An abandoned previous epoch must not keep producing from the
            # shared rng/dataset concurrently with the new one.
            if self._active_prefetch is not None:
                self._active_prefetch.close()
            self._active_prefetch = _PrefetchIterator(
                self._iter_batches(), self.prefetch
            )
            return self._active_prefetch
        return self._iter_batches()

    def _iter_batches(self) -> Iterator[tuple[Tensor, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            batch_x = self.dataset.inputs[idx]
            batch_y = self.dataset.targets[idx]
            if self.transform is not None:
                batch_x = self.transform(batch_x, self.rng)
            yield Tensor(np.ascontiguousarray(batch_x)), batch_y
