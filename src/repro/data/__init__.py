"""Datasets, loaders and augmentation."""

from repro.data.dataset import ArrayDataset, ClassificationData
from repro.data.loader import DataLoader
from repro.data.synthetic import (
    cifar10_like,
    cifar100_like,
    imagenet_like,
    make_image_classification,
)
from repro.data.graphs import (
    LinkPredictionData,
    ia_email_like,
    make_link_prediction_data,
    normalized_adjacency,
    wiki_talk_like,
)
from repro.data.text import (
    ALPHABET,
    CharVocab,
    LMData,
    generate_corpus,
    make_char_lm_data,
)
from repro.data.transforms import Compose, Normalize, RandomCrop, RandomHorizontalFlip

__all__ = [
    "ArrayDataset",
    "ClassificationData",
    "DataLoader",
    "make_image_classification",
    "cifar10_like",
    "cifar100_like",
    "imagenet_like",
    "LinkPredictionData",
    "make_link_prediction_data",
    "normalized_adjacency",
    "wiki_talk_like",
    "ia_email_like",
    "ALPHABET",
    "CharVocab",
    "LMData",
    "generate_corpus",
    "make_char_lm_data",
    "Compose",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
]
