"""Synthetic image-classification datasets standing in for CIFAR / ImageNet.

The paper's experiments run on CIFAR-10/100 and ImageNet, which are not
available offline.  These generators produce *class-prototype Gaussian
mixtures rendered as low-frequency images*: each class owns a smooth random
prototype image, and every example is the prototype under a random contrast,
shift and additive noise.  The task is nonconvex for a CNN, benefits from
capacity, and degrades gracefully with sparsity — which is what the relative
comparisons in Tables I/II exercise.  See DESIGN.md §2 for the substitution
argument.

All generators take an explicit seed and return a
:class:`~repro.data.dataset.ClassificationData`.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset, ClassificationData

__all__ = [
    "make_image_classification",
    "cifar10_like",
    "cifar100_like",
    "imagenet_like",
]


def _smooth_prototypes(
    rng: np.random.Generator,
    n_classes: int,
    channels: int,
    size: int,
    smoothing: float,
) -> np.ndarray:
    """Random low-frequency class prototype images, unit-normalized."""
    protos = rng.standard_normal((n_classes, channels, size, size))
    protos = ndimage.gaussian_filter(protos, sigma=(0, 0, smoothing, smoothing))
    # Standardize each prototype to zero mean / unit per-pixel variance so
    # the additive noise level is directly an inverse SNR.
    flat = protos.reshape(n_classes, -1)
    flat = flat - flat.mean(axis=1, keepdims=True)
    flat = flat / (flat.std(axis=1, keepdims=True) + 1e-12)
    return flat.reshape(n_classes, channels, size, size).astype(np.float32)


def _render_split(
    rng: np.random.Generator,
    prototypes: np.ndarray,
    n_samples: int,
    noise: float,
    max_shift: int,
) -> tuple[np.ndarray, np.ndarray]:
    n_classes, channels, size, _ = prototypes.shape
    labels = rng.integers(0, n_classes, size=n_samples).astype(np.int64)
    images = prototypes[labels].copy()
    # Random per-example contrast and brightness jitter.
    contrast = rng.uniform(0.7, 1.3, size=(n_samples, 1, 1, 1)).astype(np.float32)
    brightness = rng.uniform(-0.1, 0.1, size=(n_samples, 1, 1, 1)).astype(np.float32)
    images = images * contrast + brightness
    # Random spatial shift (cheap stand-in for crop augmentation variation).
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n_samples, 2))
        for i in range(n_samples):
            dy, dx = shifts[i]
            if dy or dx:
                images[i] = np.roll(images[i], (dy, dx), axis=(1, 2))
    images += noise * rng.standard_normal(images.shape).astype(np.float32)
    # Standardize globally so models start from a well-conditioned input.
    images -= images.mean()
    images /= images.std() + 1e-8
    return images.astype(np.float32), labels


def make_image_classification(
    n_classes: int,
    n_train: int,
    n_test: int,
    image_size: int = 12,
    channels: int = 3,
    noise: float = 1.0,
    smoothing: float = 1.5,
    max_shift: int = 1,
    seed: int = 0,
    name: str = "synthetic",
) -> ClassificationData:
    """Build a synthetic image-classification task.

    Parameters
    ----------
    n_classes, n_train, n_test:
        Task size.  Train/test examples are drawn i.i.d. from the same
        class-conditional distribution.
    image_size, channels:
        Spatial size (square) and channel count of the images.
    noise:
        Standard deviation of the additive Gaussian pixel noise relative to
        the unit-norm prototypes; larger values make the task harder.
    smoothing:
        Gaussian-blur sigma for the prototypes (controls how "image-like"
        and spatially correlated the classes are).
    max_shift:
        Maximum random circular shift in pixels, per example.
    seed:
        Seed for everything (prototypes and renders).
    name:
        Dataset identifier used in experiment reports.
    """
    if n_classes < 2:
        raise ValueError(f"need at least 2 classes, got {n_classes}")
    rng = np.random.default_rng(seed)
    prototypes = _smooth_prototypes(rng, n_classes, channels, image_size, smoothing)
    train_x, train_y = _render_split(rng, prototypes, n_train, noise, max_shift)
    test_x, test_y = _render_split(rng, prototypes, n_test, noise, max_shift)
    return ClassificationData(
        train=ArrayDataset(train_x, train_y),
        test=ArrayDataset(test_x, test_y),
        num_classes=n_classes,
        input_shape=(channels, image_size, image_size),
        name=name,
    )


def cifar10_like(
    n_train: int = 2048,
    n_test: int = 512,
    image_size: int = 12,
    seed: int = 0,
) -> ClassificationData:
    """CIFAR-10 stand-in: 10 classes, 3-channel small images."""
    return make_image_classification(
        n_classes=10,
        n_train=n_train,
        n_test=n_test,
        image_size=image_size,
        noise=1.2,
        seed=seed,
        name="cifar10-like",
    )


def cifar100_like(
    n_train: int = 2048,
    n_test: int = 512,
    image_size: int = 12,
    n_classes: int = 100,
    seed: int = 0,
) -> ClassificationData:
    """CIFAR-100 stand-in: many classes ⇒ harder, lower absolute accuracy."""
    return make_image_classification(
        n_classes=n_classes,
        n_train=n_train,
        n_test=n_test,
        image_size=image_size,
        noise=1.0,
        seed=seed,
        name="cifar100-like",
    )


def imagenet_like(
    n_train: int = 4096,
    n_test: int = 1024,
    image_size: int = 16,
    n_classes: int = 50,
    seed: int = 0,
) -> ClassificationData:
    """ImageNet stand-in: larger images, more classes, more intra-class noise."""
    return make_image_classification(
        n_classes=n_classes,
        n_train=n_train,
        n_test=n_test,
        image_size=image_size,
        noise=1.5,
        smoothing=2.0,
        max_shift=2,
        seed=seed,
        name="imagenet-like",
    )
