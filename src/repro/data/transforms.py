"""Batch-level data augmentation (numpy, NCHW).

Transforms operate on whole batches for speed and take the loader's
``numpy.random.Generator`` so augmentation is reproducible per epoch.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Compose", "RandomHorizontalFlip", "RandomCrop", "Normalize"]


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[Callable]):
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, rng)
        return batch


class RandomHorizontalFlip:
    """Flip each example left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        self.p = float(p)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(batch)) < self.p
        if flip.any():
            batch = batch.copy()
            batch[flip] = batch[flip, :, :, ::-1]
        return batch


class RandomCrop:
    """Zero-pad by ``padding`` then crop back to the original size at a random offset."""

    def __init__(self, padding: int = 1):
        self.padding = int(padding)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return batch
        n, c, h, w = batch.shape
        p = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (p, p), (p, p)))
        out = np.empty_like(batch)
        offsets = rng.integers(0, 2 * p + 1, size=(n, 2))
        for i in range(n):
            dy, dx = offsets[i]
            out[i] = padded[i, :, dy : dy + h, dx : dx + w]
        return out


class Normalize:
    """Shift/scale channels by fixed per-channel statistics."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (batch - self.mean) / self.std
