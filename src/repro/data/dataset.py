"""Dataset containers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArrayDataset", "ClassificationData"]


class ArrayDataset:
    """A dataset backed by parallel numpy arrays (inputs, targets)."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs and targets disagree on length: {len(inputs)} vs {len(targets)}"
            )
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index):
        return self.inputs[index], self.targets[index]


@dataclass
class ClassificationData:
    """Train/test split of an image-classification task.

    Attributes
    ----------
    train, test:
        :class:`ArrayDataset` instances with NCHW float32 images and int64
        labels.
    num_classes:
        Number of target classes.
    input_shape:
        Per-example shape ``(C, H, W)``.
    name:
        Human-readable identifier used in experiment reports.
    """

    train: ArrayDataset
    test: ArrayDataset
    num_classes: int
    input_shape: tuple[int, int, int]
    name: str = "synthetic"
