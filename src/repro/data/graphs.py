"""Synthetic graph datasets for the GNN link-prediction experiments.

The paper evaluates on *wiki-talk* (a large, heavy-tailed communication
network) and *ia-email* (an email interaction network).  Neither is shipped
offline, so we synthesize graphs with the matching structural flavour:
**degree-corrected planted-partition graphs** — power-law degree propensities
(hubs, like talk pages and mailing lists) combined with community structure
(talk topics / organizational teams), which is the property that makes link
prediction on these networks learnable in the first place.

* ``wiki_talk_like`` — heavier degree tail, weaker communities;
* ``ia_email_like`` — stronger communities and clustering (email stays
  within teams), matching its higher link-prediction accuracy in the paper.

Node features combine structural statistics (log-degree, clustering) with a
noisy community signal and fixed random features, so a GCN encoder can
recover the latent structure.

The link-prediction protocol follows the standard setup: a fraction of edges
is held out as test positives, matched by an equal number of sampled
non-edges as test negatives; the remaining edges form the message-passing
graph and the training positives.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.sparse as sp

__all__ = [
    "LinkPredictionData",
    "normalized_adjacency",
    "make_link_prediction_data",
    "wiki_talk_like",
    "ia_email_like",
]


@dataclass
class LinkPredictionData:
    """A link-prediction task.

    Attributes
    ----------
    adjacency:
        Symmetrically-normalized adjacency (with self-loops) of the *training*
        graph, used for message passing.
    features:
        Node feature matrix ``(n_nodes, n_features)`` (structural + random).
    train_pos, train_neg, test_pos, test_neg:
        Edge index arrays of shape ``(k, 2)``.
    name:
        Dataset identifier.
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    train_pos: np.ndarray
    train_neg: np.ndarray
    test_pos: np.ndarray
    test_neg: np.ndarray
    name: str = "graph"

    @property
    def n_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]


def normalized_adjacency(graph: nx.Graph) -> sp.csr_matrix:
    """GCN-style normalization ``D^-1/2 (A + I) D^-1/2`` as float32 CSR."""
    adjacency = nx.to_scipy_sparse_array(graph, format="csr", dtype=np.float32)
    adjacency = adjacency + sp.eye(adjacency.shape[0], dtype=np.float32, format="csr")
    degrees = np.asarray(adjacency.sum(axis=1)).reshape(-1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    d_mat = sp.diags(inv_sqrt.astype(np.float32))
    return (d_mat @ adjacency @ d_mat).tocsr()


def degree_corrected_partition_graph(
    n_nodes: int,
    n_communities: int,
    mean_degree: float,
    mixing: float,
    power: float,
    rng: np.random.Generator,
) -> tuple[nx.Graph, np.ndarray]:
    """Degree-corrected planted-partition graph.

    Each node gets a community ``c_i`` and a Pareto-tailed degree propensity
    ``θ_i``; the probability of edge ``(i, j)`` is proportional to
    ``θ_i·θ_j`` boosted for same-community pairs.  ``mixing`` ∈ (0, 1] is
    the relative rate of between-community edges (lower ⇒ stronger
    communities); ``power`` controls the degree-tail heaviness.

    Returns the graph and the community assignment array.
    """
    if n_communities < 1:
        raise ValueError(f"need >= 1 community, got {n_communities}")
    if not 0.0 < mixing <= 1.0:
        raise ValueError(f"mixing must be in (0, 1], got {mixing}")
    communities = rng.integers(0, n_communities, size=n_nodes)
    theta = rng.pareto(power, size=n_nodes) + 1.0
    theta /= theta.mean()
    # Pairwise edge probabilities (vectorized upper triangle).
    idx_u, idx_v = np.triu_indices(n_nodes, k=1)
    same = communities[idx_u] == communities[idx_v]
    affinity = np.where(same, 1.0, mixing)
    base = mean_degree / (n_nodes * np.mean(np.where(same, 1.0, mixing)))
    probs = np.clip(base * theta[idx_u] * theta[idx_v] * affinity, 0.0, 0.9)
    edges_mask = rng.random(len(idx_u)) < probs
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    graph.add_edges_from(zip(idx_u[edges_mask].tolist(), idx_v[edges_mask].tolist()))
    return graph, communities


def _structural_features(
    graph: nx.Graph,
    n_random: int,
    rng: np.random.Generator,
    communities: np.ndarray | None = None,
    community_noise: float = 0.5,
) -> np.ndarray:
    """Structural + (noisy) community + fixed random node features."""
    n = graph.number_of_nodes()
    degrees = np.array([graph.degree(v) for v in range(n)], dtype=np.float32)
    log_degree = np.log1p(degrees)
    clustering = np.array([v for _, v in sorted(nx.clustering(graph).items())], dtype=np.float32)
    columns = [log_degree, clustering]
    if communities is not None:
        n_comm = int(communities.max()) + 1
        onehot = np.eye(n_comm, dtype=np.float32)[communities]
        onehot += community_noise * rng.standard_normal(onehot.shape).astype(np.float32)
        columns.extend(onehot.T)
    random_part = rng.standard_normal((n, n_random)).astype(np.float32)
    features = np.column_stack(columns + [random_part])
    features -= features.mean(axis=0, keepdims=True)
    features /= features.std(axis=0, keepdims=True) + 1e-8
    return features.astype(np.float32)


def _sample_negative_edges(
    graph: nx.Graph, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` distinct non-edges uniformly (rejection sampling)."""
    n = graph.number_of_nodes()
    negatives: set[tuple[int, int]] = set()
    max_attempts = 100 * count
    attempts = 0
    while len(negatives) < count and attempts < max_attempts:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        attempts += 1
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in negatives or graph.has_edge(*key):
            continue
        negatives.add(key)
    if len(negatives) < count:
        raise RuntimeError(
            f"could not sample {count} negative edges after {max_attempts} attempts"
        )
    return np.array(sorted(negatives), dtype=np.int64)


def make_link_prediction_data(
    graph: nx.Graph,
    test_fraction: float = 0.2,
    n_random_features: int = 14,
    seed: int = 0,
    name: str = "graph",
    communities: np.ndarray | None = None,
    community_noise: float = 0.5,
) -> LinkPredictionData:
    """Split a graph into a link-prediction task.

    Test positives are removed from the message-passing graph, so the model
    never sees them during training.  Training/test negatives are disjoint
    non-edges of the original graph.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    graph = nx.convert_node_labels_to_integers(graph)
    edges = np.array(sorted((min(u, v), max(u, v)) for u, v in graph.edges()), dtype=np.int64)
    n_edges = len(edges)
    n_test = max(1, int(test_fraction * n_edges))
    order = rng.permutation(n_edges)
    test_pos = edges[order[:n_test]]
    train_pos = edges[order[n_test:]]

    train_graph = nx.Graph()
    train_graph.add_nodes_from(range(graph.number_of_nodes()))
    train_graph.add_edges_from(train_pos.tolist())

    negatives = _sample_negative_edges(graph, len(train_pos) + n_test, rng)
    neg_order = rng.permutation(len(negatives))
    test_neg = negatives[neg_order[:n_test]]
    train_neg = negatives[neg_order[n_test : n_test + len(train_pos)]]

    features = _structural_features(
        graph, n_random_features, rng,
        communities=communities, community_noise=community_noise,
    )
    return LinkPredictionData(
        adjacency=normalized_adjacency(train_graph),
        features=features,
        train_pos=train_pos,
        train_neg=train_neg,
        test_pos=test_pos,
        test_neg=test_neg,
        name=name,
    )


def wiki_talk_like(
    n_nodes: int = 600,
    n_communities: int = 5,
    mean_degree: float = 12.0,
    mixing: float = 0.06,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> LinkPredictionData:
    """Synthetic stand-in for the wiki-talk communication network.

    Heavy degree tail (hub editors / popular talk pages) with moderate topic
    communities.
    """
    rng = np.random.default_rng(seed)
    graph, communities = degree_corrected_partition_graph(
        n_nodes, n_communities, mean_degree, mixing, power=1.8, rng=rng
    )
    return make_link_prediction_data(
        graph, test_fraction=test_fraction, seed=seed, name="wiki-talk-like",
        communities=communities, community_noise=0.3,
    )


def ia_email_like(
    n_nodes: int = 500,
    n_communities: int = 10,
    mean_degree: float = 14.0,
    mixing: float = 0.03,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> LinkPredictionData:
    """Synthetic stand-in for the ia-email interaction network.

    Email networks have stronger community structure (teams/organizations),
    hence the lower ``mixing`` — and, as in the paper, higher absolute
    link-prediction accuracy than the wiki-talk stand-in.
    """
    rng = np.random.default_rng(seed + 1000)
    graph, communities = degree_corrected_partition_graph(
        n_nodes, n_communities, mean_degree, mixing, power=2.5, rng=rng
    )
    return make_link_prediction_data(
        graph, test_fraction=test_fraction, seed=seed, name="ia-email-like",
        communities=communities, community_noise=0.2,
    )
