"""Dependency-free char-level language-modelling corpus and windowing.

No downloads: :func:`generate_corpus` synthesizes a tiny-shakespeare-like
stream of English-looking prose from a seeded word-level Markov chain, so
every byte of the dataset is reproducible from ``(n_chars, seed)``.  The
chain's successor distributions are Zipf-skewed per word, which gives the
stream real structure at two scales — within-word character transitions
and between-word bigram statistics — enough that model capacity measurably
moves validation perplexity (the LM benchmarks rely on this).

The alphabet is engineered to **exactly 32 symbols** (id 0 is a NUL pad
character that never appears in generated text) so vocabulary-sized
embedding/head matrices tile cleanly under 4x4 block masks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset

__all__ = ["ALPHABET", "CharVocab", "LMData", "generate_corpus", "make_char_lm_data"]

# 1 pad + 26 letters + space + period + comma + apostrophe + newline = 32.
ALPHABET = "\x00abcdefghijklmnopqrstuvwxyz .,'\n"

_WORDS = (
    "the", "and", "of", "to", "a", "in", "that", "is", "was", "he",
    "for", "it", "with", "as", "his", "on", "be", "at", "by", "had",
    "not", "are", "but", "from", "or", "have", "an", "they", "which", "one",
    "you", "were", "her", "all", "she", "there", "would", "their", "we", "him",
    "been", "has", "when", "who", "will", "more", "no", "if", "out", "so",
    "said", "what", "up", "its", "about", "into", "than", "them", "can", "only",
)


class CharVocab:
    """Bidirectional char/id mapping over the fixed 32-symbol alphabet."""

    def __init__(self, alphabet: str = ALPHABET):
        self.alphabet = alphabet
        self.pad_id = 0
        self._to_id = {ch: i for i, ch in enumerate(alphabet)}

    def __len__(self) -> int:
        return len(self.alphabet)

    def encode(self, text: str) -> np.ndarray:
        try:
            return np.array([self._to_id[ch] for ch in text], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"character {exc.args[0]!r} not in the alphabet") from None

    def decode(self, ids) -> str:
        ids = np.asarray(ids).reshape(-1)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self.alphabet)):
            raise ValueError(f"ids outside [0, {len(self.alphabet)})")
        return "".join(self.alphabet[int(i)] for i in ids)


@dataclass
class LMData:
    """Train/val split of a char-LM task.

    ``train``/``val`` hold non-overlapping fixed windows: inputs are
    ``(N, block_len)`` int64 char ids and targets the same ids shifted by
    one position — the next-token-prediction framing.
    """

    train: ArrayDataset
    val: ArrayDataset
    vocab: CharVocab
    block_len: int
    name: str = "markov-prose"

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)


def generate_corpus(n_chars: int = 65536, seed: int = 0) -> str:
    """Synthesize ``n_chars`` characters of seeded Markov prose."""
    if n_chars <= 0:
        raise ValueError(f"n_chars must be positive, got {n_chars}")
    rng = np.random.default_rng(seed)
    n_words = len(_WORDS)
    # Per-word successor distribution: a seeded permutation ranks the
    # successors, and probability falls off as 1/(rank+1) (Zipf-like), so
    # bigram statistics are strongly skewed but never degenerate.
    weights = 1.0 / (np.arange(n_words) + 1.0)
    transition = np.empty((n_words, n_words))
    for i in range(n_words):
        order = rng.permutation(n_words)
        transition[i, order] = weights
    transition /= transition.sum(axis=1, keepdims=True)

    pieces: list[str] = []
    total = 0
    word = int(rng.integers(n_words))
    sentence_left = int(rng.integers(4, 10))
    while total < n_chars:
        token = _WORDS[word]
        sentence_left -= 1
        if sentence_left == 0:
            token += "." + ("\n" if rng.random() < 0.25 else " ")
            sentence_left = int(rng.integers(4, 10))
        elif rng.random() < 0.08:
            token += ", "
        else:
            token += " "
        pieces.append(token)
        total += len(token)
        word = int(rng.choice(n_words, p=transition[word]))
    return "".join(pieces)[:n_chars]


def _windows(ids: np.ndarray, block_len: int) -> ArrayDataset:
    n = (ids.size - 1) // block_len
    if n <= 0:
        raise ValueError(
            f"segment of {ids.size} chars yields no window of length {block_len}"
        )
    x = np.stack([ids[i * block_len : i * block_len + block_len] for i in range(n)])
    y = np.stack([ids[i * block_len + 1 : i * block_len + block_len + 1] for i in range(n)])
    return ArrayDataset(np.ascontiguousarray(x), np.ascontiguousarray(y))


def make_char_lm_data(
    n_chars: int = 65536,
    block_len: int = 32,
    val_fraction: float = 0.1,
    seed: int = 0,
) -> LMData:
    """Generate a corpus and window it into train/val next-token datasets.

    The raw stream is split *before* windowing (train prefix, val suffix)
    so no validation character is ever seen as a training input or
    target.  Windows are non-overlapping; shuffling happens in the
    `DataLoader`, driven by its own seeded generator.
    """
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    vocab = CharVocab()
    ids = vocab.encode(generate_corpus(n_chars, seed=seed))
    split = int(round(ids.size * (1.0 - val_fraction)))
    return LMData(
        train=_windows(ids[:split], block_len),
        val=_windows(ids[split:], block_len),
        vocab=vocab,
        block_len=int(block_len),
    )
