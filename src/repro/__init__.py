"""repro — reproduction of "Dynamic Sparse Training via Balancing the
Exploration-Exploitation Trade-off" (DST-EE, DAC 2023).

Layered architecture (each layer only depends on the ones below it):

1. :mod:`repro.autograd` — numpy reverse-mode autodiff (tensors, conv, spmm).
2. :mod:`repro.nn` / :mod:`repro.optim` — layers, losses, SGD/Adam, LR
   schedules.
3. :mod:`repro.models` — VGG/ResNet/MLP/GNN architectures.
4. :mod:`repro.data` — synthetic CIFAR/ImageNet/graph stand-ins + loaders.
5. :mod:`repro.sparse` — the paper's contribution: masks, ERK, coverage
   counters, the Eq. 1 acquisition function, the drop-and-grow engine, and
   every compared baseline (SET/RigL/DeepR/SNFS/DSR/MEST/SNIP/GraSP/
   SynFlow/STR/GMP/ADMM).
6. :mod:`repro.train` / :mod:`repro.metrics` / :mod:`repro.flops` —
   training loop, metrics (exploration rate R, ΔL_g, convergence), FLOPs.
7. :mod:`repro.parallel` — the parallel execution engine: multiprocess
   experiment sharding (``REPRO_NPROC``) and data-parallel gradient
   workers over shared memory (``Trainer(n_workers=...)``).
8. :mod:`repro.experiments` — per-table runners regenerating the paper's
   evaluation, sharded through :mod:`repro.parallel`.

Quickstart::

    import numpy as np
    from repro.data import cifar10_like
    from repro.experiments import run_image_classification
    from repro.models import vgg19

    data = cifar10_like(n_train=1024, n_test=512)
    result = run_image_classification(
        "dst_ee", lambda seed: vgg19(10, width_mult=0.1, input_size=12, seed=seed),
        data, sparsity=0.9, epochs=3,
    )
    print(result.final_accuracy, result.exploration_rate)
"""

from repro import autograd, nn, optim
from repro.hotpath import hot_path
from repro.rng import DEFAULT_SEED, resolve_rng

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "nn",
    "optim",
    "hot_path",
    "resolve_rng",
    "DEFAULT_SEED",
    "__version__",
]
