"""Stochastic gradient descent with momentum, weight decay and Nesterov.

The optimizer exposes its per-parameter state (``state[param]``) because the
dynamic-sparse-training engine must reset the momentum of newly grown weights
(RigL/DST-EE semantics: regrown weights restart from zero with no velocity).

Two hot-path features support sparse training:

* **Sparse coordinate updates** — :meth:`Optimizer.bind_sparse_indices`
  registers per-parameter active-index providers (wired up by
  :meth:`repro.sparse.masked.MaskedModel.bind_optimizer`).  Bound
  parameters are updated only at their active coordinates, so the step
  cost scales with the non-zero count instead of the layer size and
  inactive weights stay exactly zero.  This is observationally identical
  to the dense update: gradients outside the mask are zero, inactive
  weights are re-zeroed by the mask invariant, and the engine resets
  optimizer state at regrown coordinates.
* **In-place dense updates** — velocity buffers are updated with
  ``np.multiply/np.add(..., out=)`` and the weight delta goes through a
  reusable per-parameter scratch buffer, so a dense step allocates
  nothing after the first iteration.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.hotpath import hot_path

__all__ = ["Optimizer", "SGD"]


class Optimizer:
    """Base optimizer: holds parameters, per-parameter state, and ``lr``."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: list[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.state: dict[int, dict[str, np.ndarray]] = {}
        self._sparse_indices: dict[int, Callable[[], np.ndarray]] = {}
        self._scratch: dict[int, np.ndarray] = {}

    def state_for(self, param: Tensor) -> dict[str, np.ndarray]:
        """Per-parameter mutable state dict (created on first access)."""
        return self.state.setdefault(id(param), {})

    def bind_sparse_indices(
        self, providers: dict[int, Callable[[], np.ndarray]]
    ) -> None:
        """Register active-index providers keyed by ``id(param)``.

        A bound parameter is updated only at the flat indices its provider
        returns (re-queried every step, so mask updates are picked up
        automatically).  Use
        :meth:`repro.sparse.masked.MaskedModel.bind_optimizer` rather than
        calling this directly.
        """
        self._sparse_indices.update(providers)

    def active_indices_for(self, param: Tensor) -> np.ndarray | None:
        """Flat active indices of a bound parameter, or ``None`` if unbound."""
        provider = self._sparse_indices.get(id(param))
        return None if provider is None else provider()

    def scratch_for(self, param: Tensor) -> np.ndarray:
        """Reusable parameter-shaped temporary (contents are undefined)."""
        buffer = self._scratch.get(id(param))
        if buffer is None or buffer.shape != param.data.shape:
            buffer = np.empty_like(param.data)
            self._scratch[id(param)] = buffer
        return buffer

    def zero_grad(self) -> None:
        """Clear gradients of all tracked parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: ``lr`` plus per-parameter state.

        Per-parameter state is keyed by the *position* of the parameter in
        ``self.params`` (``id()`` keys do not survive a process restart).
        Array entries (momentum, Adam moments) are copied; scalar entries
        (Adam step counts) pass through.
        """
        entries = []
        for param in self.params:
            state = self.state.get(id(param), {})
            entries.append({
                key: value.copy() if isinstance(value, np.ndarray) else value
                for key, value in state.items()
            })
        return {"type": type(self).__name__, "lr": self.lr, "state": entries}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (resume-exact).

        The optimizer must have been constructed over the same parameter
        list (same count and order); hyper-parameters come from the
        constructor, only ``lr`` and per-parameter state are restored.
        """
        saved_type = state.get("type", type(self).__name__)
        if saved_type != type(self).__name__:
            raise ValueError(
                f"checkpoint optimizer is {saved_type!r}, "
                f"this optimizer is {type(self).__name__!r}"
            )
        entries = state["state"]
        if len(entries) != len(self.params):
            raise ValueError(
                f"checkpoint has state for {len(entries)} parameters, "
                f"optimizer tracks {len(self.params)}"
            )
        self.lr = float(state["lr"])
        self.state.clear()
        for param, entry in zip(self.params, entries):
            if not entry:
                continue
            restored = {}
            for key, value in entry.items():
                if isinstance(value, np.ndarray):
                    if value.shape != param.data.shape:
                        raise ValueError(
                            f"optimizer state {key!r} shape {value.shape} does "
                            f"not match parameter shape {param.data.shape}"
                        )
                    restored[key] = np.array(
                        value, dtype=value.dtype, copy=True
                    )
                else:
                    restored[key] = value
            self.state[id(param)] = restored


class SGD(Optimizer):
    """SGD with (optionally Nesterov) momentum and decoupled-from-mask weight decay.

    Matches the PyTorch update rule:

    ``v <- mu * v + g + wd * w``;  ``w <- w - lr * (g + mu*v)`` for Nesterov
    or ``w <- w - lr * v`` for classic momentum.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        for param in self.params:
            grad = param.grad
            if grad is None:
                continue
            indices = self.active_indices_for(param)
            if (
                indices is not None
                and indices.size < param.size
                and param.data.flags.c_contiguous
            ):
                self._sparse_step(param, grad, indices)
            else:
                self._dense_step(param, grad)

    def _velocity_for(self, param: Tensor) -> np.ndarray:
        state = self.state_for(param)
        velocity = state.get("momentum")
        if velocity is None:
            velocity = np.zeros_like(param.data)
            state["momentum"] = velocity
        return velocity

    @hot_path
    def _dense_step(self, param: Tensor, grad: np.ndarray) -> None:
        scratch = self.scratch_for(param)
        if self.weight_decay:
            np.multiply(param.data, self.weight_decay, out=scratch)
            np.add(scratch, grad, out=scratch)
            grad = scratch
        if self.momentum:
            velocity = self._velocity_for(param)
            np.multiply(velocity, self.momentum, out=velocity)
            np.add(velocity, grad, out=velocity)
            if self.nesterov:
                # w -= lr*(g + mu*v), applied as two axpy passes through the
                # scratch buffer so this path allocates nothing either.
                np.multiply(grad, -self.lr, out=scratch)
                np.add(param.data, scratch, out=param.data)
                np.multiply(velocity, -self.lr * self.momentum, out=scratch)
                np.add(param.data, scratch, out=param.data)
                return
            update = velocity
        else:
            update = grad
        if update is scratch:
            np.multiply(scratch, -self.lr, out=scratch)
        else:
            np.multiply(update, -self.lr, out=scratch)
        np.add(param.data, scratch, out=param.data)

    def _sparse_step(self, param: Tensor, grad: np.ndarray, indices: np.ndarray) -> None:
        """Update only the active coordinates (cost ∝ non-zeros)."""
        flat_weight = param.data.reshape(-1)
        grad_active = grad.reshape(-1)[indices]
        if self.weight_decay:
            grad_active += self.weight_decay * flat_weight[indices]
        if self.momentum:
            flat_velocity = self._velocity_for(param).reshape(-1)
            velocity_active = flat_velocity[indices]
            velocity_active *= self.momentum
            velocity_active += grad_active
            flat_velocity[indices] = velocity_active
            if self.nesterov:
                update = grad_active + self.momentum * velocity_active
            else:
                update = velocity_active
        else:
            update = grad_active
        update *= self.lr
        flat_weight[indices] -= update
