"""Stochastic gradient descent with momentum, weight decay and Nesterov.

The optimizer exposes its per-parameter state (``state[param]``) because the
dynamic-sparse-training engine must reset the momentum of newly grown weights
(RigL/DST-EE semantics: regrown weights restart from zero with no velocity).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Optimizer", "SGD"]


class Optimizer:
    """Base optimizer: holds parameters, per-parameter state, and ``lr``."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: list[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.state: dict[int, dict[str, np.ndarray]] = {}

    def state_for(self, param: Tensor) -> dict[str, np.ndarray]:
        """Per-parameter mutable state dict (created on first access)."""
        return self.state.setdefault(id(param), {})

    def zero_grad(self) -> None:
        """Clear gradients of all tracked parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with (optionally Nesterov) momentum and decoupled-from-mask weight decay.

    Matches the PyTorch update rule:

    ``v <- mu * v + g + wd * w``;  ``w <- w - lr * (g + mu*v)`` for Nesterov
    or ``w <- w - lr * v`` for classic momentum.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        for param in self.params:
            grad = param.grad
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                state = self.state_for(param)
                velocity = state.get("momentum")
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                state["momentum"] = velocity
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data = param.data - self.lr * update
