"""Adam optimizer (used by the GNN link-prediction experiments)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.sgd import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction, following Kingma & Ba (2015).

    Parameters bound through :meth:`Optimizer.bind_sparse_indices` (see
    :meth:`repro.sparse.masked.MaskedModel.bind_optimizer`) are updated only
    at their active coordinates; the moment buffers stay dense-shaped so the
    engine's optimizer-state reset for regrown weights works unchanged.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def step(self) -> None:
        """Apply one Adam update to every parameter that has a gradient."""
        for param in self.params:
            grad = param.grad
            if grad is None:
                continue
            indices = self.active_indices_for(param)
            if (
                indices is not None
                and indices.size < param.size
                and param.data.flags.c_contiguous
            ):
                self._sparse_step(param, grad, indices)
            else:
                self._dense_step(param, grad)

    def _moments_for(self, param: Tensor) -> tuple[dict, int, np.ndarray, np.ndarray]:
        state = self.state_for(param)
        step_count = state.get("step", 0) + 1
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        state.update(step=step_count, m=m, v=v)
        return state, step_count, m, v

    def _dense_step(self, param: Tensor, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        state, step_count, m, v = self._moments_for(param)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        state.update(m=m, v=v)
        m_hat = m / (1 - self.beta1**step_count)
        v_hat = v / (1 - self.beta2**step_count)
        param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _sparse_step(self, param: Tensor, grad: np.ndarray, indices: np.ndarray) -> None:
        """Update only the active coordinates (cost ∝ non-zeros)."""
        _, step_count, m, v = self._moments_for(param)
        flat_weight = param.data.reshape(-1)
        grad_active = grad.reshape(-1)[indices]
        if self.weight_decay:
            grad_active += self.weight_decay * flat_weight[indices]
        flat_m = m.reshape(-1)
        flat_v = v.reshape(-1)
        m_active = flat_m[indices]
        m_active *= self.beta1
        m_active += (1 - self.beta1) * grad_active
        flat_m[indices] = m_active
        v_active = flat_v[indices]
        v_active *= self.beta2
        v_active += (1 - self.beta2) * grad_active * grad_active
        flat_v[indices] = v_active
        m_hat = m_active / (1 - self.beta1**step_count)
        v_hat = v_active / (1 - self.beta2**step_count)
        flat_weight[indices] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
