"""Adam optimizer (used by the GNN link-prediction experiments)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.sgd import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction, following Kingma & Ba (2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def step(self) -> None:
        """Apply one Adam update to every parameter that has a gradient."""
        for param in self.params:
            grad = param.grad
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            state = self.state_for(param)
            step_count = state.get("step", 0) + 1
            m = state.get("m")
            v = state.get("v")
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            state.update(step=step_count, m=m, v=v)
            m_hat = m / (1 - self.beta1**step_count)
            v_hat = v / (1 - self.beta2**step_count)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
