"""Learning-rate schedules.

The paper trains with SGD + cosine annealing; :class:`CosineAnnealingLR` is
the default in every experiment config.  Schedulers mutate ``optimizer.lr``
when :meth:`step` is called (once per epoch, as in the paper's setup, or per
iteration if constructed with the iteration count).

Checkpointing: every scheduler exposes ``state_dict()`` /
``load_state_dict()`` (``base_lr`` + ``last_epoch``, plus the wrapped
scheduler for :class:`WarmupWrapper`), so a restored run continues the
schedule exactly.  Constructing a scheduler against an optimizer whose
``lr`` has already been decayed (e.g. right before restoring a checkpoint)
would silently corrupt the whole schedule if ``base_lr`` were captured from
``optimizer.lr`` — pass ``base_lr`` explicitly in that situation, or call
``load_state_dict`` which restores the true base LR.
"""

from __future__ import annotations

import math

from repro.optim.sgd import Optimizer

__all__ = ["LRScheduler", "CosineAnnealingLR", "StepLR", "MultiStepLR", "WarmupWrapper"]


class LRScheduler:
    """Base class: tracks the epoch counter and the schedule's base LR.

    ``base_lr`` defaults to ``optimizer.lr`` *at construction time*; pass it
    explicitly when the optimizer's current ``lr`` is not the undecayed base
    (a restored or partially trained optimizer).
    """

    def __init__(self, optimizer: Optimizer, base_lr: float | None = None):
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr if base_lr is None else base_lr)
        self.last_epoch = -1
        self.step()  # initialize lr for epoch 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.last_epoch += 1
        self.optimizer.lr = self.get_lr()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot (``base_lr``, ``last_epoch``)."""
        return {
            "type": type(self).__name__,
            "base_lr": self.base_lr,
            "last_epoch": self.last_epoch,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output and re-apply the current LR."""
        saved_type = state.get("type", type(self).__name__)
        if saved_type != type(self).__name__:
            raise ValueError(
                f"checkpoint scheduler is {saved_type!r}, "
                f"this scheduler is {type(self).__name__!r}"
            )
        self.base_lr = float(state["base_lr"])
        self.last_epoch = int(state["last_epoch"])
        self.optimizer.lr = self.get_lr()


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps."""

    def __init__(
        self,
        optimizer: Optimizer,
        t_max: int,
        eta_min: float = 0.0,
        base_lr: float | None = None,
    ):
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)
        super().__init__(optimizer, base_lr=base_lr)

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.eta_min + (self.base_lr - self.eta_min) * cosine


class StepLR(LRScheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(
        self,
        optimizer: Optimizer,
        step_size: int,
        gamma: float = 0.1,
        base_lr: float | None = None,
    ):
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        super().__init__(optimizer, base_lr=base_lr)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply LR by ``gamma`` at each milestone epoch."""

    def __init__(
        self,
        optimizer: Optimizer,
        milestones: list[int],
        gamma: float = 0.1,
        base_lr: float | None = None,
    ):
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)
        super().__init__(optimizer, base_lr=base_lr)

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if m <= self.last_epoch)
        return self.base_lr * self.gamma**passed


class WarmupWrapper(LRScheduler):
    """Linear warmup for ``warmup_epochs`` steps, then delegate to ``inner``."""

    def __init__(
        self,
        optimizer: Optimizer,
        inner: LRScheduler,
        warmup_epochs: int,
        base_lr: float | None = None,
    ):
        self.inner = inner
        self.warmup_epochs = int(warmup_epochs)
        super().__init__(optimizer, base_lr=base_lr)

    def get_lr(self) -> float:
        if self.last_epoch < self.warmup_epochs:
            return self.base_lr * (self.last_epoch + 1) / self.warmup_epochs
        return self.inner.get_lr()

    def step(self) -> None:
        self.last_epoch += 1
        if self.last_epoch >= self.warmup_epochs:
            self.inner.step()
        self.optimizer.lr = self.get_lr()

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["inner"] = self.inner.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.inner.load_state_dict(state["inner"])
        super().load_state_dict(state)
