"""Learning-rate schedules.

The paper trains with SGD + cosine annealing; :class:`CosineAnnealingLR` is
the default in every experiment config.  Schedulers mutate ``optimizer.lr``
when :meth:`step` is called (once per epoch, as in the paper's setup, or per
iteration if constructed with the iteration count).
"""

from __future__ import annotations

import math

from repro.optim.sgd import Optimizer

__all__ = ["LRScheduler", "CosineAnnealingLR", "StepLR", "MultiStepLR", "WarmupWrapper"]


class LRScheduler:
    """Base class: tracks the epoch counter and the optimizer's base LR."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1
        self.step()  # initialize lr for epoch 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.last_epoch += 1
        self.optimizer.lr = self.get_lr()


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)
        super().__init__(optimizer)

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.eta_min + (self.base_lr - self.eta_min) * cosine


class StepLR(LRScheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        super().__init__(optimizer)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply LR by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: list[int], gamma: float = 0.1):
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)
        super().__init__(optimizer)

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if m <= self.last_epoch)
        return self.base_lr * self.gamma**passed


class WarmupWrapper(LRScheduler):
    """Linear warmup for ``warmup_epochs`` steps, then delegate to ``inner``."""

    def __init__(self, optimizer: Optimizer, inner: LRScheduler, warmup_epochs: int):
        self.inner = inner
        self.warmup_epochs = int(warmup_epochs)
        super().__init__(optimizer)

    def get_lr(self) -> float:
        if self.last_epoch < self.warmup_epochs:
            return self.base_lr * (self.last_epoch + 1) / self.warmup_epochs
        return self.inner.get_lr()

    def step(self) -> None:
        self.last_epoch += 1
        if self.last_epoch >= self.warmup_epochs:
            self.inner.step()
        self.optimizer.lr = self.get_lr()
