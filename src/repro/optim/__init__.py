"""Optimizers and learning-rate schedules."""

from repro.optim.sgd import SGD, Optimizer
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import (
    CosineAnnealingLR,
    LRScheduler,
    MultiStepLR,
    StepLR,
    WarmupWrapper,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "CosineAnnealingLR",
    "StepLR",
    "MultiStepLR",
    "WarmupWrapper",
]
