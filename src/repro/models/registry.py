"""Named model builders — the architecture half of a serving artifact.

A serving artifact (:mod:`repro.serve.artifact`) stores CSR weights plus a
*model config* ``{"builder": name, "kwargs": {...}}``; at load time the
dense architecture is rebuilt from this registry and the compiled sparse
layers are swapped back in.  Keeping the mapping here (rather than pickling
model objects) makes artifacts portable across processes, Python versions,
and refactors of the model classes.

The registry is open: :func:`register_model` lets downstream code add its
own builders under new names.
"""

from __future__ import annotations

from typing import Callable

from repro.models.char_gpt import CharGPT
from repro.models.mlp import MLP
from repro.models.resnet import resnet20, resnet50, resnet50_mini
from repro.models.vgg import vgg11, vgg19
from repro.nn.module import Module

__all__ = ["MODEL_REGISTRY", "build_model", "register_model"]

MODEL_REGISTRY: dict[str, Callable[..., Module]] = {
    "mlp": MLP,
    "char_gpt": CharGPT,
    "vgg11": vgg11,
    "vgg19": vgg19,
    "resnet20": resnet20,
    "resnet50": resnet50,
    "resnet50_mini": resnet50_mini,
}


def register_model(name: str, builder: Callable[..., Module]) -> None:
    """Add (or replace) a named builder usable from serving artifacts."""
    MODEL_REGISTRY[name] = builder


def build_model(name: str, **kwargs) -> Module:
    """Instantiate the registered builder ``name`` with ``kwargs``."""
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model builder {name!r}; registered: {known}") from None
    return builder(**kwargs)
