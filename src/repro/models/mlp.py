"""Multi-layer perceptron (quickstart model and unit-test workhorse)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import nn

__all__ = ["MLP"]


class MLP(nn.Module):
    """Fully-connected classifier with ReLU activations.

    Parameters
    ----------
    in_features:
        Flattened input dimension (images are flattened internally).
    hidden:
        Sizes of hidden layers, e.g. ``(256, 128)``.
    num_classes:
        Output dimension (logits).
    dropout:
        Optional dropout probability after each hidden activation.
    seed:
        Seed for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int] = (128, 64),
        num_classes: int = 10,
        dropout: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: list[nn.Module] = []
        prev = int(in_features)
        for width in hidden:
            layers.append(nn.Linear(prev, int(width), rng=rng))
            layers.append(nn.ReLU())
            if dropout > 0:
                layers.append(nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31))))
            prev = int(width)
        layers.append(nn.Linear(prev, int(num_classes), rng=rng))
        self.body = nn.Sequential(*layers)
        self.in_features = int(in_features)

    def forward(self, x):
        if x.ndim > 2:
            x = x.reshape((x.shape[0], -1))
        return self.body(x)
