"""ResNet family (He et al.) with bottleneck blocks, CIFAR-style stem.

``resnet50`` reproduces the [3, 4, 6, 3] bottleneck layout of the paper's
Tables I/II.  ``resnet50_mini`` is the same architecture family with
[1, 1, 1, 1] blocks and a width multiplier — used by the benchmark harness so
a full method-comparison sweep completes in minutes on CPU (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro import nn

__all__ = ["ResNet", "Bottleneck", "BasicBlock", "resnet50", "resnet50_mini", "resnet20"]


class BasicBlock(nn.Module):
    """Two 3x3 convs with identity/projection shortcut (ResNet-18/20 style)."""

    expansion = 1

    def __init__(self, in_channels: int, channels: int, stride: int, rng: np.random.Generator):
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + self.shortcut(x))


class Bottleneck(nn.Module):
    """1x1 → 3x3 → 1x1 bottleneck with 4x expansion (ResNet-50 style)."""

    expansion = 4

    def __init__(self, in_channels: int, channels: int, stride: int, rng: np.random.Generator):
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, channels, 1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(channels)
        self.conv3 = nn.Conv2d(channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu(out + self.shortcut(x))


class ResNet(nn.Module):
    """Configurable ResNet with a CIFAR stem (3x3 conv, no initial max-pool).

    Parameters
    ----------
    block:
        :class:`BasicBlock` or :class:`Bottleneck`.
    layers:
        Blocks per stage, e.g. ``[3, 4, 6, 3]`` for ResNet-50.
    num_classes:
        Classifier output dimension.
    width_mult:
        Multiplier on stage widths (64/128/256/512), minimum 8.
    in_channels:
        Input channels.
    seed:
        Weight-init seed.
    """

    def __init__(
        self,
        block,
        layers: list[int],
        num_classes: int = 10,
        width_mult: float = 1.0,
        in_channels: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)

        def scaled(width: int) -> int:
            return max(8, int(round(width * width_mult)))

        stem_width = scaled(64)
        self.conv1 = nn.Conv2d(in_channels, stem_width, 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(stem_width)
        self.relu = nn.ReLU()

        current = stem_width
        stages = []
        for stage_index, (width, blocks) in enumerate(
            zip([64, 128, 256, 512], layers)
        ):
            stride = 1 if stage_index == 0 else 2
            stage_width = scaled(width)
            blocks_list = []
            for block_index in range(blocks):
                blocks_list.append(
                    block(current, stage_width, stride if block_index == 0 else 1, rng)
                )
                current = stage_width * block.expansion
            stages.append(nn.Sequential(*blocks_list))
        self.layer1, self.layer2, self.layer3, self.layer4 = (
            stages if len(stages) == 4 else stages + [nn.Identity()] * (4 - len(stages))
        )
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        x = self.relu(self.bn1(self.conv1(x)))
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        x = self.pool(x)
        return self.fc(x)


def resnet50(num_classes: int = 10, width_mult: float = 1.0, in_channels: int = 3,
             seed: int = 0) -> ResNet:
    """ResNet-50 ([3, 4, 6, 3] bottlenecks) — the paper's main CNN."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes=num_classes,
                  width_mult=width_mult, in_channels=in_channels, seed=seed)


def resnet50_mini(num_classes: int = 10, width_mult: float = 0.25, in_channels: int = 3,
                  seed: int = 0) -> ResNet:
    """Same bottleneck family at [1, 1, 1, 1] depth — benchmark-scale stand-in."""
    return ResNet(Bottleneck, [1, 1, 1, 1], num_classes=num_classes,
                  width_mult=width_mult, in_channels=in_channels, seed=seed)


def resnet20(num_classes: int = 10, width_mult: float = 1.0, in_channels: int = 3,
             seed: int = 0) -> ResNet:
    """CIFAR ResNet-20 analogue with basic blocks (ablation model)."""
    return ResNet(BasicBlock, [3, 3, 3], num_classes=num_classes,
                  width_mult=width_mult, in_channels=in_channels, seed=seed)
