"""VGG family (Simonyan & Zisserman) in the CIFAR configuration.

``vgg19`` reproduces the paper's 16-conv + classifier layout exactly; the
``width_mult`` knob scales the channel counts so the same architecture runs
at laptop scale on the synthetic datasets (see DESIGN.md §2).  Max-pool
stages are skipped automatically once the spatial size reaches 1, which lets
the 5-stage configuration run on small synthetic images; the classifier is a
single fully-connected layer on globally-pooled features, as in CIFAR VGG.
"""

from __future__ import annotations

import numpy as np

from repro import nn

__all__ = ["VGG", "vgg11", "vgg19", "VGG_CONFIGS"]

VGG_CONFIGS: dict[str, list] = {
    # Numbers are output channels, "M" is a 2x2 max-pool.
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg19": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, 256, "M",
        512, 512, 512, 512, "M",
        512, 512, 512, 512, "M",
    ],
}


class VGG(nn.Module):
    """Configurable VGG with batch norm.

    Parameters
    ----------
    config:
        A list of channel counts and ``"M"`` pool markers
        (see :data:`VGG_CONFIGS`).
    num_classes:
        Classifier output dimension.
    in_channels:
        Input image channels.
    width_mult:
        Multiplier on every channel count (minimum 8 channels per layer).
    input_size:
        Expected spatial size; pools that would shrink below 1 px are skipped.
    seed:
        Weight-init seed.
    """

    def __init__(
        self,
        config: list,
        num_classes: int = 10,
        in_channels: int = 3,
        width_mult: float = 1.0,
        input_size: int = 32,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: list[nn.Module] = []
        channels = in_channels
        spatial = input_size
        width = 8
        for item in config:
            if item == "M":
                if spatial >= 2:
                    layers.append(nn.MaxPool2d(2))
                    spatial //= 2
                continue
            width = max(8, int(round(item * width_mult)))
            layers.append(
                nn.Conv2d(channels, width, 3, padding=1, bias=False, rng=rng)
            )
            layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            channels = width
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(channels, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        x = self.features(x)
        x = self.pool(x)
        return self.classifier(x)


def vgg11(num_classes: int = 10, width_mult: float = 1.0, input_size: int = 32,
          in_channels: int = 3, seed: int = 0) -> VGG:
    """VGG-11 (8 conv layers), the fast member of the family."""
    return VGG(
        VGG_CONFIGS["vgg11"],
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=width_mult,
        input_size=input_size,
        seed=seed,
    )


def vgg19(num_classes: int = 10, width_mult: float = 1.0, input_size: int = 32,
          in_channels: int = 3, seed: int = 0) -> VGG:
    """VGG-19 (16 conv layers) — the architecture of the paper's Table I."""
    return VGG(
        VGG_CONFIGS["vgg19"],
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=width_mult,
        input_size=input_size,
        seed=seed,
    )
