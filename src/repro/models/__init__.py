"""Model zoo: the architectures evaluated in the paper plus scaled stand-ins."""

from repro.models.char_gpt import CharGPT, TransformerBlock
from repro.models.mlp import MLP
from repro.models.vgg import VGG, VGG_CONFIGS, vgg11, vgg19
from repro.models.resnet import (
    BasicBlock,
    Bottleneck,
    ResNet,
    resnet20,
    resnet50,
    resnet50_mini,
)
from repro.models.gnn import GCNEncoder, GNNLinkModel, LinkPredictor
from repro.models.registry import MODEL_REGISTRY, build_model, register_model

__all__ = [
    "MODEL_REGISTRY",
    "build_model",
    "register_model",
    "MLP",
    "CharGPT",
    "TransformerBlock",
    "VGG",
    "VGG_CONFIGS",
    "vgg11",
    "vgg19",
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet20",
    "resnet50",
    "resnet50_mini",
    "GCNEncoder",
    "GNNLinkModel",
    "LinkPredictor",
]
