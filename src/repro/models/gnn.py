"""GCN encoder + MLP link predictor for the GNN experiments (Tables III/IV).

The paper applies DST-EE "to the two fully connected layers with uniform
sparsity ratios" of a link-prediction GNN.  We therefore build:

* :class:`GCNEncoder` — two graph-convolution layers
  (``relu(A_hat @ X @ W)``) producing node embeddings; and
* :class:`LinkPredictor` — the *two fully-connected layers* scoring an edge
  from the element-wise product of its endpoint embeddings.  These are the
  layers the sparsifier targets.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.autograd import ops
from repro.autograd.sparse_ops import spmm
from repro.autograd.tensor import Tensor

__all__ = ["GCNEncoder", "LinkPredictor", "GNNLinkModel"]


class GCNEncoder(nn.Module):
    """Two-layer graph convolutional encoder."""

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 rng: np.random.Generator):
        super().__init__()
        self.lin1 = nn.Linear(in_features, hidden, bias=False, rng=rng)
        self.lin2 = nn.Linear(hidden, out_features, bias=False, rng=rng)
        self.relu = nn.ReLU()

    def forward(self, adjacency: sp.spmatrix, features: Tensor) -> Tensor:
        h = self.relu(spmm(adjacency, self.lin1(features)))
        return spmm(adjacency, self.lin2(h))


class LinkPredictor(nn.Module):
    """Two fully-connected layers scoring edges — the sparsified subnetwork."""

    def __init__(self, embed_dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = nn.Linear(embed_dim, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, 1, rng=rng)
        self.relu = nn.ReLU()

    def forward(self, z_u: Tensor, z_v: Tensor) -> Tensor:
        pair = ops.mul(z_u, z_v)
        h = self.relu(self.fc1(pair))
        return self.fc2(h).reshape((-1,))


class GNNLinkModel(nn.Module):
    """End-to-end link-prediction model: GCN encoder + MLP predictor.

    ``sparse_target_modules`` lists the two FC layers the paper sparsifies;
    the encoder stays dense (matching the paper's setup).
    """

    def __init__(
        self,
        in_features: int,
        gcn_hidden: int = 64,
        embed_dim: int = 48,
        predictor_hidden: int = 256,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.encoder = GCNEncoder(in_features, gcn_hidden, embed_dim, rng)
        self.predictor = LinkPredictor(embed_dim, predictor_hidden, rng)

    def forward(self, adjacency: sp.spmatrix, features: Tensor, edges: np.ndarray) -> Tensor:
        """Return edge logits for ``edges`` of shape ``(k, 2)``."""
        z = self.encoder(adjacency, features)
        z_u = ops.getitem(z, edges[:, 0])
        z_v = ops.getitem(z, edges[:, 1])
        return self.predictor(z_u, z_v)

    def sparse_target_modules(self) -> list[nn.Module]:
        """The two fully-connected layers DST-EE sparsifies (paper §V.B)."""
        return [self.predictor.fc1, self.predictor.fc2]
