"""Char-level GPT whose every weight matrix is dynamically sparsifiable.

A small pre-LayerNorm decoder-only transformer in the GPT-2 style: token
and position embeddings, ``n_layer`` blocks of causal self-attention plus
a GELU MLP, a final LayerNorm, and an untied vocabulary head.  All
Linear *and* Embedding weight matrices are ordinary `repro.nn` modules,
so `MaskedModel` picks them up under the unified ``(masked, schedule,
budget)`` controller API — including block-structured masks, since every
matmul dimension is a multiple of 4 on the committed configs.

Two heads:

- ``head="train"`` returns flattened ``(B*T, vocab_size)`` logits, the
  shape `lm_cross_entropy` and the Trainer's batch accuracy expect.
- ``head="last"`` returns ``(B, vocab_size)`` logits for the final
  position only — the serving shape for greedy next-token prediction.

When ``pad_id`` is set, inputs may be *left*-padded: pad positions are
excluded from every attention softmax (additive ``-1e9`` key mask, so
their attention weights are exactly zero) and position ids are
right-aligned so the real tokens see positions ``0..n-1`` exactly as
they would unpadded.  Last-position logits of a left-padded prompt
match the unpadded ones up to BLAS summation order (identical greedy
argmax; see ``tests/nn/test_transformer.py``); the serving preprocessor
always pads to the artifact's ``max_length``, so prompts of different
lengths stack into one deterministic batch shape.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.autograd import ops
from repro.autograd.tensor import Tensor

__all__ = ["CharGPT", "TransformerBlock"]


class TransformerBlock(nn.Module):
    """Pre-LN residual block: attention then a 4x GELU MLP."""

    def __init__(self, n_embd: int, n_head: int, max_len: int, rng=None):
        super().__init__()
        self.ln1 = nn.LayerNorm(n_embd)
        self.attn = nn.CausalSelfAttention(n_embd, n_head, max_len, rng=rng)
        self.ln2 = nn.LayerNorm(n_embd)
        self.fc = nn.Linear(n_embd, 4 * n_embd, rng=rng)
        self.act = nn.GELU()
        self.proj = nn.Linear(4 * n_embd, n_embd, rng=rng)

    def forward(
        self,
        x_flat: Tensor,
        batch: int,
        seq: int,
        key_pad_mask: np.ndarray | None = None,
    ) -> Tensor:
        """Residual stream in flattened ``(batch * seq, n_embd)`` shape.

        Keeping activations 2-D outside the attention head split means
        every Linear in the block runs on the matrix shape the sparse
        training backends and compiled CSR/BSR inference layers accept.
        """
        x_flat = ops.add(x_flat, self.attn(self.ln1(x_flat), batch, seq, key_pad_mask))
        return ops.add(x_flat, self.proj(self.act(self.fc(self.ln2(x_flat)))))


class CharGPT(nn.Module):
    """Decoder-only char LM; see the module docstring for the contract.

    The model holds **no** RNG state after construction (no dropout, no
    ``np.random.Generator`` attributes), so worker-pool training resumes
    bitwise-exactly at any step — the Trainer snapshots module RNGs only
    when they exist, and none do here.
    """

    def __init__(
        self,
        vocab_size: int = 32,
        block_len: int = 32,
        n_layer: int = 2,
        n_head: int = 2,
        n_embd: int = 64,
        head: str = "train",
        pad_id: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if head not in ("train", "last"):
            raise ValueError(f"head must be 'train' or 'last', got {head!r}")
        if pad_id is not None and not 0 <= int(pad_id) < vocab_size:
            raise ValueError(f"pad_id {pad_id} outside vocab of size {vocab_size}")
        self.vocab_size = int(vocab_size)
        self.block_len = int(block_len)
        self.n_layer = int(n_layer)
        self.n_head = int(n_head)
        self.n_embd = int(n_embd)
        self.head = head
        self.pad_id = None if pad_id is None else int(pad_id)
        rng = np.random.default_rng(seed)
        self.tok_emb = nn.Embedding(vocab_size, n_embd, rng=rng)
        self.pos_emb = nn.Embedding(block_len, n_embd, rng=rng)
        self.blocks = nn.Sequential(
            *[TransformerBlock(n_embd, n_head, block_len, rng=rng) for _ in range(n_layer)]
        )
        self.ln_f = nn.LayerNorm(n_embd)
        self.lm_head = nn.Linear(n_embd, vocab_size, bias=False, rng=rng)

    def _pad_info(self, idx: np.ndarray):
        """Return (key_pad_mask, positions) honouring left-padding."""
        seq = idx.shape[1]
        base = np.arange(seq, dtype=np.int64)
        if self.pad_id is None:
            return None, np.broadcast_to(base, idx.shape)
        mask = idx == self.pad_id
        if not mask.any():
            return None, np.broadcast_to(base, idx.shape)
        n_pad = mask.sum(axis=1)
        if np.any(mask != (base[None, :] < n_pad[:, None])):
            raise ValueError("pad tokens must form a left prefix of the sequence")
        positions = np.maximum(base[None, :] - n_pad[:, None], 0)
        return mask, positions

    def forward(self, indices) -> Tensor:
        idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        if idx.ndim != 2:
            raise ValueError(f"CharGPT expects (B, T) token ids, got shape {idx.shape}")
        batch, seq = idx.shape
        if seq > self.block_len:
            raise ValueError(f"sequence length {seq} exceeds block_len {self.block_len}")
        key_pad_mask, positions = self._pad_info(idx)
        x = ops.add(self.tok_emb(idx), self.pos_emb(positions))
        flat = ops.reshape(x, (batch * seq, self.n_embd))
        for block in self.blocks.children():
            flat = block(flat, batch, seq, key_pad_mask)
        if self.head == "last":
            flat = ops.getitem(flat, np.arange(batch, dtype=np.int64) * seq + (seq - 1))
        return self.lm_head(self.ln_f(flat))

    def __repr__(self) -> str:
        return (
            f"CharGPT(vocab_size={self.vocab_size}, block_len={self.block_len}, "
            f"n_layer={self.n_layer}, n_head={self.n_head}, n_embd={self.n_embd}, "
            f"head={self.head!r}, pad_id={self.pad_id})"
        )
