"""Supervised multi-process serving pool over one shared read-only arena.

One Python process can only push one core's worth of CSR matmuls.  The pool
forks ``n_workers`` serving processes that all read the *same* physical
copy of the compiled weights: the parent packs every sparse layer's CSR
components (both orientations) and bias into a single
:class:`~repro.parallel.shm.SharedArena`, re-points the layer matrices at
read-only views of it, and forks.  At the paper's 90–98% sparsities the
arena is a fraction of the dense weight bytes, and the workers add no
per-process weight copies at all — the scaling cost of one more worker is
its Python interpreter, not the model.

Transport is one **pipe pair per worker** (requests down, responses up),
each with exactly one writer and one reader — deliberately *not* a shared
queue.  A shared queue has shared locks, and a worker SIGKILLed mid-``get``
dies holding the reader lock, wedging every sibling; with private pipes a
dead worker poisons nothing, and the parent knows exactly which requests
it held.

That record is what makes the pool *supervised* instead of fail-fast: a
supervisor thread watches the response pipes, and on an unexpected worker
death it respawns a replacement against the **existing** read-only arena
(fork again — the weights are already shared memory, so a restart costs an
interpreter, not a model load), re-dispatches the dead worker's in-flight
requests to live workers (bounded retries with exponential backoff), and —
if the restart budget is exhausted and no workers remain — degrades to
in-process execution rather than failing traffic.  On platforms without
``fork`` the pool serves in-process with the same API from the start.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
import time
import traceback
import warnings
from concurrent.futures import Future

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.parallel import SharedArena, fork_available
from repro.serve.artifact import LoadedModel, load_model
from repro.sparse.inference import SparseConv2d, SparseLinear

__all__ = ["ServingPool", "share_model_weights", "unshare_model_weights"]


def share_model_weights(model: Module) -> SharedArena | None:
    """Move every compiled layer's weight arrays into one shared arena.

    The layers' scipy matrices are re-pointed at read-only arena views in
    place; the returned arena owns the segment (``close`` it when done).
    Returns ``None`` when the model has no compiled sparse layers.
    """
    packed: dict[str, np.ndarray] = {}
    layers: list[tuple[str, Module]] = []
    for name, module in model.named_modules():
        if not isinstance(module, (SparseLinear, SparseConv2d)):
            continue
        layers.append((name, module))
        for orient, matrix in module.shared_matrices():
            packed[f"{name}.{orient}.data"] = matrix.data
            packed[f"{name}.{orient}.indices"] = matrix.indices
            packed[f"{name}.{orient}.indptr"] = matrix.indptr
        if module.bias_data is not None:
            packed[f"{name}.bias"] = module.bias_data
    if not layers:
        return None
    arena = SharedArena(packed, readonly=True)
    for name, module in layers:
        for orient, matrix in module.shared_matrices():
            matrix.data = arena.view(f"{name}.{orient}.data")
            matrix.indices = arena.view(f"{name}.{orient}.indices")
            matrix.indptr = arena.view(f"{name}.{orient}.indptr")
        if module.bias_data is not None:
            module.bias_data = arena.view(f"{name}.bias")
    return arena


def unshare_model_weights(model: Module) -> None:
    """Give every compiled layer back private copies of its weight arrays.

    Must run before the backing arena's ``close()``: that unmaps the shared
    segment, and any scipy matrix still pointing into it would fault on
    next use.  Copying unconditionally is deliberate — it is correct (and
    cheap at serving sparsities) whether or not a given array is a view.
    """
    for _, module in model.named_modules():
        if not isinstance(module, (SparseLinear, SparseConv2d)):
            continue
        for _orient, matrix in module.shared_matrices():
            matrix.data = np.array(matrix.data, copy=True)
            matrix.indices = np.array(matrix.indices, copy=True)
            matrix.indptr = np.array(matrix.indptr, copy=True)
        if module.bias_data is not None:
            module.bias_data = np.array(module.bias_data, copy=True)


def _pool_worker(requests, responses, loaded: LoadedModel, preprocess: bool) -> None:
    """Worker loop: one request (a whole batch) per pipe message."""
    model = loaded.model
    preprocessor = loaded.preprocessor
    try:
        while True:
            try:
                item = requests.recv()
            except (EOFError, OSError):
                return
            if item is None:
                return
            request_id, payload = item
            try:
                batch = np.asarray(payload, dtype=np.float32)
                if preprocess:
                    batch = preprocessor(batch)
                with no_grad():
                    out = model(Tensor(batch))
                responses.send((request_id, np.asarray(out.data), None))
            except BaseException:
                responses.send((request_id, None, traceback.format_exc()))
    finally:
        try:
            responses.close()
        except OSError:
            pass


class _Entry:
    """One dispatched request batch the parent is accountable for."""

    __slots__ = ("request_id", "payload", "future", "attempts")

    def __init__(self, request_id: int, payload, future: Future):
        self.request_id = request_id
        self.payload = payload
        self.future = future
        self.attempts = 0


class _WorkerHandle:
    """Parent-side record of one forked worker and the requests it holds."""

    __slots__ = ("worker_id", "process", "send", "recv", "send_lock", "inflight", "alive")

    def __init__(self, worker_id: int, process, send, recv):
        self.worker_id = worker_id
        self.process = process
        self.send = send  # parent writes requests here
        self.recv = recv  # parent reads responses here
        self.send_lock = threading.Lock()
        self.inflight: dict[int, _Entry] = {}
        self.alive = True


class ServingPool:
    """N supervised forked serving workers sharing one read-only arena.

    Parameters
    ----------
    source:
        Artifact path, or an already-:func:`~repro.serve.artifact.load_model`-ed
        :class:`LoadedModel`.
    n_workers:
        Forked serving processes.  ``0`` (or a platform without fork)
        serves in-process with the same API.
    max_restarts:
        Total worker respawns the supervisor may perform over the pool's
        lifetime.  Once exhausted, further deaths shrink the pool; when no
        workers remain the pool degrades to in-process execution instead
        of failing traffic.
    max_redispatch:
        Bounded retries per request: how many times a request held by a
        dying worker is re-dispatched before its future fails.
    redispatch_backoff_s:
        Base of the exponential backoff between re-dispatches of the same
        request (doubles per attempt, capped at 0.2 s).

    The unit of work is one *request batch*: ``predict``/``submit`` take a
    batch of examples and the pool parallelizes across concurrent requests
    (pair it with a :class:`~repro.serve.batching.BatchingQueue` upstream
    to also coalesce single-example traffic).

    ``preprocess=False`` skips the artifact's preprocessing spec in the
    workers — pass it when an upstream :class:`~repro.serve.Server` already
    preprocessed the batch (applying mean/std twice would corrupt it).
    """

    def __init__(
        self,
        source,
        n_workers: int = 2,
        verify: bool = True,
        preprocess: bool = True,
        *,
        max_restarts: int = 3,
        max_redispatch: int = 2,
        redispatch_backoff_s: float = 0.01,
    ):
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        if max_redispatch < 0:
            raise ValueError(f"max_redispatch must be >= 0, got {max_redispatch}")
        if isinstance(source, LoadedModel):
            self.loaded = source
        else:
            self.loaded = load_model(source, verify=verify)
        if n_workers > 0 and not fork_available():
            warnings.warn(
                "fork start method unavailable; ServingPool falls back to "
                "in-process serving",
                RuntimeWarning,
                stacklevel=2,
            )
            n_workers = 0
        self.n_workers = int(n_workers)
        self.preprocess = bool(preprocess)
        self.max_restarts = int(max_restarts)
        self.max_redispatch = int(max_redispatch)
        self.redispatch_backoff_s = float(redispatch_backoff_s)
        self.arena = share_model_weights(self.loaded.model) if n_workers > 0 else None
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._forward_lock = threading.Lock()  # serializes in-process forwards
        self._closed = False
        self._restarts = 0
        self._deaths = 0
        self._redispatched = 0
        self._dropped = 0
        self._worker_seq = itertools.count()
        self._workers: list[_WorkerHandle] = []
        self._supervisor = None
        self._wake_r = None
        self._wake_w = None
        if self.n_workers > 0:
            self._ctx = mp.get_context("fork")
            self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
            for _ in range(self.n_workers):
                self._workers.append(self._spawn_worker())
            self._supervisor = threading.Thread(
                target=self._supervise,
                name="repro-serve-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        """Fork one worker against the existing arena; parent keeps its ends.

        The parent-side copies of the child's pipe ends are closed right
        after the fork so the child is the *only* writer of its response
        pipe — that is what turns a SIGKILL into a clean EOF in the
        supervisor instead of a silent hang.
        """
        worker_id = next(self._worker_seq)
        request_recv, request_send = self._ctx.Pipe(duplex=False)
        response_recv, response_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_pool_worker,
            args=(request_recv, response_send, self.loaded, self.preprocess),
            name=f"repro-serve-{worker_id}",
            daemon=True,
        )
        process.start()
        request_recv.close()
        response_send.close()
        return _WorkerHandle(worker_id, process, request_send, response_recv)

    def worker_pids(self) -> list[int]:
        """PIDs of the currently live workers (chaos tooling hook)."""
        with self._lock:
            return [h.process.pid for h in self._workers if h.alive]

    def live_workers(self) -> int:
        with self._lock:
            return sum(1 for h in self._workers if h.alive)

    @property
    def degraded(self) -> bool:
        """True when no forked workers remain and requests run in-process."""
        if self.n_workers == 0:
            return False
        with self._lock:
            return not any(h.alive for h in self._workers)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, batch) -> Future:
        """Dispatch one request batch; resolves to its output array."""
        future: Future = Future()
        if self.n_workers == 0:
            self._run_inprocess(_Entry(-1, np.asarray(batch), future))
            return future
        with self._lock:
            if self._closed:
                raise RuntimeError("ServingPool is closed")
            request_id = next(self._ids)
        entry = _Entry(request_id, np.asarray(batch), future)
        self._dispatch(entry)
        return future

    def predict(self, batch, timeout: float | None = None) -> np.ndarray:
        """Blocking request; raises the worker's error on failure."""
        return self.submit(batch).result(timeout=timeout)

    def _pick_worker_locked(self) -> _WorkerHandle | None:
        """Least-loaded live worker, or None (degraded / all dead)."""
        best: _WorkerHandle | None = None
        for handle in self._workers:
            if not handle.alive:
                continue
            if best is None or len(handle.inflight) < len(best.inflight):
                best = handle
        return best

    def _dispatch(self, entry: _Entry) -> None:
        """Send ``entry`` to a live worker, or run it in-process.

        The send happens *outside* the pool lock (a full pipe must not
        stall every other submit), so a worker picked here can die before
        the send lands: ownership is resolved through ``handle.inflight``
        — whichever of this thread and the supervisor pops the entry first
        is responsible for it.
        """
        entry.attempts += 1
        while True:
            with self._lock:
                handle = self._pick_worker_locked()
                if handle is not None:
                    handle.inflight[entry.request_id] = entry
            if handle is None:
                self._run_inprocess(entry)
                return
            try:
                with handle.send_lock:
                    handle.send.send((entry.request_id, entry.payload))
                return
            except (OSError, ValueError):
                # Worker died under us.  If the supervisor already claimed
                # the entry (popped it from inflight), it owns the retry;
                # otherwise reclaim it and try the next worker.
                with self._lock:
                    owned = handle.inflight.pop(entry.request_id, None) is not None
                if not owned:
                    return

    def _run_inprocess(self, entry: _Entry) -> None:
        """Serve one request on the caller's thread (fallback / degraded)."""
        try:
            batch = np.asarray(entry.payload, dtype=np.float32)
            if self.preprocess:
                batch = self.loaded.preprocessor(batch)
            with self._forward_lock, no_grad():
                out = self.loaded.model(Tensor(batch))
            entry.future.set_result(np.asarray(out.data))
        except BaseException as exc:
            entry.future.set_exception(exc)

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        """Collect responses and keep the worker fleet alive.

        One thread does both jobs because they share the same signal: a
        readable response pipe is either a result to deliver or an EOF —
        and an EOF *is* the death notification, delivered exactly when the
        kernel tears down the dead worker's last pipe end.
        """
        from multiprocessing.connection import wait as connection_wait

        while True:
            with self._lock:
                live = {h.recv: h for h in self._workers if h.alive}
                if self._closed and not live:
                    return
            ready = connection_wait(list(live) + [self._wake_r])
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        self._wake_r.recv_bytes()
                    except (EOFError, OSError):
                        pass
                    continue
                handle = live[conn]
                try:
                    message = conn.recv()
                except Exception:
                    # EOFError/OSError: the worker's pipe end is gone.  Any
                    # other failure (e.g. UnpicklingError from a partial
                    # message written right up to a SIGKILL) means the
                    # stream's framing is lost for good — same recovery:
                    # declare the worker dead and re-dispatch its requests.
                    self._on_worker_death(handle)
                    continue
                self._resolve(handle, message)

    def _resolve(self, handle: _WorkerHandle, message) -> None:
        request_id, value, error = message
        with self._lock:
            entry = handle.inflight.pop(request_id, None)
        if entry is None:
            return
        if error is not None:
            entry.future.set_exception(RuntimeError(f"serving worker failed:\n{error}"))
        else:
            entry.future.set_result(value)

    def _on_worker_death(self, handle: _WorkerHandle) -> None:
        """Supervised restart: reap, respawn, re-dispatch, or degrade."""
        with self._lock:
            if not handle.alive:
                return
            handle.alive = False
            held = list(handle.inflight.values())
            handle.inflight.clear()
            closed = self._closed
        for conn in (handle.send, handle.recv):
            try:
                conn.close()
            except OSError:
                pass
        # Reap: the process is dead (we got EOF) or wedged with its pipes
        # gone — either way it must not linger as a zombie.
        handle.process.join(timeout=0.5)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join()
        if closed:
            for entry in held:
                entry.future.set_exception(RuntimeError("ServingPool closed mid-request"))
            return
        self._deaths += 1
        respawned = False
        with self._lock:
            may_restart = self._restarts < self.max_restarts and not self._closed
        if may_restart:
            try:
                replacement = self._spawn_worker()
            except OSError as exc:  # fork failure: out of pids/memory
                warnings.warn(
                    f"ServingPool could not respawn a worker ({exc}); "
                    "continuing with a smaller pool",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                with self._lock:
                    self._restarts += 1
                    self._workers.append(replacement)
                respawned = True
        if not respawned and not any(h.alive for h in self._workers):
            warnings.warn(
                "ServingPool restart budget exhausted and no workers remain; "
                "degrading to in-process execution",
                RuntimeWarning,
                stacklevel=2,
            )
        # Re-dispatch what the dead worker held: bounded retries with
        # exponential backoff.  A request that keeps landing on dying
        # workers fails loudly instead of cycling forever.
        for entry in held:
            if entry.attempts > self.max_redispatch:
                self._dropped += 1
                entry.future.set_exception(
                    RuntimeError(
                        f"request re-dispatched {entry.attempts - 1} time(s) after "
                        "worker deaths and failed; giving up"
                    )
                )
                continue
            backoff = min(0.2, self.redispatch_backoff_s * (2.0 ** (entry.attempts - 1)))
            if backoff > 0:
                time.sleep(backoff)
            self._redispatched += 1
            self._dispatch(entry)

    # ------------------------------------------------------------------
    # introspection & lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Supervision counters (deaths, restarts, re-dispatches, capacity)."""
        with self._lock:
            alive = sum(1 for h in self._workers if h.alive)
            inflight = sum(len(h.inflight) for h in self._workers)
            return {
                "n_workers": self.n_workers,
                "live_workers": alive,
                "inflight": inflight,
                "deaths": self._deaths,
                "restarts": self._restarts,
                "redispatched": self._redispatched,
                "dropped": self._dropped,
                "degraded": self.n_workers > 0 and alive == 0,
            }

    def close(self) -> None:
        """Stop workers, fail unresolved futures, release the arena."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._workers)
        if self.n_workers > 0:
            for handle in handles:
                if not handle.alive:
                    continue
                try:
                    with handle.send_lock:
                        handle.send.send(None)
                except (OSError, ValueError):
                    pass
            # Workers drain the requests already in their pipes, answer
            # them, then exit; their EOFs walk the supervisor out once the
            # last one is gone.
            for handle in handles:
                handle.process.join(timeout=10.0)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join()
            try:
                self._wake_w.send_bytes(b"x")
            except (OSError, ValueError):
                pass
            if self._supervisor is not None:
                self._supervisor.join(timeout=10.0)
            for conn in (self._wake_r, self._wake_w):
                try:
                    conn.close()
                except OSError:
                    pass
            leftover: list[Future] = []
            with self._lock:
                for handle in self._workers:
                    leftover.extend(entry.future for entry in handle.inflight.values())
                    handle.inflight.clear()
            for future in leftover:
                if not future.done():
                    future.set_exception(RuntimeError("ServingPool closed mid-request"))
        if self.arena is not None:
            # The arena is about to be unmapped; the (possibly caller-owned)
            # LoadedModel must get private weight copies back first, or its
            # next predict would fault on the dead mapping.
            unshare_model_weights(self.loaded.model)
            self.arena.close()
            self.arena = None

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
