"""Multi-process serving pool over one shared read-only weight arena.

One Python process can only push one core's worth of CSR matmuls.  The pool
forks ``n_workers`` serving processes that all read the *same* physical
copy of the compiled weights: the parent packs every sparse layer's CSR
components (both orientations) and bias into a single
:class:`~repro.parallel.shm.SharedArena`, re-points the layer matrices at
read-only views of it, and forks.  At the paper's 90–98% sparsities the
arena is a fraction of the dense weight bytes, and the workers add no
per-process weight copies at all — the scaling cost of one more worker is
its Python interpreter, not the model.

Requests travel over a shared queue (natural load balancing: an idle
worker picks up the next request), responses return through a collector
thread that resolves per-request futures.  On platforms without ``fork``
the pool degrades to in-process serving with the same API.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
import traceback
import warnings
from concurrent.futures import Future

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.parallel import SharedArena, fork_available
from repro.serve.artifact import LoadedModel, load_model
from repro.sparse.inference import SparseConv2d, SparseLinear

__all__ = ["ServingPool", "share_model_weights", "unshare_model_weights"]


def share_model_weights(model: Module) -> SharedArena | None:
    """Move every compiled layer's weight arrays into one shared arena.

    The layers' scipy matrices are re-pointed at read-only arena views in
    place; the returned arena owns the segment (``close`` it when done).
    Returns ``None`` when the model has no compiled sparse layers.
    """
    packed: dict[str, np.ndarray] = {}
    layers: list[tuple[str, Module]] = []
    for name, module in model.named_modules():
        if not isinstance(module, (SparseLinear, SparseConv2d)):
            continue
        layers.append((name, module))
        for orient, matrix in module.shared_matrices():
            packed[f"{name}.{orient}.data"] = matrix.data
            packed[f"{name}.{orient}.indices"] = matrix.indices
            packed[f"{name}.{orient}.indptr"] = matrix.indptr
        if module.bias_data is not None:
            packed[f"{name}.bias"] = module.bias_data
    if not layers:
        return None
    arena = SharedArena(packed, readonly=True)
    for name, module in layers:
        for orient, matrix in module.shared_matrices():
            matrix.data = arena.view(f"{name}.{orient}.data")
            matrix.indices = arena.view(f"{name}.{orient}.indices")
            matrix.indptr = arena.view(f"{name}.{orient}.indptr")
        if module.bias_data is not None:
            module.bias_data = arena.view(f"{name}.bias")
    return arena


def unshare_model_weights(model: Module) -> None:
    """Give every compiled layer back private copies of its weight arrays.

    Must run before the backing arena's ``close()``: that unmaps the shared
    segment, and any scipy matrix still pointing into it would fault on
    next use.  Copying unconditionally is deliberate — it is correct (and
    cheap at serving sparsities) whether or not a given array is a view.
    """
    for _, module in model.named_modules():
        if not isinstance(module, (SparseLinear, SparseConv2d)):
            continue
        for _orient, matrix in module.shared_matrices():
            matrix.data = np.array(matrix.data, copy=True)
            matrix.indices = np.array(matrix.indices, copy=True)
            matrix.indptr = np.array(matrix.indptr, copy=True)
        if module.bias_data is not None:
            module.bias_data = np.array(module.bias_data, copy=True)


def _pool_worker(requests, responses, loaded: LoadedModel, preprocess: bool) -> None:
    """Worker loop: one request (a whole batch) per queue item."""
    model = loaded.model
    preprocessor = loaded.preprocessor
    while True:
        item = requests.get()
        if item is None:
            return
        request_id, payload = item
        try:
            batch = np.asarray(payload, dtype=np.float32)
            if preprocess:
                batch = preprocessor(batch)
            with no_grad():
                out = model(Tensor(batch))
            responses.put((request_id, np.asarray(out.data), None))
        except BaseException:
            responses.put((request_id, None, traceback.format_exc()))


class ServingPool:
    """N forked serving workers sharing one read-only weight arena.

    Parameters
    ----------
    source:
        Artifact path, or an already-:func:`~repro.serve.artifact.load_model`-ed
        :class:`LoadedModel`.
    n_workers:
        Forked serving processes.  ``0`` (or a platform without fork)
        serves in-process with the same API.

    The unit of work is one *request batch*: ``predict``/``submit`` take a
    batch of examples and the pool parallelizes across concurrent requests
    (pair it with a :class:`~repro.serve.batching.BatchingQueue` upstream
    to also coalesce single-example traffic).

    ``preprocess=False`` skips the artifact's preprocessing spec in the
    workers — pass it when an upstream :class:`~repro.serve.Server` already
    preprocessed the batch (applying mean/std twice would corrupt it).
    """

    def __init__(self, source, n_workers: int = 2, verify: bool = True, preprocess: bool = True):
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        if isinstance(source, LoadedModel):
            self.loaded = source
        else:
            self.loaded = load_model(source, verify=verify)
        if n_workers > 0 and not fork_available():
            warnings.warn(
                "fork start method unavailable; ServingPool falls back to "
                "in-process serving",
                RuntimeWarning,
                stacklevel=2,
            )
            n_workers = 0
        self.n_workers = int(n_workers)
        self.preprocess = bool(preprocess)
        self.arena = share_model_weights(self.loaded.model) if n_workers > 0 else None
        self._ids = itertools.count()
        self._inflight: dict[int, Future] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._broken = False
        self._workers: list = []
        self._collector = None
        self._monitor = None
        if self.n_workers > 0:
            ctx = mp.get_context("fork")
            self._requests = ctx.SimpleQueue()
            self._responses = ctx.SimpleQueue()
            for worker_id in range(self.n_workers):
                process = ctx.Process(
                    target=_pool_worker,
                    args=(self._requests, self._responses, self.loaded, self.preprocess),
                    name=f"repro-serve-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._workers.append(process)
            self._collector = threading.Thread(
                target=self._collect,
                name="repro-serve-collector",
                daemon=True,
            )
            self._collector.start()
            self._monitor = threading.Thread(
                target=self._watch_workers,
                name="repro-serve-monitor",
                daemon=True,
            )
            self._monitor.start()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, batch) -> Future:
        """Dispatch one request batch; resolves to its output array."""
        future: Future = Future()
        if self.n_workers == 0:
            try:
                batch = np.asarray(batch, dtype=np.float32)
                if self.preprocess:
                    batch = self.loaded.preprocessor(batch)
                with no_grad():
                    out = self.loaded.model(Tensor(batch))
                future.set_result(np.asarray(out.data))
            except BaseException as exc:
                future.set_exception(exc)
            return future
        with self._lock:
            if self._closed:
                raise RuntimeError("ServingPool is closed")
            if self._broken:
                raise RuntimeError("ServingPool is broken (a worker died); recreate it")
            request_id = next(self._ids)
            self._inflight[request_id] = future
        self._requests.put((request_id, np.asarray(batch)))
        return future

    def predict(self, batch, timeout: float | None = None) -> np.ndarray:
        """Blocking request; raises the worker's error on failure."""
        return self.submit(batch).result(timeout=timeout)

    def _collect(self) -> None:
        while True:
            item = self._responses.get()
            if item is None:
                return
            request_id, value, error = item
            with self._lock:
                future = self._inflight.pop(request_id, None)
            if future is None:
                continue
            if error is not None:
                future.set_exception(RuntimeError(f"serving worker failed:\n{error}"))
            else:
                future.set_result(value)

    def _watch_workers(self) -> None:
        """Fail fast when a worker dies mid-request instead of hanging.

        A request taken by a worker that gets OOM-killed (or segfaults)
        would otherwise leave its future unresolved forever — and with the
        shared request queue there is no record of which worker held it.
        On any unexpected worker death the pool declares itself broken:
        every in-flight future fails and new submits are rejected.
        """
        from multiprocessing.connection import wait as connection_wait

        sentinels = [process.sentinel for process in self._workers]
        while True:
            dead = connection_wait(sentinels, timeout=0.5)
            with self._lock:
                if self._closed:
                    return
                if not dead:
                    continue
                self._broken = True
                leftover = list(self._inflight.values())
                self._inflight.clear()
            for future in leftover:
                future.set_exception(
                    RuntimeError(
                        "serving worker died unexpectedly; pool is broken "
                        "(in-flight requests aborted)"
                    )
                )
            return

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, fail unresolved futures, release the arena."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            broken = self._broken
        if self.n_workers > 0:
            if not broken:
                for _ in self._workers:
                    self._requests.put(None)
            # A worker SIGKILLed mid-get can die holding the shared queue's
            # reader lock, deadlocking its siblings on the sentinel — so the
            # graceful join is bounded and stragglers are killed outright.
            for process in self._workers:
                process.join(timeout=0.5 if broken else 10.0)
                if process.is_alive():
                    process.kill()
                    process.join()
            if not broken:
                # All workers exited cleanly, so the response queue's write
                # lock is free and the collector can be stopped in-band.
                self._responses.put(None)
                self._collector.join()
            # else: the dead worker may hold the response queue's write
            # lock; the daemon collector is abandoned rather than joined.
            if self._monitor is not None:
                self._monitor.join()
            with self._lock:
                leftover = list(self._inflight.values())
                self._inflight.clear()
            for future in leftover:
                future.set_exception(RuntimeError("ServingPool closed mid-request"))
        if self.arena is not None:
            # The arena is about to be unmapped; the (possibly caller-owned)
            # LoadedModel must get private weight copies back first, or its
            # next predict would fault on the dead mapping.
            unshare_model_weights(self.loaded.model)
            self.arena.close()
            self.arena = None

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
