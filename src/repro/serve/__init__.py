"""Sparse inference serving: artifacts, micro-batching, worker pools, HTTP.

The deployment half of the reproduction (ROADMAP north star: serve the
compiled sparse models, not just train them).  The pipeline is::

    train (MaskedModel + DST-EE)
      -> compile_sparse_model            # repro.sparse.inference, CSR kernels
      -> export_model(...)               # versioned, fingerprinted artifact
      -> load_model / Server             # in-process predict + micro-batching
      -> ServingPool / make_http_server  # multi-process + JSON frontend

See ``docs/serving.md`` for the walkthrough and
``benchmarks/bench_serve.py`` for the latency/throughput numbers.
"""

from repro.serve.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    LoadedModel,
    export_model,
    load_model,
    read_manifest,
)
from repro.serve.batching import BatchingQueue, BatchingStats
from repro.serve.http import make_http_server, serve_forever
from repro.serve.pool import ServingPool, share_model_weights, unshare_model_weights
from repro.serve.preprocess import Preprocessor
from repro.serve.server import Server

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "BatchingQueue",
    "BatchingStats",
    "LoadedModel",
    "Preprocessor",
    "Server",
    "ServingPool",
    "export_model",
    "load_model",
    "make_http_server",
    "read_manifest",
    "serve_forever",
    "share_model_weights",
    "unshare_model_weights",
]
