"""Sparse inference serving: artifacts, micro-batching, worker pools, HTTP.

The deployment half of the reproduction (ROADMAP north star: serve the
compiled sparse models, not just train them).  The pipeline is::

    train (MaskedModel + DST-EE)
      -> compile_sparse_model            # repro.sparse.inference, CSR kernels
      -> export_model(...)               # versioned, fingerprinted artifact
      -> load_model / Server             # in-process predict + micro-batching
      -> ServingPool / make_http_server  # multi-process + JSON frontend
      -> ModelRouter                     # named models, zero-downtime hot-swap

Resilience layers (see ``docs/serving.md`` -> Resilience):
:class:`AdmissionController` sheds overload at the door,
:class:`ServingPool` supervises and restarts dead workers,
:class:`RetryingClient` retries shed/failed requests with backoff, and
:mod:`repro.serve.faults` injects deterministic faults for the chaos
harness (``scripts/chaos_smoke.py``).
"""

from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    LoadedModel,
    export_model,
    load_model,
    read_manifest,
)
from repro.serve.batching import BatchingQueue, BatchingStats
from repro.serve.client import DeadlineExceeded, RetryingClient, ServerError
from repro.serve.faults import (
    FaultInjector,
    FaultSchedule,
    corrupt_artifact,
    malformed_payloads,
)
from repro.serve.http import make_http_server, serve_forever
from repro.serve.pool import ServingPool, share_model_weights, unshare_model_weights
from repro.serve.preprocess import Preprocessor
from repro.serve.router import HotSwapError, ModelRouter, RouterDeployment
from repro.serve.server import Server

__all__ = [
    "ARTIFACT_VERSION",
    "AdmissionController",
    "AdmissionRejected",
    "ArtifactError",
    "BatchingQueue",
    "BatchingStats",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultSchedule",
    "HotSwapError",
    "LoadedModel",
    "ModelRouter",
    "Preprocessor",
    "RetryingClient",
    "RouterDeployment",
    "Server",
    "ServerError",
    "ServingPool",
    "corrupt_artifact",
    "export_model",
    "load_model",
    "make_http_server",
    "malformed_payloads",
    "read_manifest",
    "serve_forever",
    "share_model_weights",
    "unshare_model_weights",
]
