"""Retrying HTTP client for the JSON serving frontend.

The server side can shed load (429/503 + ``Retry-After``), miss a deadline
(504), or briefly refuse connections during a restart — all *retryable*
conditions a production client should absorb instead of surfacing.
:class:`RetryingClient` wraps ``urllib`` with the standard loop:

* exponential backoff with full jitter (seeded, so tests and the chaos
  smoke are reproducible),
* ``Retry-After`` honored when the server provides it (clamped into the
  backoff bounds — a confused server cannot park the client for minutes),
* a hard per-call deadline that caps the whole retry loop: the client
  never sleeps past the time budget, and raises :class:`DeadlineExceeded`
  with the last underlying error attached,
* no retries on non-retryable 4xx (a malformed request stays malformed).

This is the client the smoke scripts and the trace benchmark use; it is
deliberately stdlib-only like the rest of the serving stack.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import numpy as np

__all__ = ["DeadlineExceeded", "RetryingClient", "ServerError"]

_RETRYABLE_STATUS = frozenset({429, 500, 502, 503, 504})


class DeadlineExceeded(RuntimeError):
    """The retry loop ran out of time budget; ``last_error`` has the cause."""

    def __init__(self, detail: str, last_error: BaseException | None = None):
        super().__init__(detail)
        self.last_error = last_error


class ServerError(RuntimeError):
    """A non-retryable HTTP error response (e.g. 400/404).

    ``status`` and the decoded JSON ``payload`` (when the body was JSON)
    are attached for callers that branch on them.
    """

    def __init__(self, status: int, payload: dict | None, detail: str):
        super().__init__(detail)
        self.status = status
        self.payload = payload


class RetryingClient:
    """HTTP client with bounded, jittered, deadline-capped retries.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a serving frontend.
    max_attempts:
        Total tries per call (first attempt + retries).
    base_backoff_s / max_backoff_s:
        Exponential backoff bounds; the actual sleep is uniformly jittered
        in ``(backoff/2, backoff]`` and never exceeds the remaining
        deadline.  A server ``Retry-After`` overrides the exponential term,
        clamped to ``max_backoff_s``.
    deadline_s:
        Default per-call time budget (overridable per call).
    rng:
        Seeded generator for the jitter (reproducible chaos runs).
    """

    def __init__(
        self,
        base_url: str,
        *,
        max_attempts: int = 5,
        base_backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        deadline_s: float = 30.0,
        rng: np.random.Generator | None = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.base_url = base_url.rstrip("/")
        self.max_attempts = int(max_attempts)
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.deadline_s = float(deadline_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        self.stats = {"requests": 0, "attempts": 0, "retries": 0, "rejected": 0}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict(self, inputs, *, model: str | None = None, deadline_s: float | None = None) -> dict:
        """POST /predict; returns the decoded JSON payload on success."""
        body: dict = {"inputs": np.asarray(inputs, dtype=np.float32).tolist()}
        if model is not None:
            body["model"] = model
        return self.request("POST", "/predict", body=body, deadline_s=deadline_s)

    def get(self, path: str, *, deadline_s: float | None = None) -> dict:
        return self.request("GET", path, deadline_s=deadline_s)

    def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """One logical call = up to ``max_attempts`` HTTP attempts."""
        budget = self.deadline_s if deadline_s is None else float(deadline_s)
        deadline = time.perf_counter() + budget
        data = None if body is None else json.dumps(body).encode()
        self.stats["requests"] += 1
        last_error: BaseException | None = None
        for attempt in range(self.max_attempts):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            self.stats["attempts"] += 1
            request = urllib.request.Request(
                self.base_url + path,
                data=data,
                headers={"Content-Type": "application/json"},
                method=method,
            )
            retry_after = None
            try:
                with urllib.request.urlopen(request, timeout=max(0.05, remaining)) as response:
                    return json.loads(response.read())
            except urllib.error.HTTPError as error:
                payload = self._json_body(error)
                if error.code not in _RETRYABLE_STATUS:
                    detail = (payload or {}).get("error", error.reason)
                    raise ServerError(
                        error.code, payload, f"HTTP {error.code}: {detail}"
                    ) from None
                if error.code in (429, 503):
                    self.stats["rejected"] += 1
                retry_after = self._retry_after_hint(error, payload)
                last_error = error
            except (urllib.error.URLError, ConnectionError, socket.timeout, TimeoutError) as error:
                last_error = error
            if attempt + 1 >= self.max_attempts:
                break
            self.stats["retries"] += 1
            self._sleep(attempt, retry_after, deadline)
        raise DeadlineExceeded(
            f"{method} {path} failed after {self.stats['attempts']} attempt(s) "
            f"within {budget:.2f} s (last error: {last_error!r})",
            last_error,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _json_body(error: urllib.error.HTTPError) -> dict | None:
        try:
            return json.loads(error.read())
        except (ValueError, OSError):
            return None

    def _retry_after_hint(self, error, payload: dict | None) -> float | None:
        header = error.headers.get("Retry-After") if error.headers else None
        candidate = header if header is not None else (payload or {}).get("retry_after")
        try:
            return float(candidate) if candidate is not None else None
        except (TypeError, ValueError):
            return None

    def _sleep(self, attempt: int, retry_after: float | None, deadline: float) -> None:
        backoff = min(self.max_backoff_s, self.base_backoff_s * (2.0**attempt))
        if retry_after is not None:
            backoff = min(self.max_backoff_s, max(retry_after, self.base_backoff_s))
        # Full jitter in (backoff/2, backoff]: desynchronizes retry storms.
        delay = backoff * (0.5 + 0.5 * float(self._rng.random()))
        remaining = deadline - time.perf_counter()
        if remaining > 0:
            time.sleep(min(delay, remaining))
