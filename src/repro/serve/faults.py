"""Fault injection for the serving stack: seeded, deterministic chaos.

Resilience claims that are not exercised are wishes.  This module gives the
chaos smoke (``scripts/chaos_smoke.py``), the trace benchmark
(``benchmarks/bench_serve.py``), and the unit tests one shared, *seeded*
way to produce the faults production traffic produces:

* **worker_kill** — SIGKILL a serving-pool worker mid-stream (the pool's
  supervisor must respawn it and re-dispatch the requests it held).
* **slow_batch** — stall a batch inside the worker (surfaces as a deadline
  miss upstream; the HTTP layer must answer 504, not a bare 500).
* **corrupt_artifact** — flip bytes in a copied artifact file (the loader's
  fingerprint check — and therefore the router's canary — must refuse it).
* **malformed_request** — a deterministic zoo of broken HTTP bodies (the
  frontend must answer 400 to each without poisoning healthy neighbors).

Everything is driven by :class:`FaultSchedule`: a seeded mapping from fault
point to the exact invocation indices at which it fires, so a chaos run is
reproducible bit for bit from its seed.  :class:`FaultInjector` is the
runtime half — code under test calls ``injector.fire("slow_batch")`` at its
fault point and acts only when the schedule says so.  A ``FaultInjector()``
with no schedule never fires, so leaving the hooks in production paths
costs one dict lookup.
"""

from __future__ import annotations

import io
import json
import pathlib
import time
import zlib

import numpy as np

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "corrupt_artifact",
    "malformed_payloads",
]


class FaultSchedule:
    """Deterministic fault plan: ``{fault point: sorted invocation indices}``.

    Build one explicitly (``FaultSchedule({"slow_batch": [3, 17]})``) or
    sample one with :meth:`generate`.  Indices count the calls to
    :meth:`FaultInjector.fire` for that point, starting at 0.
    """

    def __init__(self, plan: dict[str, list[int]] | None = None, params: dict | None = None):
        self.plan = {
            str(point): sorted(int(i) for i in indices)
            for point, indices in (plan or {}).items()
        }
        self.params = dict(params or {})

    @classmethod
    def generate(
        cls,
        seed: int,
        n_events: int,
        *,
        rates: dict[str, float],
        params: dict | None = None,
    ) -> "FaultSchedule":
        """Sample a schedule over ``n_events`` invocations per fault point.

        ``rates`` maps each fault point to its per-invocation firing
        probability; each point gets an independent seeded stream, so adding
        a point never reshuffles the others.
        """
        plan: dict[str, list[int]] = {}
        for point in sorted(rates):
            rng = np.random.default_rng([seed, zlib.crc32(point.encode())])
            hits = np.flatnonzero(rng.random(n_events) < rates[point])
            plan[point] = [int(i) for i in hits]
        return cls(plan, params)

    def indices(self, point: str) -> list[int]:
        return list(self.plan.get(point, []))

    def to_json(self) -> str:
        return json.dumps({"plan": self.plan, "params": self.params}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        payload = json.loads(text)
        return cls(payload.get("plan", {}), payload.get("params", {}))


class FaultInjector:
    """Runtime fault points driven by a :class:`FaultSchedule`.

    Each call to :meth:`fire` advances that point's invocation counter and
    reports whether the schedule fires there.  ``fire`` is thread-safe only
    in the sense numpy-free integer ops under the GIL are; callers that
    need exact per-thread schedules should use one injector per thread.
    """

    def __init__(self, schedule: FaultSchedule | None = None):
        self.schedule = schedule or FaultSchedule()
        self._fired: dict[str, int] = {}
        self._calls: dict[str, int] = {}
        self._hit_sets = {
            point: frozenset(indices) for point, indices in self.schedule.plan.items()
        }

    def fire(self, point: str) -> bool:
        """Advance ``point``'s counter; True when the schedule fires here."""
        index = self._calls.get(point, 0)
        self._calls[point] = index + 1
        hits = self._hit_sets.get(point)
        if hits is not None and index in hits:
            self._fired[point] = self._fired.get(point, 0) + 1
            return True
        return False

    def sleep_if(self, point: str, default_ms: float = 50.0) -> bool:
        """Stall for the scheduled duration when ``point`` fires (slow batch)."""
        if not self.fire(point):
            return False
        delay_ms = float(self.schedule.params.get(f"{point}_ms", default_ms))
        time.sleep(delay_ms / 1e3)
        return True

    def counts(self) -> dict:
        """``{point: {"calls": n, "fired": m}}`` for every point seen."""
        points = set(self._calls) | set(self._hit_sets)
        return {
            point: {
                "calls": self._calls.get(point, 0),
                "fired": self._fired.get(point, 0),
            }
            for point in sorted(points)
        }


def corrupt_artifact(path, out_path, *, seed: int = 0, n_flips: int = 64) -> pathlib.Path:
    """Copy the artifact at ``path`` to ``out_path`` with corrupted weights.

    The corruption is *semantic*, not structural: the npz is re-packed with
    ``n_flips`` bytes of one weight array XOR-flipped while the stored
    manifest (and its fingerprint) is kept verbatim.  The copy therefore
    still parses as a perfectly valid archive — raw byte flips would trip
    the zip CRC first — and the only thing standing between the corrupted
    weights and production traffic is the artifact fingerprint check
    (``load_model(verify=True)``), which is exactly the gate under test.
    """
    path = pathlib.Path(path)
    out_path = pathlib.Path(out_path)
    with np.load(path, allow_pickle=False) as archive:
        entries = {key: np.array(archive[key], copy=True) for key in archive.files}
    rng = np.random.default_rng(seed)
    # Only float payloads: flipped value bytes stay loadable (the point is
    # garbage *predictions*, caught by the fingerprint), whereas a flipped
    # CSR index array would crash matrix construction outright.
    victims = [
        key
        for key in sorted(entries)
        if not key.startswith("__")
        and entries[key].nbytes > 0
        and entries[key].dtype.kind == "f"
    ]
    if not victims:
        raise ValueError(f"{path} has no weight arrays to corrupt")
    victim = victims[int(rng.integers(len(victims)))]
    blob = bytearray(entries[victim].tobytes())
    for offset in rng.integers(0, len(blob), size=n_flips):
        blob[int(offset)] ^= 0xFF
    entries[victim] = np.frombuffer(bytes(blob), dtype=entries[victim].dtype).reshape(
        entries[victim].shape
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **entries)
    out_path.write_bytes(buffer.getvalue())
    return out_path


def malformed_payloads(seed: int = 0, n: int = 8) -> list[bytes]:
    """A deterministic zoo of broken ``POST /predict`` bodies.

    Covers the parser's distinct failure classes: not JSON, wrong top-level
    type, missing/empty/ragged ``inputs``, non-numeric examples, and raw
    binary garbage.  The seed only shuffles/extends the garbage entries —
    the structured cases are always present.
    """
    rng = np.random.default_rng(seed)
    zoo: list[bytes] = [
        b"{not json at all",
        b"[]",
        json.dumps({"wrong_key": [[1.0]]}).encode(),
        json.dumps({"inputs": []}).encode(),
        json.dumps({"inputs": "not-a-list"}).encode(),
        json.dumps({"inputs": [["a", "b"], [1.0, 2.0]]}).encode(),
        json.dumps({"inputs": [[1.0, 2.0], [1.0]]}).encode(),
    ]
    while len(zoo) < n:
        zoo.append(bytes(rng.integers(0, 256, size=int(rng.integers(1, 64)), dtype=np.uint8)))
    return zoo[:n]
