"""Admission control: bounded queues and deadline-aware load shedding.

Past saturation an unbounded serving queue converts overload into
unbounded latency: every admitted request waits behind the whole backlog,
so p99 grows without limit while throughput stays pinned at capacity.  The
production fix is to *reject early* — keep the queue depth bounded so the
requests that are admitted see bounded wait, and tell the rest to come
back later (HTTP 429/503 + ``Retry-After``) while the queue is still
cheap to check.

:class:`AdmissionController` implements two rejection rules, evaluated at
submit time before any work is queued:

* **queue bound** — at most ``max_pending`` admitted-but-unfinished
  requests.  The bound caps the wait of the *last* admitted request at
  roughly ``max_pending × service_time``, which is what keeps served p99
  flat past saturation (see the trace section of
  ``benchmarks/bench_serve.py``).
* **deadline check** — a request that arrives with a deadline it cannot
  meet given the current backlog (estimated from an EMA of recent service
  times) is rejected immediately instead of being served a guaranteed
  timeout.

Rejections raise :class:`AdmissionRejected` carrying a ``retry_after``
hint (seconds until the backlog has plausibly drained) that the HTTP
frontend maps to a ``Retry-After`` header and
:class:`~repro.serve.client.RetryingClient` honors.
"""

from __future__ import annotations

import threading
import time

__all__ = ["AdmissionController", "AdmissionRejected"]


class AdmissionRejected(RuntimeError):
    """A request was shed at admission time (queue full / hopeless deadline).

    ``reason`` is ``"queue_full"`` or ``"deadline"``; ``retry_after`` is
    the suggested client backoff in seconds.  The HTTP layer maps
    ``queue_full`` to 429 and ``deadline`` to 503.
    """

    def __init__(self, reason: str, retry_after: float, detail: str):
        super().__init__(detail)
        self.reason = reason
        self.retry_after = float(retry_after)


class AdmissionController:
    """Bounded-depth, deadline-aware admission gate for a serving queue.

    Parameters
    ----------
    max_pending:
        Maximum admitted-but-unfinished requests.  The (max_pending + 1)-th
        concurrent request is rejected with ``reason="queue_full"``.
    ema_alpha:
        Smoothing factor of the per-request service-time EMA used for the
        deadline check and the ``retry_after`` hint.
    min_retry_after / max_retry_after:
        Clamp on the ``retry_after`` hint, so a cold controller never tells
        clients to hammer (0 s) or give up (minutes).

    Usage: ``acquire()`` before enqueueing (raises :class:`AdmissionRejected`
    or returns an admission time), ``release(admitted_at)`` exactly once when
    the request finishes — success, failure, and timeout all count, since
    all of them free a queue slot.
    """

    def __init__(
        self,
        max_pending: int = 256,
        *,
        ema_alpha: float = 0.1,
        min_retry_after: float = 0.05,
        max_retry_after: float = 5.0,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError(f"ema_alpha must be in (0, 1], got {ema_alpha}")
        self.max_pending = int(max_pending)
        self._ema_alpha = float(ema_alpha)
        self._min_retry = float(min_retry_after)
        self._max_retry = float(max_retry_after)
        self._lock = threading.Lock()
        self._pending = 0
        self._ema_service_s = 0.0
        self._admitted = 0
        self._rejected_full = 0
        self._rejected_deadline = 0
        self._completed = 0

    # ------------------------------------------------------------------
    # admission decision
    # ------------------------------------------------------------------
    def _retry_after_locked(self) -> float:
        """Seconds until the current backlog has plausibly drained."""
        estimate = self._pending * self._ema_service_s
        return min(self._max_retry, max(self._min_retry, estimate))

    def _expected_wait_locked(self) -> float:
        """Estimated queueing delay a request admitted now would see."""
        return self._pending * self._ema_service_s

    def acquire(self, deadline_s: float | None = None) -> float:
        """Admit one request or raise :class:`AdmissionRejected`.

        ``deadline_s`` is the request's *remaining* time budget in seconds
        (``None`` = no deadline).  Returns the admission timestamp to pass
        back to :meth:`release`.
        """
        with self._lock:
            if self._pending >= self.max_pending:
                self._rejected_full += 1
                raise AdmissionRejected(
                    "queue_full",
                    self._retry_after_locked(),
                    f"admission queue full ({self._pending}/{self.max_pending} pending)",
                )
            if deadline_s is not None and self._ema_service_s > 0.0:
                expected = self._expected_wait_locked() + self._ema_service_s
                if expected > deadline_s:
                    self._rejected_deadline += 1
                    raise AdmissionRejected(
                        "deadline",
                        self._retry_after_locked(),
                        f"deadline {deadline_s * 1e3:.0f} ms cannot be met "
                        f"(estimated {expected * 1e3:.0f} ms behind "
                        f"{self._pending} pending requests)",
                    )
            self._pending += 1
            self._admitted += 1
        return time.perf_counter()

    def release(self, admitted_at: float) -> None:
        """Mark one admitted request finished and fold in its service time."""
        elapsed = max(0.0, time.perf_counter() - admitted_at)
        with self._lock:
            self._pending = max(0, self._pending - 1)
            self._completed += 1
            if self._ema_service_s == 0.0:
                self._ema_service_s = elapsed
            else:
                alpha = self._ema_alpha
                self._ema_service_s += alpha * (elapsed - self._ema_service_s)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def retry_after(self) -> float:
        """Current client backoff hint in seconds."""
        with self._lock:
            return self._retry_after_locked()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "max_pending": self.max_pending,
                "pending": self._pending,
                "admitted": self._admitted,
                "completed": self._completed,
                "rejected_queue_full": self._rejected_full,
                "rejected_deadline": self._rejected_deadline,
                "ema_service_ms": round(self._ema_service_s * 1e3, 4),
                "retry_after_s": round(self._retry_after_locked(), 4),
            }
