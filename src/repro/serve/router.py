"""Multi-model router: named deployments with zero-downtime hot-swap.

One process, many named models, and — the production-critical part —
replacing the artifact behind a name **without dropping a request**.  The
rollout protocol for ``hot_swap(name, new_artifact)`` is:

1. **Load beside the old.**  The new artifact is loaded (fingerprint
   verified) and given its own :class:`~repro.serve.Server` — and its own
   worker pool when the deployment uses one — while the old deployment
   keeps serving every request that arrives.
2. **Canary.**  A health-check batch runs through the *new* serving path
   end to end; the output must be finite and the right shape (an optional
   reference output may be pinned exactly).  A canary failure — or a
   corrupt artifact caught by the fingerprint check in step 1 — aborts the
   swap: the new model is torn down and the old one never stops serving.
   Rollback is automatic because the flip has not happened yet.
3. **Atomic flip.**  Under the router lock the name is re-pointed at the
   new deployment.  Requests are batched per deployment, so a batch is
   served entirely by one model — the fingerprint a request sees flips
   atomically from old to new, never a mixed batch.
4. **Drain and retire.**  The old deployment's queue is drained (pending
   futures resolve against the old weights) and its pool and queue are
   closed.  Draining happens after the flip, so there is no window where
   neither model accepts traffic.

Submission races are absorbed by a resolve-and-retry loop: a request that
grabbed the old deployment just as it drained gets transparently
re-submitted to the new one.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

import numpy as np

from repro.serve.admission import AdmissionController
from repro.serve.artifact import ArtifactError, LoadedModel, load_model
from repro.serve.pool import ServingPool
from repro.serve.server import Server

__all__ = ["HotSwapError", "ModelRouter", "RouterDeployment"]


class HotSwapError(RuntimeError):
    """A rollout was aborted (bad artifact or failed canary); old model kept."""


class RouterDeployment:
    """One named, versioned serving unit: server (+ optional pool)."""

    def __init__(
        self,
        name: str,
        loaded: LoadedModel,
        *,
        generation: int,
        pool_workers: int = 0,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        admission: AdmissionController | None = None,
        fault_injector=None,
        pool_kwargs: dict | None = None,
    ):
        self.name = name
        self.loaded = loaded
        self.generation = generation
        self.fingerprint = loaded.fingerprint
        self.metadata = loaded.metadata
        self.pool: ServingPool | None = None
        forward = None
        if pool_workers > 0:
            self.pool = ServingPool(
                loaded,
                n_workers=pool_workers,
                preprocess=False,
                **(pool_kwargs or {}),
            )

            def forward(batch, _pool=self.pool):
                # Bounded wait: a wedged worker fails this batch instead of
                # blocking the batching-queue flusher thread forever.
                return _pool.predict(batch, timeout=60.0)

        self.server = Server(
            loaded,
            max_batch=max_batch,
            max_latency_ms=max_latency_ms,
            forward_override=forward,
            admission=admission,
            fault_injector=fault_injector,
        )

    def describe(self) -> dict:
        info = {
            "name": self.name,
            "generation": self.generation,
            "fingerprint": self.fingerprint,
            "metadata": self.metadata,
            "pool_workers": 0 if self.pool is None else self.pool.n_workers,
        }
        if self.pool is not None:
            info["pool"] = self.pool.snapshot()
        return info

    def retire(self) -> None:
        """Drain the queue (pending requests resolve), then close the pool."""
        self.server.drain()
        if self.pool is not None:
            self.pool.close()


class ModelRouter:
    """Route requests to named model deployments; swap them without downtime.

    Parameters
    ----------
    max_batch / max_latency_ms:
        Micro-batching knobs applied to every deployment's server.
    pool_workers:
        Forked workers per deployment (0 = in-process).
    admission:
        One shared :class:`AdmissionController` for the whole router —
        overload protection is a property of the process, not of one model.
    verify:
        Verify artifact fingerprints at (re)load.  Leave on: it is also the
        corrupt-artifact gate of the hot-swap canary.
    canary_atol:
        Tolerance when a hot-swap canary is checked against a pinned
        reference output.
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        pool_workers: int = 0,
        admission: AdmissionController | None = None,
        verify: bool = True,
        fault_injector=None,
        canary_atol: float = 1e-5,
        pool_kwargs: dict | None = None,
    ):
        self.max_batch = int(max_batch)
        self.max_latency_ms = float(max_latency_ms)
        self.pool_workers = int(pool_workers)
        self.admission = admission
        self.verify = bool(verify)
        self.canary_atol = float(canary_atol)
        self._fault_injector = fault_injector
        self._pool_kwargs = dict(pool_kwargs or {})
        self._lock = threading.Lock()
        self._models: dict[str, RouterDeployment] = {}
        self._default: str | None = None
        self._generation = 0
        self._swaps = 0
        self._rollbacks = 0
        self._closed = False

    # ------------------------------------------------------------------
    # deployment lifecycle
    # ------------------------------------------------------------------
    def _load(self, source) -> LoadedModel:
        if isinstance(source, LoadedModel):
            return source
        return load_model(source, verify=self.verify)

    def _build(self, name: str, loaded: LoadedModel) -> RouterDeployment:
        with self._lock:
            self._generation += 1
            generation = self._generation
        return RouterDeployment(
            name,
            loaded,
            generation=generation,
            pool_workers=self.pool_workers,
            max_batch=self.max_batch,
            max_latency_ms=self.max_latency_ms,
            admission=self.admission,
            fault_injector=self._fault_injector,
            pool_kwargs=self._pool_kwargs,
        )

    def deploy(self, name: str, source, *, default: bool | None = None) -> dict:
        """Deploy ``source`` under ``name`` (must not exist yet; see hot_swap).

        The first deployment becomes the default route unless ``default``
        is explicitly False.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ModelRouter is closed")
            if name in self._models:
                raise ValueError(f"model {name!r} already deployed; use hot_swap")
        deployment = self._build(name, self._load(source))
        with self._lock:
            self._models[name] = deployment
            if default or (default is None and self._default is None):
                self._default = name
        return deployment.describe()

    def hot_swap(self, name: str, source, *, canary=None, canary_reference=None) -> dict:
        """Replace the artifact behind ``name`` with zero downtime.

        ``canary`` is a health-check batch run through the new serving
        path before the flip; ``canary_reference`` optionally pins its
        expected output.  On any failure (corrupt artifact, wrong
        architecture, bad canary output) the swap rolls back: the old
        deployment never stops serving and :class:`HotSwapError` is
        raised.  Returns a rollout report with old/new fingerprints.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ModelRouter is closed")
            old = self._models.get(name)
        if old is None:
            raise KeyError(f"model {name!r} is not deployed; use deploy first")
        # 1. load beside the old (fingerprint verified = corruption gate)
        try:
            loaded = self._load(source)
        except (ArtifactError, OSError, ValueError) as exc:
            with self._lock:
                self._rollbacks += 1
            raise HotSwapError(
                f"hot-swap of {name!r} aborted at load: {exc}; old model kept"
            ) from exc
        new = self._build(name, loaded)
        # 2. canary through the full new serving path
        try:
            self._run_canary(new, canary, canary_reference)
        except BaseException as exc:
            new.retire()
            with self._lock:
                self._rollbacks += 1
            raise HotSwapError(
                f"hot-swap of {name!r} rolled back at canary: {exc}; old model kept"
            ) from exc
        # 3. atomic flip
        with self._lock:
            current = self._models.get(name)
            self._models[name] = new
            self._swaps += 1
        # 4. drain + retire the displaced deployment
        if current is not None:
            current.retire()
        return {
            "model": name,
            "old_fingerprint": None if current is None else current.fingerprint,
            "new_fingerprint": new.fingerprint,
            "generation": new.generation,
            "canary_examples": 0 if canary is None else int(np.asarray(canary).shape[0]),
        }

    def _run_canary(self, deployment: RouterDeployment, canary, reference) -> None:
        if canary is None:
            return
        batch = np.asarray(canary, dtype=np.float32)
        out = deployment.server.predict(batch)
        if out.shape[0] != batch.shape[0]:
            raise RuntimeError(
                f"canary returned {out.shape[0]} rows for {batch.shape[0]} examples"
            )
        if not np.all(np.isfinite(out)):
            raise RuntimeError("canary forward produced non-finite outputs")
        if reference is not None and not np.allclose(out, reference, atol=self.canary_atol):
            raise RuntimeError("canary output does not match the pinned reference")

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def resolve(self, model: str | None = None) -> RouterDeployment:
        """The deployment that would serve ``model`` right now."""
        with self._lock:
            name = model if model is not None else self._default
            if name is None:
                raise KeyError("router has no deployments")
            deployment = self._models.get(name)
        if deployment is None:
            raise KeyError(f"unknown model {name!r}")
        return deployment

    def submit(
        self, example, model: str | None = None, deadline_s: float | None = None
    ) -> tuple[Future, RouterDeployment]:
        """Submit one example; returns (future, serving deployment).

        The deployment is returned so callers can report *which* model
        version actually served the request (the chaos harness asserts the
        fingerprint flip is atomic).  A submit that races a hot-swap drain
        is retried against the freshly resolved deployment.
        """
        for _ in range(8):
            deployment = self.resolve(model)
            try:
                return deployment.server.submit(example, deadline_s=deadline_s), deployment
            except RuntimeError as exc:
                if "closed" not in str(exc):
                    raise
                # The deployment drained between resolve and submit — a
                # hot-swap flipped the name.  Re-resolve and retry.
                continue
        raise RuntimeError(f"could not route request for model {model!r} (swap storm?)")

    def predict_one(
        self,
        example,
        model: str | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        future, _ = self.submit(example, model=model, deadline_s=timeout)
        return future.result(timeout=timeout)

    # ------------------------------------------------------------------
    # introspection & lifecycle
    # ------------------------------------------------------------------
    @property
    def default_model(self) -> str | None:
        with self._lock:
            return self._default

    def models(self) -> list[dict]:
        """Deployment descriptions, default first, stable order."""
        with self._lock:
            deployments = list(self._models.values())
            default = self._default
        rows = [d.describe() for d in deployments]
        for row in rows:
            row["default"] = row["name"] == default
        rows.sort(key=lambda row: (not row["default"], row["name"]))
        return rows

    def stats(self) -> dict:
        with self._lock:
            info = {
                "models": len(self._models),
                "default": self._default,
                "swaps": self._swaps,
                "rollbacks": self._rollbacks,
            }
        if self.admission is not None:
            info["admission"] = self.admission.snapshot()
        return info

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            deployments = list(self._models.values())
            self._models.clear()
            self._default = None
        for deployment in deployments:
            deployment.retire()

    def __enter__(self) -> "ModelRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
