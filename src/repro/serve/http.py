"""Stdlib JSON frontend: POST /predict over ``http.server``.

No web framework is baked into the container, and none is needed for a
request/response JSON API: :class:`ThreadingHTTPServer` gives one thread
per connection, and because every example is routed through the owning
:class:`~repro.serve.Server`'s batching queue, concurrent HTTP clients are
coalesced into shared CSR matmuls exactly like in-process callers.

Endpoints
---------
``POST /predict``
    Body ``{"inputs": [<example>, ...]}`` (always a list of examples, even
    for one).  Response ``{"outputs": [[...logits...], ...],
    "predictions": [argmax, ...], "latency_ms": <float>}``.
``GET /healthz``
    Liveness + model fingerprint.
``GET /stats``
    Serving statistics (request counts, batch sizes, latency percentiles).
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.server import Server

__all__ = ["make_http_server", "serve_forever"]

_MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServingHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The handler class is shared; the Server instance hangs off the
    # ThreadingHTTPServer (see make_http_server).
    @property
    def serving(self) -> Server:
        return self.server.repro_server

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "repro_quiet", True):
            return
        super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may leave an unread request body on the socket;
            # under HTTP/1.1 keep-alive the next request would be parsed
            # mid-body, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._reply(200, {"status": "ok", "fingerprint": self.serving.fingerprint})
        elif self.path == "/stats":
            self._reply(200, self.serving.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        if self.path != "/predict":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if not 0 < length <= _MAX_BODY_BYTES:
                raise ValueError(f"Content-Length {length} out of range")
            payload = json.loads(self.rfile.read(length))
            inputs = payload["inputs"]
            if not isinstance(inputs, list) or not inputs:
                raise ValueError("'inputs' must be a non-empty list of examples")
            examples = [np.asarray(example, dtype=np.float32) for example in inputs]
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        start = time.perf_counter()
        try:
            futures = [self.serving.submit(example) for example in examples]
            outputs = [future.result(timeout=30.0) for future in futures]
        except ValueError as exc:  # preprocessing rejected the example shape
            self._reply(400, {"error": str(exc)})
            return
        except Exception as exc:
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        latency_ms = (time.perf_counter() - start) * 1e3
        self._reply(
            200,
            {
                "outputs": [np.asarray(out).tolist() for out in outputs],
                "predictions": [int(np.argmax(out)) for out in outputs],
                "latency_ms": round(latency_ms, 3),
            },
        )


def make_http_server(
    server: Server,
    host: str = "127.0.0.1",
    port: int = 8100,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server over ``server`` (port 0 = ephemeral).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``server_close()`` to stop.  The bound port is
    ``httpd.server_address[1]``.
    """
    httpd = ThreadingHTTPServer((host, port), _ServingHandler)
    httpd.repro_server = server
    httpd.repro_quiet = quiet
    return httpd


def serve_forever(server: Server, host: str = "127.0.0.1", port: int = 8100) -> None:
    """Blocking convenience runner (Ctrl-C to stop)."""
    httpd = make_http_server(server, host, port, quiet=False)
    address = httpd.server_address
    print(f"serving on http://{address[0]}:{address[1]}  (POST /predict)")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        httpd.server_close()
        server.close()
