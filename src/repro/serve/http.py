"""Stdlib JSON frontend: POST /predict over ``http.server``.

No web framework is baked into the container, and none is needed for a
request/response JSON API: :class:`ThreadingHTTPServer` gives one thread
per connection, and because every example is routed through the owning
:class:`~repro.serve.Server`'s batching queue, concurrent HTTP clients are
coalesced into shared CSR matmuls exactly like in-process callers.  The
frontend also fronts a :class:`~repro.serve.router.ModelRouter`, adding
multi-model routing and the ``/models`` endpoint.

Endpoints
---------
``POST /predict``
    Body ``{"inputs": [<example>, ...]}`` (always a list of examples, even
    for one), optionally ``"model"`` (router only) and ``"deadline_ms"``.
    Response ``{"outputs": [[...logits...], ...], "predictions": [argmax,
    ...], "latency_ms": <float>, "fingerprint": <served model>}``.
``GET /healthz``
    Liveness + model fingerprint.
``GET /stats``
    Serving statistics (request counts, batch sizes, latency percentiles,
    admission counters).
``GET /models``
    Router deployments (name, generation, fingerprint, default flag).

Error contract (all JSON bodies with an ``"error"`` key):

======  ==============================================================
400     malformed request (bad JSON, missing/empty/ragged ``inputs``)
404     unknown path / unknown model name
413     ``Content-Length`` over the request-size bound
429     shed by admission control (queue full) — ``Retry-After`` set
503     shed by admission control (hopeless deadline) — ``Retry-After``
504     deadline expired while the request was queued or running
500     anything else (a bug, not an operating condition)
======  ==============================================================
"""

from __future__ import annotations

import json
import signal
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.admission import AdmissionRejected
from repro.serve.router import ModelRouter
from repro.serve.server import Server

__all__ = ["make_http_server", "serve_forever"]

_MAX_BODY_BYTES = 64 * 1024 * 1024
DEFAULT_DEADLINE_S = 30.0


class _PayloadTooLarge(ValueError):
    """Content-Length exceeded the request-size bound (maps to 413)."""


class _ServingHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/2.0"
    protocol_version = "HTTP/1.1"

    # The handler class is shared; the Server/ModelRouter instance hangs
    # off the ThreadingHTTPServer (see make_http_server).
    @property
    def serving(self):
        return self.server.repro_server

    @property
    def router(self) -> ModelRouter | None:
        serving = self.serving
        return serving if isinstance(serving, ModelRouter) else None

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "repro_quiet", True):
            return
        super().log_message(format, *args)

    def _reply(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths may leave an unread request body on the socket;
            # under HTTP/1.1 keep-alive the next request would be parsed
            # mid-body, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _reply_rejected(self, rejected: AdmissionRejected) -> None:
        """429 for a full queue, 503 for a hopeless deadline; Retry-After set."""
        status = 429 if rejected.reason == "queue_full" else 503
        retry_after = max(0.0, rejected.retry_after)
        self._reply(
            status,
            {
                "error": str(rejected),
                "reason": rejected.reason,
                "retry_after": round(retry_after, 3),
            },
            headers={"Retry-After": f"{retry_after:.3f}"},
        )

    # ------------------------------------------------------------------
    # GET endpoints
    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        router = self.router
        if self.path == "/healthz":
            if router is not None:
                names = [row["name"] for row in router.models()]
                default = router.default_model
                fingerprint = None
                if default is not None:
                    fingerprint = router.resolve(default).fingerprint
                self._reply(
                    200,
                    {"status": "ok", "fingerprint": fingerprint, "models": names},
                )
            else:
                self._reply(200, {"status": "ok", "fingerprint": self.serving.fingerprint})
        elif self.path == "/stats":
            self._reply(200, self.serving.stats())
        elif self.path == "/models":
            if router is None:
                self._reply(
                    404,
                    {"error": "no model router attached (single-model server)"},
                )
            else:
                self._reply(200, {"models": router.models()})
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    # ------------------------------------------------------------------
    # POST /predict
    # ------------------------------------------------------------------
    def _parse_predict_body(self) -> tuple[list[np.ndarray], str | None, float]:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            raise ValueError(f"Content-Length {length} out of range")
        if length > _MAX_BODY_BYTES:
            raise _PayloadTooLarge(
                f"Content-Length {length} exceeds the {_MAX_BODY_BYTES}-byte bound"
            )
        raw = self.rfile.read(length)
        if len(raw) < length:
            raise ValueError(f"truncated body: Content-Length {length}, got {len(raw)} bytes")
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        inputs = payload["inputs"]
        if not isinstance(inputs, list) or not inputs:
            raise ValueError("'inputs' must be a non-empty list of examples")
        model = payload.get("model")
        if model is not None and not isinstance(model, str):
            raise ValueError("'model' must be a string model name")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            deadline_s = getattr(self.server, "repro_deadline_s", DEFAULT_DEADLINE_S)
        else:
            deadline_s = float(deadline_ms) / 1e3
            if deadline_s <= 0:
                raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        examples = [np.asarray(example, dtype=np.float32) for example in inputs]
        return examples, model, deadline_s

    def do_POST(self) -> None:
        if self.path != "/predict":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            examples, model, deadline_s = self._parse_predict_body()
        except _PayloadTooLarge as exc:
            self._reply(413, {"error": str(exc)})
            return
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        router = self.router
        if model is not None and router is None:
            self._reply(400, {"error": "this server has a single model; omit 'model'"})
            return
        deadline = time.perf_counter() + deadline_s
        start = time.perf_counter()
        fingerprint = self.serving.fingerprint if router is None else None
        try:
            futures = []
            for example in examples:
                remaining = max(1e-3, deadline - time.perf_counter())
                if router is not None:
                    future, deployment = router.submit(example, model=model, deadline_s=remaining)
                    fingerprint = deployment.fingerprint
                else:
                    future = self.serving.submit(example, deadline_s=remaining)
                futures.append(future)
            outputs = []
            for future in futures:
                remaining = deadline - time.perf_counter()
                outputs.append(future.result(timeout=max(1e-3, remaining)))
        except AdmissionRejected as rejected:
            self._reply_rejected(rejected)
            return
        except FutureTimeout:
            # Cancel what can still be cancelled: abandoned rows are shed
            # at dispatch instead of computed for a caller that is gone.
            for future in futures:
                future.cancel()
            self._reply(
                504,
                {
                    "error": f"deadline of {deadline_s * 1e3:.0f} ms expired "
                    "before the prediction completed",
                    "deadline_ms": round(deadline_s * 1e3, 3),
                },
            )
            return
        except KeyError as exc:  # unknown model name
            self._reply(404, {"error": str(exc)})
            return
        except ValueError as exc:  # preprocessing rejected the example shape
            self._reply(400, {"error": str(exc)})
            return
        except Exception as exc:
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        latency_ms = (time.perf_counter() - start) * 1e3
        self._reply(
            200,
            {
                "outputs": [np.asarray(out).tolist() for out in outputs],
                "predictions": [int(np.argmax(out)) for out in outputs],
                "latency_ms": round(latency_ms, 3),
                "fingerprint": fingerprint,
            },
        )


def make_http_server(
    server: Server | ModelRouter,
    host: str = "127.0.0.1",
    port: int = 8100,
    quiet: bool = True,
    default_deadline_s: float = DEFAULT_DEADLINE_S,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server over a ``Server`` or ``ModelRouter``.

    ``port=0`` binds an ephemeral port.  The caller owns the lifecycle:
    ``serve_forever()`` to run, ``shutdown()`` + ``server_close()`` to
    stop.  The bound port is ``httpd.server_address[1]``.
    ``default_deadline_s`` is the per-request deadline applied when the
    request body carries no ``deadline_ms``.
    """
    if default_deadline_s <= 0:
        raise ValueError(f"default_deadline_s must be > 0, got {default_deadline_s}")
    httpd = ThreadingHTTPServer((host, port), _ServingHandler)
    httpd.repro_server = server
    httpd.repro_quiet = quiet
    httpd.repro_deadline_s = float(default_deadline_s)
    # Graceful drain joins the in-flight request threads at server_close.
    httpd.daemon_threads = False
    httpd.block_on_close = True
    return httpd


def serve_forever(
    server: Server | ModelRouter,
    host: str = "127.0.0.1",
    port: int = 8100,
    default_deadline_s: float = DEFAULT_DEADLINE_S,
) -> None:
    """Blocking runner with graceful shutdown on SIGTERM and Ctrl-C.

    Containers stop workloads with SIGTERM; catching only
    ``KeyboardInterrupt`` turns every orchestrated restart into dropped
    requests.  On either signal the server stops accepting, finishes the
    requests already on their threads (``block_on_close``), drains the
    batching queue, and closes the serving side.
    """
    httpd = make_http_server(
        server, host, port, quiet=False, default_deadline_s=default_deadline_s
    )
    address = httpd.server_address
    print(f"serving on http://{address[0]}:{address[1]}  (POST /predict)")

    previous_handler = None

    def _on_sigterm(signum, frame):
        # shutdown() blocks until serve_forever's poll loop notices; from
        # the main thread (where signal handlers run) that is a deadlock,
        # so hand it to a helper thread and let serve_forever unwind.
        threading.Thread(target=httpd.shutdown, name="repro-serve-sigterm").start()

    try:
        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (tests); SIGTERM drain unavailable
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        httpd.shutdown()
        httpd.server_close()  # joins in-flight request threads
        server.close()  # drains pending batches, closes pools
        print("drained and stopped")
