"""Dynamic micro-batching: coalesce concurrent requests into one matmul.

A single-example CSR product pays fixed per-call overhead (Python dispatch,
scipy setup) that dwarfs the arithmetic at request size 1; stacking the
examples of concurrent requests into one ``(B, features)`` batch amortizes
that overhead across B requests, which is where the serving-side speedup of
sparse inference actually comes from (see ``benchmarks/bench_serve.py``).

:class:`BatchingQueue` implements the standard two-knob policy: a flush is
triggered by whichever comes first of ``max_batch`` pending requests or the
oldest request reaching ``max_latency_ms``.  Requests are dispatched in
strict FIFO submission order, results are delivered through per-request
futures, and a failing batch propagates its exception to exactly the
requests that were in it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout  # builtin alias only on 3.11+
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BatchingQueue", "BatchingStats"]


@dataclass
class BatchingStats:
    """Counters and latency percentiles of one queue (snapshot via ``stats``).

    ``timeouts`` counts callers that gave up waiting (``predict`` /
    ``predict_one`` timeouts cancel their future); ``shed`` counts entries
    whose future was already cancelled when the flusher reached them — the
    abandoned rows that were skipped instead of computed and copied.
    """

    requests: int = 0
    batches: int = 0
    max_observed_batch: int = 0
    timeouts: int = 0
    shed: int = 0
    latencies_ms: list = field(default_factory=list, repr=False)

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile (ms) over the retained window, 0.0 when empty."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_observed_batch": self.max_observed_batch,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "latency_ms_p50": round(self.percentile(50), 4),
            "latency_ms_p99": round(self.percentile(99), 4),
        }


class _Pending:
    __slots__ = ("payload", "future", "submitted_at")

    def __init__(self, payload, future, submitted_at):
        self.payload = payload
        self.future = future
        self.submitted_at = submitted_at


class BatchingQueue:
    """Coalesce concurrent single-example requests into batched calls.

    Parameters
    ----------
    batch_fn:
        ``(np.ndarray of shape (B, ...)) -> array-like of leading dim B``.
        Called on the flusher thread with examples stacked in submission
        order; row ``i`` of the result resolves the ``i``-th request of the
        batch.
    max_batch:
        Flush as soon as this many requests are pending.
    max_latency_ms:
        Flush when the oldest pending request has waited this long, even if
        the batch is not full — bounds tail latency under light traffic.
    latency_window:
        Number of most-recent per-request latencies retained for the
        p50/p99 statistics.
    """

    def __init__(
        self,
        batch_fn,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        latency_window: int = 4096,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency_ms < 0:
            raise ValueError(f"max_latency_ms must be >= 0, got {max_latency_ms}")
        self._batch_fn = batch_fn
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_ms) / 1e3
        self._pending: deque[_Pending] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._force_flush = False
        self._stats = BatchingStats()
        self._latency_window = int(latency_window)
        self._thread = threading.Thread(target=self._run, name="repro-batching", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, example) -> Future:
        """Enqueue one example; the future resolves to its output row."""
        future: Future = Future()
        entry = _Pending(example, future, time.perf_counter())
        with self._wakeup:
            if self._closed:
                raise RuntimeError("BatchingQueue is closed")
            self._pending.append(entry)
            self._wakeup.notify_all()
        return future

    def predict(self, example, timeout: float | None = None):
        """Blocking convenience wrapper around :meth:`submit`.

        On timeout the future is cancelled before re-raising: the flusher
        skips cancelled entries at dispatch, so an abandoned request's row
        is never computed and copied for a caller that already left.
        """
        future = self.submit(example)
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            if future.cancel():
                with self._lock:
                    self._stats.timeouts += 1
            raise

    def flush(self) -> None:
        """Dispatch whatever is pending without waiting for the batch window."""
        with self._wakeup:
            self._force_flush = True
            self._wakeup.notify_all()

    def close(self) -> None:
        """Stop accepting requests; pending ones are still served."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        self._thread.join()

    def __enter__(self) -> "BatchingQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            return self._stats.snapshot()

    # ------------------------------------------------------------------
    # flusher thread
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Pending]:
        """Block until a flush condition holds, then pop up to max_batch."""
        with self._wakeup:
            while True:
                if self._pending:
                    full = len(self._pending) >= self.max_batch
                    if full or self._closed or self._force_flush:
                        break
                    deadline = self._pending[0].submitted_at + self.max_latency_s
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(timeout=remaining)
                else:
                    self._force_flush = False
                    if self._closed:
                        return []
                    self._wakeup.wait()
            if len(self._pending) <= self.max_batch:
                self._force_flush = False
            taken = [
                self._pending.popleft()
                for _ in range(min(self.max_batch, len(self._pending)))
            ]
            return taken

    def _dispatch(self, taken: list[_Pending]) -> None:
        """Run one homogeneous batch and resolve (or fail) its futures.

        Entries whose future was cancelled while queued (caller timed out
        and left) are shed here, *before* stacking: their rows are neither
        computed nor copied.  ``set_running_or_notify_cancel`` atomically
        claims the survivors, closing the race against a late ``cancel``.
        """
        live = [entry for entry in taken if entry.future.set_running_or_notify_cancel()]
        if len(live) != len(taken):
            with self._lock:
                self._stats.shed += len(taken) - len(live)
        if not live:
            return
        taken = live
        try:
            batch = np.stack([np.asarray(entry.payload) for entry in taken])
            outputs = np.asarray(self._batch_fn(batch))
            if outputs.shape[0] != len(taken):
                raise RuntimeError(
                    f"batch_fn returned {outputs.shape[0]} rows for a "
                    f"batch of {len(taken)} requests"
                )
        except BaseException as exc:  # propagate to exactly this batch
            for entry in taken:
                entry.future.set_exception(exc)
            return
        done = time.perf_counter()
        # Stats first: a client that waits on its future and immediately
        # reads stats() must see the batch that served it.
        with self._lock:
            stats = self._stats
            stats.requests += len(taken)
            stats.batches += 1
            stats.max_observed_batch = max(stats.max_observed_batch, len(taken))
            stats.latencies_ms.extend((done - entry.submitted_at) * 1e3 for entry in taken)
            if len(stats.latencies_ms) > self._latency_window:
                del stats.latencies_ms[: -self._latency_window]
        for index, entry in enumerate(taken):
            entry.future.set_result(np.array(outputs[index], copy=True))

    def _run(self) -> None:
        while True:
            taken = self._take_batch()
            if not taken:
                return
            # One malformed example must not fail the innocent requests it
            # happened to coalesce with: split by example shape, so each
            # homogeneous sub-batch succeeds or fails on its own.
            by_shape: dict[tuple, list[_Pending]] = {}
            for entry in taken:
                by_shape.setdefault(np.asarray(entry.payload).shape, []).append(entry)
            for group in by_shape.values():
                self._dispatch(group)
