"""In-process serving: one loaded artifact behind a predict API.

:class:`Server` is the composition point of the serving subsystem: it owns
a loaded model (see :mod:`repro.serve.artifact`), applies the artifact's
preprocessing spec to every request, and — unless batching is disabled —
routes single-example requests through a :class:`~repro.serve.batching.BatchingQueue`
so concurrent callers share one CSR matmul.  An optional
:class:`~repro.serve.admission.AdmissionController` gates :meth:`submit`
so overload is shed at the door instead of queued into unbounded latency.
The HTTP frontend (:mod:`repro.serve.http`), the multi-process pool
(:mod:`repro.serve.pool`) and the hot-swap router
(:mod:`repro.serve.router`) are thin layers over this class.
"""

from __future__ import annotations

from concurrent.futures import Future

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.serve.artifact import LoadedModel, load_model
from repro.serve.batching import BatchingQueue
from repro.serve.preprocess import Preprocessor

__all__ = ["Server"]


class Server:
    """Serve predictions from a compiled sparse model.

    Parameters
    ----------
    model:
        A :class:`LoadedModel` (from :func:`repro.serve.artifact.load_model`)
        or a bare eval-mode :class:`Module`.
    max_batch / max_latency_ms:
        Micro-batching knobs (see :class:`BatchingQueue`).
    batching:
        ``False`` disables the queue; :meth:`submit` then runs the request
        synchronously — useful as the A/B baseline in benchmarks.
    forward_override:
        Optional ``(preprocessed batch) -> outputs`` callable replacing the
        in-process model forward — e.g. ``ServingPool.predict`` to fan
        coalesced batches out across worker processes.
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`.
        When set, :meth:`submit` calls ``acquire`` before enqueueing and
        releases the slot when the request's future resolves, so the
        bounded-queue and deadline-rejection rules apply to every caller
        (HTTP and in-process alike).
    fault_injector:
        Optional :class:`~repro.serve.faults.FaultInjector`; the forward
        path calls its ``slow_batch`` fault point on every batch, letting
        the chaos harness stall batches deterministically.
    """

    def __init__(
        self,
        model: LoadedModel | Module,
        *,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        batching: bool = True,
        forward_override=None,
        admission=None,
        fault_injector=None,
    ):
        if isinstance(model, LoadedModel):
            self.loaded = model
            self.model = model.model
            self.preprocessor = model.preprocessor
            self.fingerprint = model.fingerprint
            self.metadata = model.metadata
        else:
            self.loaded = None
            self.model = model
            self.preprocessor = Preprocessor(None)
            self.fingerprint = None
            self.metadata = None
        self.model.eval()
        self.admission = admission
        self._fault_injector = fault_injector
        self._forward_override = forward_override
        self._queue = (
            BatchingQueue(self._forward, max_batch=max_batch, max_latency_ms=max_latency_ms)
            if batching
            else None
        )

    @classmethod
    def from_artifact(cls, path, verify: bool = True, **kwargs) -> "Server":
        """Load ``path`` and wrap it in a server (kwargs as in ``__init__``)."""
        return cls(load_model(path, verify=verify), **kwargs)

    # ------------------------------------------------------------------
    # prediction paths
    # ------------------------------------------------------------------
    def _forward(self, batch: np.ndarray) -> np.ndarray:
        """Model forward on an already-preprocessed batch (no autograd)."""
        if self._fault_injector is not None:
            self._fault_injector.sleep_if("slow_batch")
        if self._forward_override is not None:
            return np.asarray(self._forward_override(batch))
        with no_grad():
            out = self.model(Tensor(batch))
        return np.asarray(out.data)

    def predict(self, inputs) -> np.ndarray:
        """Synchronous whole-batch path: preprocess + one forward call.

        ``inputs`` is a batch (leading axis = examples).  Bypasses the
        batching queue and admission control — use :meth:`submit` /
        :meth:`predict_one` for request-per-example traffic.
        """
        return self._forward(self.preprocessor(np.asarray(inputs)))

    def submit(self, example, deadline_s: float | None = None) -> Future:
        """Asynchronous single-example path through the batching queue.

        With an admission controller attached this may raise
        :class:`~repro.serve.admission.AdmissionRejected` instead of
        queueing; ``deadline_s`` (remaining budget in seconds) feeds its
        deadline-aware rejection rule.
        """
        example = self.preprocessor(np.asarray(example)[None])[0]
        admitted_at = None
        if self.admission is not None:
            admitted_at = self.admission.acquire(deadline_s)
        try:
            if self._queue is None:
                future: Future = Future()
                try:
                    future.set_result(self._forward(example[None])[0])
                except BaseException as exc:
                    future.set_exception(exc)
            else:
                future = self._queue.submit(example)
        except BaseException:
            if admitted_at is not None:
                self.admission.release(admitted_at)
            raise
        if admitted_at is not None:
            release_at = admitted_at

            def _release(_future, _self=self, _at=release_at):
                _self.admission.release(_at)

            future.add_done_callback(_release)
        return future

    def predict_one(self, example, timeout: float | None = None) -> np.ndarray:
        """Blocking single-example prediction (through the queue)."""
        return self.submit(example).result(timeout=timeout)

    # ------------------------------------------------------------------
    # introspection & lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving statistics (queue counters + identity of the model)."""
        info = {
            "fingerprint": self.fingerprint,
            "metadata": self.metadata,
            "batching": self._queue is not None,
        }
        if self._queue is not None:
            info.update(self._queue.stats())
        if self.admission is not None:
            info["admission"] = self.admission.snapshot()
        return info

    def drain(self) -> None:
        """Stop accepting; serve every already-queued request, then stop.

        This is what the router calls on the *old* deployment after a
        hot-swap flip: pending futures resolve against the old weights,
        new traffic has already moved on.  Alias of :meth:`close` — the
        queue's close contract is exactly drain semantics.
        """
        self.close()

    def close(self) -> None:
        if self._queue is not None:
            self._queue.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
