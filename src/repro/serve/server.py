"""In-process serving: one loaded artifact behind a predict API.

:class:`Server` is the composition point of the serving subsystem: it owns
a loaded model (see :mod:`repro.serve.artifact`), applies the artifact's
preprocessing spec to every request, and — unless batching is disabled —
routes single-example requests through a :class:`~repro.serve.batching.BatchingQueue`
so concurrent callers share one CSR matmul.  The HTTP frontend
(:mod:`repro.serve.http`) and the multi-process pool
(:mod:`repro.serve.pool`) are thin layers over this class.
"""

from __future__ import annotations

from concurrent.futures import Future

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.serve.artifact import LoadedModel, load_model
from repro.serve.batching import BatchingQueue
from repro.serve.preprocess import Preprocessor

__all__ = ["Server"]


class Server:
    """Serve predictions from a compiled sparse model.

    Parameters
    ----------
    model:
        A :class:`LoadedModel` (from :func:`repro.serve.artifact.load_model`)
        or a bare eval-mode :class:`Module`.
    max_batch / max_latency_ms:
        Micro-batching knobs (see :class:`BatchingQueue`).
    batching:
        ``False`` disables the queue; :meth:`submit` then runs the request
        synchronously — useful as the A/B baseline in benchmarks.
    forward_override:
        Optional ``(preprocessed batch) -> outputs`` callable replacing the
        in-process model forward — e.g. ``ServingPool.predict`` to fan
        coalesced batches out across worker processes.
    """

    def __init__(
        self,
        model: LoadedModel | Module,
        *,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        batching: bool = True,
        forward_override=None,
    ):
        if isinstance(model, LoadedModel):
            self.loaded = model
            self.model = model.model
            self.preprocessor = model.preprocessor
            self.fingerprint = model.fingerprint
            self.metadata = model.metadata
        else:
            self.loaded = None
            self.model = model
            self.preprocessor = Preprocessor(None)
            self.fingerprint = None
            self.metadata = None
        self.model.eval()
        self._forward_override = forward_override
        self._queue = (
            BatchingQueue(self._forward, max_batch=max_batch, max_latency_ms=max_latency_ms)
            if batching
            else None
        )

    @classmethod
    def from_artifact(cls, path, verify: bool = True, **kwargs) -> "Server":
        """Load ``path`` and wrap it in a server (kwargs as in ``__init__``)."""
        return cls(load_model(path, verify=verify), **kwargs)

    # ------------------------------------------------------------------
    # prediction paths
    # ------------------------------------------------------------------
    def _forward(self, batch: np.ndarray) -> np.ndarray:
        """Model forward on an already-preprocessed batch (no autograd)."""
        if self._forward_override is not None:
            return np.asarray(self._forward_override(batch))
        with no_grad():
            out = self.model(Tensor(batch))
        return np.asarray(out.data)

    def predict(self, inputs) -> np.ndarray:
        """Synchronous whole-batch path: preprocess + one forward call.

        ``inputs`` is a batch (leading axis = examples).  Bypasses the
        batching queue — use :meth:`submit` / :meth:`predict_one` for
        request-per-example traffic.
        """
        return self._forward(self.preprocessor(np.asarray(inputs)))

    def submit(self, example) -> Future:
        """Asynchronous single-example path through the batching queue."""
        example = self.preprocessor(np.asarray(example)[None])[0]
        if self._queue is None:
            future: Future = Future()
            try:
                future.set_result(self._forward(example[None])[0])
            except BaseException as exc:
                future.set_exception(exc)
            return future
        return self._queue.submit(example)

    def predict_one(self, example, timeout: float | None = None) -> np.ndarray:
        """Blocking single-example prediction (through the queue)."""
        return self.submit(example).result(timeout=timeout)

    # ------------------------------------------------------------------
    # introspection & lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving statistics (queue counters + identity of the model)."""
        info = {
            "fingerprint": self.fingerprint,
            "metadata": self.metadata,
            "batching": self._queue is not None,
        }
        if self._queue is not None:
            info.update(self._queue.stats())
        return info

    def close(self) -> None:
        if self._queue is not None:
            self._queue.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
