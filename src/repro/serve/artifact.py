"""Versioned serving artifacts: compiled sparse model → one deployable file.

An artifact is the unit that leaves the training side and enters the
serving side.  It stores, in a single compressed ``.npz``:

* the CSR components (``data``/``indices``/``indptr`` + bias) of every
  compiled :class:`~repro.sparse.inference.SparseLinear` /
  :class:`~repro.sparse.inference.SparseConv2d` layer — at the paper's
  90–98% sparsities this is a fraction of the dense weight bytes;
* the dense state of everything that stayed dense (biases were folded into
  the layer records; batch-norm parameters and running stats, unmasked
  layers);
* a *model config* ``{"builder": ..., "kwargs": ...}`` resolved against
  :data:`repro.models.MODEL_REGISTRY` at load time to rebuild the
  architecture;
* a preprocessing spec (see :mod:`repro.serve.preprocess`) and free-form
  metadata (method, sparsity, accuracy, ...).

Like training checkpoints the file is written atomically (tmp + fsync +
rename) and carries a ``format_version`` that loaders refuse to guess
about, plus a SHA-256 *fingerprint* over the manifest and every weight
array — :func:`load_model` recomputes it by default, so a corrupted or
tampered artifact fails loudly instead of serving garbage predictions.
"""

from __future__ import annotations

import hashlib
import io
import json
import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.models import build_model
from repro.nn.module import Module
from repro.serve.preprocess import Preprocessor
from repro.sparse.inference import (
    BlockSparseConv2d,
    BlockSparseLinear,
    SparseConv2d,
    SparseLinear,
    compile_sparse_model,
)
from repro.sparse.masked import MaskedModel
from repro.train.checkpoint import (
    atomic_write_bytes,
    decode_state_tree,
    encode_state_tree,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "LoadedModel",
    "export_model",
    "load_model",
    "read_manifest",
]

ARTIFACT_VERSION = 1

_META_KEY = "__artifact__"
_KIND = "repro-sparse-model"


class ArtifactError(RuntimeError):
    """Raised for malformed, incompatible, or corrupted artifacts."""


def _pair(value) -> list[int]:
    if isinstance(value, (tuple, list)):
        return [int(value[0]), int(value[1])]
    return [int(value), int(value)]


def _layer_records(model: Module) -> list[dict]:
    records: list[dict] = []
    for name, module in model.named_modules():
        if isinstance(module, BlockSparseLinear):
            matrix = module.weight_bsr
            records.append(
                {
                    "name": name,
                    "type": "linear",
                    "block_size": module.block_size,
                    "in_features": module.in_features,
                    "out_features": module.out_features,
                    "data": matrix.data,
                    "indices": matrix.indices,
                    "indptr": matrix.indptr,
                    "bias": module.bias_data,
                }
            )
        elif isinstance(module, BlockSparseConv2d):
            matrix = module.weight_bsr
            records.append(
                {
                    "name": name,
                    "type": "conv2d",
                    "block_size": module.block_size,
                    "in_channels": module.in_channels,
                    "out_channels": module.out_channels,
                    "kernel_size": list(module.kernel_size),
                    "stride": _pair(module.stride),
                    "padding": _pair(module.padding),
                    "data": matrix.data,
                    "indices": matrix.indices,
                    "indptr": matrix.indptr,
                    "bias": module.bias_data,
                }
            )
        elif isinstance(module, SparseLinear):
            records.append(
                {
                    "name": name,
                    "type": "linear",
                    "in_features": module.in_features,
                    "out_features": module.out_features,
                    "data": module.weight_csr.data,
                    "indices": module.weight_csr.indices,
                    "indptr": module.weight_csr.indptr,
                    "bias": module.bias_data,
                }
            )
        elif isinstance(module, SparseConv2d):
            records.append(
                {
                    "name": name,
                    "type": "conv2d",
                    "in_channels": module.in_channels,
                    "out_channels": module.out_channels,
                    "kernel_size": list(module.kernel_size),
                    "stride": _pair(module.stride),
                    "padding": _pair(module.padding),
                    "data": module.weight_csr.data,
                    "indices": module.weight_csr.indices,
                    "indptr": module.weight_csr.indptr,
                    "bias": module.bias_data,
                }
            )
    return records


def _fingerprint(manifest_sans_fp: dict, arrays: dict) -> str:
    """SHA-256 over the canonical manifest plus every array's raw bytes."""
    digest = hashlib.sha256()
    digest.update(json.dumps(manifest_sans_fp, sort_keys=True, separators=(",", ":")).encode())
    for key in sorted(arrays):
        value = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(value.dtype).encode())
        digest.update(repr(value.shape).encode())
        digest.update(value.tobytes())
    return f"sha256:{digest.hexdigest()}"


def export_model(
    model: Module | MaskedModel,
    path,
    *,
    model_config: dict,
    preprocessing: dict | None = None,
    metadata: dict | None = None,
) -> pathlib.Path:
    """Write ``model`` (compiled, or a :class:`MaskedModel` to compile) to ``path``.

    ``model_config`` must be ``{"builder": <registry name>, "kwargs": {...}}``;
    it is validated against :data:`repro.models.MODEL_REGISTRY` here, at
    export time, so a typo fails next to the training run instead of at
    deployment.  Returns the written path.
    """
    if isinstance(model, MaskedModel):
        model = compile_sparse_model(model)
    if "builder" not in model_config:
        raise ArtifactError("model_config must carry a 'builder' registry name")
    build_model(model_config["builder"], **dict(model_config.get("kwargs", {})))

    layers = _layer_records(model)
    if not layers:
        raise ArtifactError(
            "model has no compiled sparse layers; run compile_sparse_model "
            "(or pass the MaskedModel) before exporting"
        )
    Preprocessor(preprocessing)  # validate the spec at export time

    sparse_names = {record["name"] for record in layers}
    dense_state = {
        key: value
        for key, value in model.state_dict().items()
        if key.rsplit(".", 1)[0] not in sparse_names
    }

    tree, arrays = encode_state_tree({"layers": layers, "dense_state": dense_state})
    manifest = {
        "format_version": ARTIFACT_VERSION,
        "kind": _KIND,
        "model_config": {
            "builder": model_config["builder"],
            "kwargs": dict(model_config.get("kwargs", {})),
        },
        "preprocessing": dict(preprocessing) if preprocessing else None,
        "metadata": dict(metadata) if metadata else None,
        "state": tree,
    }
    manifest["fingerprint"] = _fingerprint(manifest, arrays)

    buffer = io.BytesIO()
    np.savez_compressed(buffer, **{_META_KEY: np.array(json.dumps(manifest))}, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())


@dataclass
class LoadedModel:
    """A deserialized artifact, ready to serve."""

    model: Module
    model_config: dict
    preprocessing: dict | None
    metadata: dict | None
    fingerprint: str
    path: pathlib.Path
    preprocessor: Preprocessor = field(repr=False, default=None)

    def predict(self, batch: np.ndarray) -> np.ndarray:
        """Preprocess + forward one batch (no autograd, eval mode)."""
        from repro.autograd import no_grad
        from repro.autograd.tensor import Tensor

        batch = self.preprocessor(batch)
        with no_grad():
            out = self.model(Tensor(batch))
        return np.asarray(out.data)


def _validate_manifest(manifest: dict, path) -> dict:
    """Shared kind/format-version gate for every artifact reader."""
    if manifest.get("kind") != _KIND:
        raise ArtifactError(f"{path} has kind {manifest.get('kind')!r}, not {_KIND!r}")
    version = manifest.get("format_version")
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact {path} has format version {version!r}; "
            f"this build reads version {ARTIFACT_VERSION}"
        )
    return manifest


def read_manifest(path) -> dict:
    """Manifest of an artifact without rebuilding the model (cheap)."""
    with np.load(pathlib.Path(path), allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            raise ArtifactError(f"{path} is not a serving artifact (no manifest)")
        manifest = json.loads(str(archive[_META_KEY].item()))
    return _validate_manifest(manifest, path)


def _replace_module(root: Module, dotted: str, replacement: Module) -> None:
    parts = dotted.split(".")
    parent = root
    for part in parts[:-1]:
        try:
            parent = parent._modules[part]
        except KeyError:
            raise ArtifactError(
                f"artifact layer {dotted!r} not found in rebuilt architecture"
            ) from None
    if parts[-1] not in parent._modules:
        raise ArtifactError(f"artifact layer {dotted!r} not found in rebuilt architecture")
    parent.add_module(parts[-1], replacement)


def load_model(path, verify: bool = True) -> LoadedModel:
    """Rebuild a served model from an artifact written by :func:`export_model`.

    With ``verify=True`` (default) the stored fingerprint is recomputed
    from the file contents and a mismatch raises :class:`ArtifactError` —
    bit-rot and truncation are detected before the first prediction.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            raise ArtifactError(f"{path} is not a serving artifact (no manifest)")
        manifest = json.loads(str(archive[_META_KEY].item()))
        arrays = {key: archive[key] for key in archive.files if key != _META_KEY}
    _validate_manifest(manifest, path)
    fingerprint = manifest.get("fingerprint")
    if verify:
        expected = _fingerprint(
            {key: value for key, value in manifest.items() if key != "fingerprint"},
            arrays,
        )
        if fingerprint != expected:
            raise ArtifactError(
                f"artifact {path} failed fingerprint verification "
                f"(stored {fingerprint}, recomputed {expected}); file corrupted?"
            )

    state = decode_state_tree(manifest["state"], arrays)
    config = manifest["model_config"]
    model = build_model(config["builder"], **dict(config.get("kwargs", {})))

    for record in state["layers"]:
        block_size = int(record.get("block_size", 1))
        if record["type"] == "linear":
            if block_size > 1:
                replacement = BlockSparseLinear.from_bsr(
                    record["in_features"],
                    record["out_features"],
                    block_size,
                    record["data"],
                    record["indices"],
                    record["indptr"],
                    bias=record["bias"],
                    copy=False,
                )
            else:
                replacement = SparseLinear.from_csr(
                    record["in_features"],
                    record["out_features"],
                    record["data"],
                    record["indices"],
                    record["indptr"],
                    bias=record["bias"],
                    copy=False,
                )
        elif record["type"] == "conv2d":
            if block_size > 1:
                replacement = BlockSparseConv2d.from_bsr(
                    record["in_channels"],
                    record["out_channels"],
                    tuple(record["kernel_size"]),
                    tuple(record["stride"]),
                    tuple(record["padding"]),
                    block_size,
                    record["data"],
                    record["indices"],
                    record["indptr"],
                    bias=record["bias"],
                    copy=False,
                )
            else:
                replacement = SparseConv2d.from_csr(
                    record["in_channels"],
                    record["out_channels"],
                    tuple(record["kernel_size"]),
                    tuple(record["stride"]),
                    tuple(record["padding"]),
                    record["data"],
                    record["indices"],
                    record["indptr"],
                    bias=record["bias"],
                    copy=False,
                )
        else:
            raise ArtifactError(f"unknown artifact layer type {record['type']!r}")
        _replace_module(model, record["name"], replacement)

    model.load_state_dict(state["dense_state"])
    model.eval()
    return LoadedModel(
        model=model,
        model_config=config,
        preprocessing=manifest.get("preprocessing"),
        metadata=manifest.get("metadata"),
        fingerprint=fingerprint,
        path=path,
        preprocessor=Preprocessor(manifest.get("preprocessing")),
    )
