"""Declarative preprocessing spec applied to raw request payloads.

A serving artifact carries a JSON-able *preprocessing spec* so that every
consumer of the model (in-process server, HTTP frontend, worker pool)
normalizes requests identically — the spec travels with the weights instead
of living in application code.

Spec keys (all optional unless noted):

``kind``
    ``"dense"`` (default) for float feature/image inputs, or
    ``"sequence"`` for integer token-id inputs (language models).

Dense-kind keys:

``input_shape``
    Per-example shape, e.g. ``[3, 12, 12]``.  Incoming examples are
    validated against it; flat examples of the matching total size are
    reshaped to it.
``mean`` / ``std``
    Per-channel (or scalar) normalization applied as ``(x - mean) / std``.
    Broadcast against the example shape from the left, i.e. a length-C list
    matches ``[C, H, W]`` inputs.
``flatten``
    When true, examples are flattened to 1-D after normalization (for MLP
    artifacts trained on flattened images).

Sequence-kind keys:

``max_length``
    Required.  Prompts longer than this are rejected with ``ValueError``
    (the HTTP frontend maps that to a 400 per the error contract).
``pad_id``
    Token id used to *left*-pad every prompt to exactly ``max_length``
    (default 0).  Padding to the full window means every prompt runs the
    same-shaped forward regardless of batch composition — the determinism
    contract of :class:`repro.models.CharGPT`.
``vocab_size``
    Optional; when set, token ids outside ``[0, vocab_size)`` are rejected.

Sequence batches are returned as ``int64`` token ids.  Values arriving as
floats (the JSON/HTTP path decodes numbers as float32) are accepted only
when they are exactly integral.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Preprocessor"]

_DENSE_ONLY_KEYS = ("input_shape", "mean", "std", "flatten")


class Preprocessor:
    """Compiled form of a preprocessing spec; callable on example batches."""

    def __init__(self, spec: dict | None):
        spec = dict(spec or {})
        self.spec = spec
        self.kind = str(spec.get("kind", "dense"))
        if self.kind not in ("dense", "sequence"):
            raise ValueError(f"unknown preprocessing kind {self.kind!r}")
        if self.kind == "sequence":
            self._init_sequence(spec)
            return
        self.max_length = None
        shape = spec.get("input_shape")
        self.input_shape = None if shape is None else tuple(int(s) for s in shape)
        self.flatten = bool(spec.get("flatten", False))
        mean = spec.get("mean")
        std = spec.get("std")
        self._mean = None if mean is None else self._broadcastable(np.asarray(mean, np.float32))
        self._std = None if std is None else self._broadcastable(np.asarray(std, np.float32))
        if self._std is not None and np.any(self._std == 0.0):
            raise ValueError("preprocessing std must be non-zero")

    def _init_sequence(self, spec: dict) -> None:
        for key in _DENSE_ONLY_KEYS:
            if spec.get(key) is not None:
                raise ValueError(f"spec key {key!r} does not apply to kind='sequence'")
        if spec.get("max_length") is None:
            raise ValueError("sequence preprocessing requires 'max_length'")
        self.max_length = int(spec["max_length"])
        if self.max_length <= 0:
            raise ValueError(f"max_length must be > 0, got {self.max_length}")
        self.pad_id = int(spec.get("pad_id", 0))
        vocab = spec.get("vocab_size")
        self.vocab_size = None if vocab is None else int(vocab)
        if self.vocab_size is not None and not 0 <= self.pad_id < self.vocab_size:
            raise ValueError(
                f"pad_id {self.pad_id} outside vocab of size {self.vocab_size}"
            )
        self.input_shape = None
        self.flatten = False
        self._mean = None
        self._std = None

    def _broadcastable(self, values: np.ndarray) -> np.ndarray:
        """Shape 1-D per-channel stats to broadcast over [N, C, H, W] batches."""
        if values.ndim == 1 and self.input_shape is not None and len(self.input_shape) == 3:
            return values.reshape(1, -1, 1, 1)
        return values

    def _sequence_batch(self, batch) -> np.ndarray:
        try:
            ids = np.asarray(batch)
        except ValueError:  # ragged nested lists refuse to stack
            raise ValueError(
                "sequence batch must be rectangular (N, length) token ids; "
                "pad or submit prompts one example at a time"
            ) from None
        if ids.dtype == object or ids.ndim != 2:
            raise ValueError(
                "sequence batch must be rectangular (N, length) token ids; "
                "pad or submit prompts one example at a time"
            )
        if ids.shape[1] == 0:
            raise ValueError("empty sequence: at least one token id is required")
        if ids.shape[1] > self.max_length:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds the artifact "
                f"max_length {self.max_length}"
            )
        if not np.issubdtype(ids.dtype, np.integer):
            rounded = np.rint(ids)
            if not np.all(ids == rounded):
                raise ValueError("token ids must be integers")
            ids = rounded
        ids = ids.astype(np.int64)
        if self.vocab_size is not None:
            if np.any(ids < 0) or np.any(ids >= self.vocab_size):
                raise ValueError(
                    f"token ids must lie in [0, {self.vocab_size}); "
                    f"got range [{ids.min()}, {ids.max()}]"
                )
        elif np.any(ids < 0):
            raise ValueError("token ids must be non-negative")
        out = np.full((ids.shape[0], self.max_length), self.pad_id, dtype=np.int64)
        out[:, self.max_length - ids.shape[1] :] = ids
        return np.ascontiguousarray(out)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        """Normalize one batch (leading axis = examples) to model input."""
        if self.kind == "sequence":
            return self._sequence_batch(batch)
        batch = np.asarray(batch, dtype=np.float32)
        if self.input_shape is not None:
            per_example = batch.shape[1:]
            if per_example != self.input_shape:
                expected = int(np.prod(self.input_shape))
                if per_example == (expected,):
                    batch = batch.reshape((batch.shape[0],) + self.input_shape)
                else:
                    raise ValueError(
                        f"example shape {per_example} does not match artifact "
                        f"input_shape {self.input_shape}"
                    )
        if self._mean is not None:
            batch = batch - self._mean
        if self._std is not None:
            batch = batch / self._std
        if self.flatten:
            batch = batch.reshape(batch.shape[0], -1)
        return np.ascontiguousarray(batch, dtype=np.float32)

    def example_shapes(self) -> tuple[tuple[int, ...], ...]:
        """Accepted per-example shapes (empty when the spec is shapeless).

        Sequence specs accept any length up to ``max_length`` and are
        reported shapeless; the padded output shape is ``(max_length,)``.
        """
        if self.input_shape is None:
            return ()
        return (self.input_shape, (int(np.prod(self.input_shape)),))
