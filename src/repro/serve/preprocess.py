"""Declarative preprocessing spec applied to raw request payloads.

A serving artifact carries a JSON-able *preprocessing spec* so that every
consumer of the model (in-process server, HTTP frontend, worker pool)
normalizes requests identically — the spec travels with the weights instead
of living in application code.

Spec keys (all optional):

``input_shape``
    Per-example shape, e.g. ``[3, 12, 12]``.  Incoming examples are
    validated against it; flat examples of the matching total size are
    reshaped to it.
``mean`` / ``std``
    Per-channel (or scalar) normalization applied as ``(x - mean) / std``.
    Broadcast against the example shape from the left, i.e. a length-C list
    matches ``[C, H, W]`` inputs.
``flatten``
    When true, examples are flattened to 1-D after normalization (for MLP
    artifacts trained on flattened images).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Preprocessor"]


class Preprocessor:
    """Compiled form of a preprocessing spec; callable on example batches."""

    def __init__(self, spec: dict | None):
        spec = dict(spec or {})
        self.spec = spec
        shape = spec.get("input_shape")
        self.input_shape = None if shape is None else tuple(int(s) for s in shape)
        self.flatten = bool(spec.get("flatten", False))
        mean = spec.get("mean")
        std = spec.get("std")
        self._mean = None if mean is None else self._broadcastable(np.asarray(mean, np.float32))
        self._std = None if std is None else self._broadcastable(np.asarray(std, np.float32))
        if self._std is not None and np.any(self._std == 0.0):
            raise ValueError("preprocessing std must be non-zero")

    def _broadcastable(self, values: np.ndarray) -> np.ndarray:
        """Shape 1-D per-channel stats to broadcast over [N, C, H, W] batches."""
        if values.ndim == 1 and self.input_shape is not None and len(self.input_shape) == 3:
            return values.reshape(1, -1, 1, 1)
        return values

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        """Normalize one batch (leading axis = examples) to model input."""
        batch = np.asarray(batch, dtype=np.float32)
        if self.input_shape is not None:
            per_example = batch.shape[1:]
            if per_example != self.input_shape:
                expected = int(np.prod(self.input_shape))
                if per_example == (expected,):
                    batch = batch.reshape((batch.shape[0],) + self.input_shape)
                else:
                    raise ValueError(
                        f"example shape {per_example} does not match artifact "
                        f"input_shape {self.input_shape}"
                    )
        if self._mean is not None:
            batch = batch - self._mean
        if self._std is not None:
            batch = batch / self._std
        if self.flatten:
            batch = batch.reshape(batch.shape[0], -1)
        return np.ascontiguousarray(batch, dtype=np.float32)

    def example_shapes(self) -> tuple[tuple[int, ...], ...]:
        """Accepted per-example shapes (empty when the spec is shapeless)."""
        if self.input_shape is None:
            return ()
        return (self.input_shape, (int(np.prod(self.input_shape)),))
