"""Experiment cell runner: one (method, model, dataset, sparsity) training run.

This is what every Table-I/II bench invokes.  It wires together the data
loaders, optimizer + cosine schedule (the paper's recipe), the method from
:mod:`repro.experiments.registry`, and FLOPs accounting, and returns a
:class:`RunResult` with everything the tables report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import ClassificationData
from repro.data.loader import DataLoader
from repro.flops import profile_model, sparse_inference_flops, training_flops_multiplier
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.optim import SGD, CosineAnnealingLR
from repro.train import Trainer
from repro.train.callbacks import LambdaCallback
from repro.experiments.registry import build_method

__all__ = ["RunResult", "run_image_classification", "run_multi_seed"]


@dataclass
class RunResult:
    """Outcome of one training run."""

    method: str
    dataset: str
    sparsity: float
    final_accuracy: float
    best_accuracy: float
    train_loss: float
    epochs: int
    seconds: float
    exploration_rate: float | None
    actual_sparsity: float | None
    inference_flops_multiplier: float
    training_flops_multiplier: float
    history: object = field(repr=False, default=None)
    masks: dict = field(repr=False, default_factory=dict)


def run_image_classification(
    method: str,
    model_factory: Callable[[int], Module],
    data: ClassificationData,
    *,
    sparsity: float = 0.9,
    epochs: int = 5,
    batch_size: int = 64,
    lr: float = 0.1,
    momentum: float = 0.9,
    weight_decay: float = 5e-4,
    delta_t: int = 20,
    drop_fraction: float = 0.3,
    c: float = 1e-3,
    epsilon: float = 1.0,
    distribution: str = "erk",
    seed: int = 0,
    eval_every: int = 1,
) -> RunResult:
    """Train one method on one dataset and return its table row.

    ``model_factory(seed)`` must build a freshly initialized model; the same
    seed also drives data order and mask randomness so runs are reproducible.
    """
    start = time.time()
    rng = np.random.default_rng(seed)
    model = model_factory(seed)
    train_loader = DataLoader(
        data.train, batch_size=batch_size, shuffle=True,
        rng=np.random.default_rng(seed + 1),
    )
    test_loader = DataLoader(data.test, batch_size=256)
    steps_per_epoch = len(train_loader)
    total_steps = epochs * steps_per_epoch

    optimizer = SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)

    saliency_batches = None
    if method in ("snip", "grasp"):
        saliency_loader = DataLoader(
            data.train, batch_size=batch_size, shuffle=True,
            rng=np.random.default_rng(seed + 2),
        )
        saliency_batches = [next(iter(saliency_loader))]

    setup = build_method(
        method,
        model,
        optimizer,
        sparsity,
        total_steps,
        distribution=distribution,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        c=c,
        epsilon=epsilon,
        loss_fn=cross_entropy,
        saliency_batches=saliency_batches,
        input_shape=data.input_shape,
        rng=rng,
    )

    # Track density snapshots per epoch for training-FLOPs accounting of
    # dense-to-sparse methods (dynamic methods keep a constant budget).
    density_snapshots: list[dict[str, float]] = []

    def snapshot(record) -> None:
        if setup.masked is not None:
            density_snapshots.append(
                {t.name: t.density for t in setup.masked.targets}
            )

    trainer = Trainer(
        model,
        optimizer,
        cross_entropy,
        train_loader,
        test_loader,
        scheduler=scheduler,
        controller=setup.controller,
        callbacks=[LambdaCallback(snapshot)],
        eval_every=eval_every,
    )
    history = trainer.fit(epochs)
    if setup.finalize is not None:
        setup.finalize()

    final_acc = history.final_test_accuracy or 0.0
    # STR's finalize may change the pattern; re-evaluate to report honestly.
    if setup.finalize is not None and test_loader is not None:
        from repro.train.trainer import evaluate_classifier

        final_acc = evaluate_classifier(model, test_loader)

    profile = profile_model(model_factory(seed), data.input_shape)
    if setup.masked is not None:
        masks = setup.masked.masks_snapshot()
        _, infer_mult = sparse_inference_flops(profile, masks)
        train_mult = training_flops_multiplier(
            profile, density_snapshots if density_snapshots else masks
        )
        actual_sparsity = setup.masked.global_sparsity()
    else:
        masks = {}
        infer_mult = 1.0
        train_mult = 1.0
        actual_sparsity = None

    coverage = getattr(setup.controller, "coverage", None)
    return RunResult(
        method=method,
        dataset=data.name,
        sparsity=sparsity,
        final_accuracy=final_acc,
        best_accuracy=history.best_test_accuracy or final_acc,
        train_loss=history.epochs[-1].train_loss if len(history) else float("nan"),
        epochs=epochs,
        seconds=time.time() - start,
        exploration_rate=coverage.exploration_rate() if coverage else None,
        actual_sparsity=actual_sparsity,
        inference_flops_multiplier=infer_mult,
        training_flops_multiplier=train_mult,
        history=history,
        masks=masks,
    )


def run_multi_seed(
    method: str,
    model_factory: Callable[[int], Module],
    data: ClassificationData,
    seeds: tuple[int, ...] = (0, 1, 2),
    **kwargs,
) -> tuple[float, float, list[RunResult]]:
    """Run several seeds; return (mean accuracy, std, all results).

    Mirrors the paper's "(mean ± std) over three random seeds" protocol.
    """
    results = [
        run_image_classification(method, model_factory, data, seed=seed, **kwargs)
        for seed in seeds
    ]
    scores = np.array([r.final_accuracy for r in results])
    return float(scores.mean()), float(scores.std()), results
