"""Experiment cell runner: one (method, model, dataset, sparsity) training run.

This is what every Table-I/II bench invokes.  It wires together the data
loaders, optimizer + cosine schedule (the paper's recipe), the method from
:mod:`repro.experiments.registry`, and FLOPs accounting, and returns a
:class:`RunResult` with everything the tables report.

Fault tolerance: pass ``checkpoint_dir`` to write resume-exact training
checkpoints (:mod:`repro.train.checkpoint`) during the run, and
``resume_from`` to continue a killed run bitwise-identically.  At the grid
level, :func:`run_sweep` with ``checkpoint_dir`` records every completed
cell's result on disk (plus a ``manifest.json``); rerunning with
``resume=True`` skips completed cells and resumes partial ones from their
latest checkpoint, producing the same :class:`SweepReport` an uninterrupted
sweep would have.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import ClassificationData
from repro.data.loader import DataLoader
from repro.flops import profile_model, sparse_inference_flops, training_flops_multiplier
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.optim import SGD, CosineAnnealingLR
from repro.parallel import run_sharded
from repro.train import Trainer
from repro.train.callbacks import Callback
from repro.train.checkpoint import (
    CheckpointCallback,
    atomic_write_bytes,
    latest_checkpoint,
    load_training_checkpoint,
)
from repro.experiments.registry import SweepCell, build_method
from repro.experiments.workload import UNSET, WorkloadConfig, resolve_knob

__all__ = [
    "RunResult",
    "CellOutcome",
    "SweepReport",
    "cell_key",
    "run_cell_grid",
    "run_image_classification",
    "run_multi_seed",
    "run_sweep",
]


@dataclass
class RunResult:
    """Outcome of one training run."""

    method: str
    dataset: str
    sparsity: float
    final_accuracy: float
    best_accuracy: float
    train_loss: float
    epochs: int
    seconds: float
    exploration_rate: float | None
    actual_sparsity: float | None
    inference_flops_multiplier: float
    training_flops_multiplier: float
    history: object = field(repr=False, default=None)
    masks: dict = field(repr=False, default_factory=dict)
    # Final per-layer densities from the DensityBudget (the controller's
    # source of truth) — under cross-layer rebalancing these drift from the
    # construction-time ER/ERK split, and this is where the drift surfaces.
    final_layer_densities: dict = field(repr=False, default_factory=dict)
    # Populated only with ``keep_model=True`` (serial runs): the trained
    # model and its MaskedModel wrapper, for compile-and-export pipelines
    # (see repro.serve).  Sweep workers never ship these over pipes.
    model: object = field(repr=False, default=None, compare=False)
    masked: object = field(repr=False, default=None, compare=False)


class _DensitySnapshotCallback(Callback):
    """Per-epoch layer-density snapshots (training-FLOPs accounting).

    Stateful so that a resumed run reports the same training-FLOPs
    multiplier as the uninterrupted one: the snapshots of pre-interruption
    epochs ride along in the training checkpoint.
    """

    def __init__(self, masked):
        self._masked = masked
        self.snapshots: list[dict[str, float]] = []

    def on_epoch_end(self, record) -> None:
        if self._masked is not None:
            self.snapshots.append({t.name: t.density for t in self._masked.targets})

    def state_dict(self) -> dict:
        return {"snapshots": [dict(s) for s in self.snapshots]}

    def load_state_dict(self, state: dict) -> None:
        self.snapshots = [dict(s) for s in state["snapshots"]]


def _resolve_resume_path(resume_from) -> pathlib.Path | None:
    """A checkpoint file, the latest checkpoint of a directory, or None.

    A directory without checkpoints — including a directory that does not
    exist yet — resolves to None (fresh start): this is what lets a
    resumed sweep treat never-started cells uniformly.  An explicitly
    named checkpoint *file* (``*.npz``) that is missing raises instead of
    silently restarting from scratch.
    """
    if resume_from is None:
        return None
    resume_from = pathlib.Path(resume_from)
    if resume_from.is_dir():
        return latest_checkpoint(resume_from)
    if resume_from.exists():
        return resume_from
    if resume_from.suffix == ".npz":
        raise FileNotFoundError(f"resume checkpoint not found: {resume_from}")
    return None


def run_image_classification(
    method: str = UNSET,
    model_factory: Callable[[int], Module] = None,
    data: ClassificationData = None,
    *,
    config: WorkloadConfig | None = None,
    sparsity: float = UNSET,
    epochs: int = UNSET,
    batch_size: int = UNSET,
    lr: float = UNSET,
    momentum: float = 0.9,
    weight_decay: float = 5e-4,
    delta_t: int = UNSET,
    drop_fraction: float = UNSET,
    c: float = UNSET,
    epsilon: float = UNSET,
    distribution: str = UNSET,
    block_size: int | None = UNSET,
    sparse_backend: str | None = UNSET,
    seed: int = UNSET,
    eval_every: int = 1,
    n_workers: int = UNSET,
    callbacks: Sequence[Callback] = (),
    checkpoint_dir=UNSET,
    checkpoint_every_epochs: int | None = UNSET,
    checkpoint_every_steps: int | None = UNSET,
    checkpoint_keep_last: int | None = UNSET,
    resume_from=UNSET,
    keep_model: bool = False,
) -> RunResult:
    """Train one method on one dataset and return its table row.

    ``model_factory(seed)`` must build a freshly initialized model; the same
    seed also drives data order and mask randomness so runs are reproducible.

    The uniform workload knobs (method / budget / schedule / checkpoint /
    backend) may also arrive through ``config=``, a
    :class:`~repro.experiments.workload.WorkloadConfig` shared verbatim with
    ``run_rl`` / ``run_gan`` / ``run_lm``; an explicitly passed keyword
    always wins over the config field, which wins over the defaults listed
    here.  Workload-specific knobs (``momentum``, ``weight_decay``,
    ``eval_every``) remain plain keyword arguments.

    ``checkpoint_dir`` enables resume-exact checkpointing during training
    (cadence via ``checkpoint_every_epochs``/``checkpoint_every_steps``,
    retention via ``checkpoint_keep_last``).  ``resume_from`` — a checkpoint
    file or a directory holding checkpoints — restores the full training
    state before training continues; the resumed run's trajectory, final
    masks and coverage counters are bitwise identical to an uninterrupted
    run of the same configuration.
    """
    method = resolve_knob("method", method, config, None)
    if method is None:
        raise TypeError("run_image_classification: 'method' is required")
    if model_factory is None or data is None:
        raise TypeError("run_image_classification: model_factory and data are required")
    sparsity = resolve_knob("sparsity", sparsity, config, 0.9)
    epochs = resolve_knob("epochs", epochs, config, 5)
    batch_size = resolve_knob("batch_size", batch_size, config, 64)
    lr = resolve_knob("lr", lr, config, 0.1)
    delta_t = resolve_knob("delta_t", delta_t, config, 20)
    drop_fraction = resolve_knob("drop_fraction", drop_fraction, config, 0.3)
    c = resolve_knob("c", c, config, 1e-3)
    epsilon = resolve_knob("epsilon", epsilon, config, 1.0)
    distribution = resolve_knob("distribution", distribution, config, "erk")
    block_size = resolve_knob("block_size", block_size, config, None)
    sparse_backend = resolve_knob("sparse_backend", sparse_backend, config, None)
    seed = resolve_knob("seed", seed, config, 0)
    n_workers = resolve_knob("n_workers", n_workers, config, 0)
    checkpoint_dir = resolve_knob("checkpoint_dir", checkpoint_dir, config, None)
    checkpoint_every_epochs = resolve_knob(
        "checkpoint_every_epochs", checkpoint_every_epochs, config, 1
    )
    checkpoint_every_steps = resolve_knob(
        "checkpoint_every_steps", checkpoint_every_steps, config, None
    )
    checkpoint_keep_last = resolve_knob(
        "checkpoint_keep_last", checkpoint_keep_last, config, None
    )
    resume_from = resolve_knob("resume_from", resume_from, config, None)
    start = time.time()
    rng = np.random.default_rng(seed)
    model = model_factory(seed)
    train_loader = DataLoader(
        data.train,
        batch_size=batch_size,
        shuffle=True,
        rng=np.random.default_rng(seed + 1),
    )
    test_loader = DataLoader(data.test, batch_size=256)
    steps_per_epoch = len(train_loader)
    total_steps = epochs * steps_per_epoch

    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)

    saliency_batches = None
    if method in ("snip", "grasp"):
        saliency_loader = DataLoader(
            data.train,
            batch_size=batch_size,
            shuffle=True,
            rng=np.random.default_rng(seed + 2),
        )
        saliency_batches = [next(iter(saliency_loader))]

    setup = build_method(
        method,
        model,
        optimizer,
        sparsity,
        total_steps,
        distribution=distribution,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        c=c,
        epsilon=epsilon,
        loss_fn=cross_entropy,
        saliency_batches=saliency_batches,
        input_shape=data.input_shape,
        rng=rng,
        block_size=block_size,
    )

    # Track density snapshots per epoch for training-FLOPs accounting.
    # Dense-to-sparse methods shrink the budget over time; rebalancing
    # controllers keep the global budget constant but move it across layers.
    snapshot_callback = _DensitySnapshotCallback(setup.masked)
    all_callbacks: list[Callback] = [snapshot_callback, *callbacks]
    if checkpoint_dir is not None:
        all_callbacks.append(
            CheckpointCallback(
                checkpoint_dir,
                every_n_epochs=checkpoint_every_epochs,
                every_n_steps=checkpoint_every_steps,
                keep_last=checkpoint_keep_last,
            )
        )

    trainer = Trainer(
        model,
        optimizer,
        cross_entropy,
        train_loader,
        test_loader,
        scheduler=scheduler,
        controller=setup.controller,
        callbacks=all_callbacks,
        eval_every=eval_every,
        sparse_backend=sparse_backend,
        n_workers=n_workers,
    )
    resume_path = _resolve_resume_path(resume_from)
    if resume_path is not None:
        trainer.load_state_dict(load_training_checkpoint(resume_path))
    history = trainer.fit(epochs)
    if setup.finalize is not None:
        setup.finalize()

    final_acc = history.final_test_accuracy or 0.0
    # STR's finalize may change the pattern; re-evaluate to report honestly.
    if setup.finalize is not None and test_loader is not None:
        from repro.train.trainer import evaluate_classifier

        final_acc = evaluate_classifier(model, test_loader)

    profile = profile_model(model_factory(seed), data.input_shape)
    if setup.masked is not None:
        masks = setup.masked.masks_snapshot()
        _, infer_mult = sparse_inference_flops(profile, masks)
        density_snapshots = snapshot_callback.snapshots
        train_mult = training_flops_multiplier(
            profile,
            density_snapshots if density_snapshots else masks,
        )
        actual_sparsity = setup.masked.global_sparsity()
        budget = getattr(setup.masked, "budget", None)
        final_layer_densities = (
            {name: budget.density(name) for name in budget.names} if budget is not None else {}
        )
    else:
        masks = {}
        infer_mult = 1.0
        train_mult = 1.0
        actual_sparsity = None
        final_layer_densities = {}

    coverage = getattr(setup.controller, "coverage", None)
    return RunResult(
        method=method,
        dataset=data.name,
        sparsity=sparsity,
        final_accuracy=final_acc,
        best_accuracy=history.best_test_accuracy or final_acc,
        train_loss=history.epochs[-1].train_loss if len(history) else float("nan"),
        epochs=epochs,
        seconds=time.time() - start,
        exploration_rate=coverage.exploration_rate() if coverage else None,
        actual_sparsity=actual_sparsity,
        inference_flops_multiplier=infer_mult,
        training_flops_multiplier=train_mult,
        history=history,
        masks=masks,
        final_layer_densities=final_layer_densities,
        model=model if keep_model else None,
        masked=setup.masked if keep_model else None,
    )


def run_multi_seed(
    method: str,
    model_factory: Callable[[int], Module],
    data: ClassificationData,
    seeds: tuple[int, ...] = (0, 1, 2),
    n_proc: int | None = None,
    **kwargs,
) -> tuple[float, float, list[RunResult]]:
    """Run several seeds; return (mean accuracy, std, all results).

    Mirrors the paper's "(mean ± std) over three random seeds" protocol.
    Seeds are independent runs, so they fan out across ``n_proc`` worker
    processes (default: the ``REPRO_NPROC`` environment variable; 1 =
    serial).  Every seed computes exactly what the serial path computes —
    each run re-seeds all of its randomness from its own ``seed`` — and the
    aggregation is identical; a failed seed raises, as it would serially
    (in-process runs abort on the first failure with the original
    exception; sharded runs raise after the other seeds finish).
    """
    jobs = [
        (lambda seed=seed: run_image_classification(
            method, model_factory, data, seed=seed, **kwargs
        ))
        for seed in seeds
    ]
    results = [
        shard.unwrap()
        for shard in run_sharded(jobs, n_proc=n_proc, fail_fast=True)
    ]
    scores = np.array([r.final_accuracy for r in results])
    return float(scores.mean()), float(scores.std()), results


@dataclass
class CellOutcome:
    """One sweep cell's result — or its failure report (crash isolation).

    ``cached`` marks outcomes served from a sweep checkpoint directory on
    resume (the cell was completed by an earlier, interrupted sweep and was
    not re-run).
    """

    cell: "SweepCell"
    result: RunResult | None
    error: str | None = None
    seconds: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """All outcomes of a sharded sweep plus paper-style aggregation."""

    outcomes: list[CellOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CellOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def aggregate(self) -> list[dict]:
        """Group over seeds: one ``mean ± std`` row per distinct cell.

        Rows preserve first-appearance order of the (method, model,
        dataset, sparsity) groups, matching the serial table layout.
        """
        groups: dict[tuple, list[CellOutcome]] = {}
        for outcome in self.outcomes:
            cell = outcome.cell
            key = (cell.method, cell.model, cell.dataset, cell.sparsity)
            groups.setdefault(key, []).append(outcome)
        rows = []
        for (method, model, dataset, sparsity), members in groups.items():
            scores = np.array([o.result.final_accuracy for o in members if o.ok], dtype=np.float64)
            rows.append(
                {
                    "method": method,
                    "model": model,
                    "dataset": dataset,
                    "sparsity": sparsity,
                    "mean_accuracy": float(scores.mean()) if scores.size else None,
                    "std_accuracy": float(scores.std()) if scores.size else None,
                    "seeds_ok": int(scores.size),
                    "seeds_failed": sum(1 for o in members if not o.ok),
                }
            )
        return rows


def cell_key(cell: "SweepCell") -> str:
    """Stable, filesystem-safe identifier of one sweep cell."""
    return (
        f"{cell.method}_{cell.model}_{cell.dataset}"
        f"_s{cell.sparsity:g}_seed{cell.seed}"
    ).replace("/", "-")


def _config_fingerprint(run_kwargs: dict) -> str:
    """Digest of the sweep's per-cell run configuration.

    Guards cached cell results and checkpoints against a resumed sweep
    whose arguments changed (different epochs, lr, delta_t, ...): a
    mismatch invalidates the cell instead of silently serving stale
    science.  Non-JSON values (custom callbacks, functions) contribute
    only their type name — they cannot be fingerprinted stably across
    processes.
    """

    def jsonable(value):
        try:
            json.dumps(value)
            return value
        except TypeError:
            return f"<{type(value).__name__}>"

    payload = json.dumps(
        {
            key: jsonable(value)
            for key, value in run_kwargs.items()
            # Checkpoint cadence/retention doesn't affect the science; a
            # resumed sweep may legitimately change it.
            if not key.startswith("checkpoint_")
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _invalidate_stale_cell(cell_dir: pathlib.Path, fingerprint: str) -> None:
    """Drop a cell's records/checkpoints written under a different config."""
    marker = cell_dir / "config.json"
    if marker.exists():
        try:
            stored = json.loads(marker.read_text()).get("fingerprint")
        except (ValueError, OSError):
            stored = None
        if stored == fingerprint:
            return
        (cell_dir / "result.pkl").unlink(missing_ok=True)
        for stale in cell_dir.glob("ckpt-*.npz"):
            stale.unlink(missing_ok=True)
    atomic_write_bytes(marker, json.dumps({"fingerprint": fingerprint}).encode())


def _load_cached_outcome(
    cell: "SweepCell",
    cell_dir: pathlib.Path,
    fingerprint: str,
) -> CellOutcome | None:
    record_path = cell_dir / "result.pkl"
    if not record_path.exists():
        return None
    marker = cell_dir / "config.json"
    try:
        stored = json.loads(marker.read_text()).get("fingerprint")
    except (ValueError, OSError):
        return None  # unknown provenance: re-run the cell
    if stored != fingerprint:
        return None  # recorded under different arguments: re-run
    try:
        with open(record_path, "rb") as handle:
            result: RunResult = pickle.load(handle)
    except Exception:
        return None  # torn/corrupt record: re-run the cell
    return CellOutcome(cell=cell, result=result, seconds=result.seconds, cached=True)


def _write_manifest(checkpoint_dir: pathlib.Path, outcomes: list[CellOutcome]) -> None:
    manifest = {
        "cells": {
            cell_key(outcome.cell): {
                "status": "ok" if outcome.ok else "failed",
                "cached": outcome.cached,
                "seconds": outcome.seconds,
                "final_accuracy": (
                    outcome.result.final_accuracy if outcome.ok else None
                ),
                "error": outcome.error,
            }
            for outcome in outcomes
        },
    }
    atomic_write_bytes(
        checkpoint_dir / "manifest.json",
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )


def run_sweep(
    cells: Sequence["SweepCell"],
    model_factories: dict[str, Callable[[int], Callable[[int], Module]]],
    datasets: dict[str, ClassificationData],
    n_proc: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    **run_kwargs,
) -> SweepReport:
    """Run a grid of sweep cells across ``n_proc`` worker processes.

    ``model_factories`` maps a model name to ``factory(num_classes) ->
    (seed -> Module)`` (the shape :mod:`repro.experiments.configs` already
    uses); ``datasets`` maps a dataset name to its data.  Unlike
    :func:`run_multi_seed`, a failing cell does not abort the sweep: it is
    reported as a failed :class:`CellOutcome` and every other cell still
    runs (crash isolation extends to worker-process death).

    Fault tolerance: with ``checkpoint_dir`` set, each cell trains with
    resume-exact checkpointing under ``<checkpoint_dir>/<cell_key>/`` and
    records its finished :class:`RunResult` there (atomically, from the
    worker that ran it); the parent maintains ``manifest.json``.  With
    ``resume=True``, completed cells are served from those records without
    re-running (``CellOutcome.cached``) and partial cells restore from
    their latest checkpoint mid-epoch, so a killed sweep rerun with the
    same arguments produces the :class:`SweepReport` the uninterrupted
    sweep would have produced.
    """
    cells = list(cells)
    for cell in cells:
        if cell.model not in model_factories:
            raise KeyError(f"no model factory for {cell.model!r}")
        if cell.dataset not in datasets:
            raise KeyError(f"no dataset named {cell.dataset!r}")

    def run_cell(cell: "SweepCell", cell_dir, resume_cell: bool, kwargs: dict):
        data = datasets[cell.dataset]
        factory = model_factories[cell.model](data.num_classes)
        return run_image_classification(
            cell.method,
            factory,
            data,
            sparsity=cell.sparsity,
            seed=cell.seed,
            checkpoint_dir=cell_dir,
            resume_from=cell_dir if resume_cell else None,
            **kwargs,
        )

    return run_cell_grid(
        cells,
        run_cell,
        n_proc=n_proc,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        **run_kwargs,
    )


def run_cell_grid(
    cells: Sequence["SweepCell"],
    run_cell: Callable,
    n_proc: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    **run_kwargs,
) -> SweepReport:
    """Workload-agnostic sweep orchestration (shared by every cell grid).

    ``run_cell(cell, cell_dir, resume, run_kwargs)`` trains one cell and
    returns its picklable result; everything else — config-fingerprint
    invalidation, cached-outcome resume, per-job crash isolation across
    ``n_proc`` forked workers, atomic per-cell ``result.pkl`` records, and
    the ``manifest.json`` — lives here exactly once, so the supervised and
    RL sweeps cannot drift apart.
    """
    cells = list(cells)
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    checkpoint_root = (
        pathlib.Path(checkpoint_dir) if checkpoint_dir is not None else None
    )

    fingerprint = _config_fingerprint(run_kwargs)
    cached: dict[int, CellOutcome] = {}
    if checkpoint_root is not None and resume:
        for index, cell in enumerate(cells):
            outcome = _load_cached_outcome(cell, checkpoint_root / cell_key(cell), fingerprint)
            if outcome is not None:
                cached[index] = outcome

    def make_job(cell: "SweepCell"):
        cell_dir = (
            checkpoint_root / cell_key(cell) if checkpoint_root is not None else None
        )

        def job():
            if cell_dir is not None:
                # Checkpoints/results recorded under different sweep
                # arguments must not leak into this run or a later resume.
                _invalidate_stale_cell(cell_dir, fingerprint)
            result = run_cell(cell, cell_dir, resume, run_kwargs)
            if cell_dir is not None:
                # The completed-cell record is written by whichever process
                # ran the cell, so a killed *parent* loses nothing.
                atomic_write_bytes(
                    cell_dir / "result.pkl",
                    pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
                )
            return result

        return job

    pending = [index for index in range(len(cells)) if index not in cached]
    shards = run_sharded([make_job(cells[index]) for index in pending], n_proc=n_proc)
    outcomes_by_index = dict(cached)
    for index, shard in zip(pending, shards):
        outcomes_by_index[index] = CellOutcome(
            cell=cells[index],
            result=shard.value if shard.ok else None,
            error=None if shard.ok else shard.error,
            seconds=shard.seconds,
        )
    outcomes = [outcomes_by_index[index] for index in range(len(cells))]
    if checkpoint_root is not None:
        checkpoint_root.mkdir(parents=True, exist_ok=True)
        _write_manifest(checkpoint_root, outcomes)
    return SweepReport(outcomes=outcomes)
