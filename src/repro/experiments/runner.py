"""Experiment cell runner: one (method, model, dataset, sparsity) training run.

This is what every Table-I/II bench invokes.  It wires together the data
loaders, optimizer + cosine schedule (the paper's recipe), the method from
:mod:`repro.experiments.registry`, and FLOPs accounting, and returns a
:class:`RunResult` with everything the tables report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import ClassificationData
from repro.data.loader import DataLoader
from repro.flops import profile_model, sparse_inference_flops, training_flops_multiplier
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.optim import SGD, CosineAnnealingLR
from repro.parallel import run_sharded
from repro.train import Trainer
from repro.train.callbacks import LambdaCallback
from repro.experiments.registry import SweepCell, build_method

__all__ = [
    "RunResult",
    "CellOutcome",
    "SweepReport",
    "run_image_classification",
    "run_multi_seed",
    "run_sweep",
]


@dataclass
class RunResult:
    """Outcome of one training run."""

    method: str
    dataset: str
    sparsity: float
    final_accuracy: float
    best_accuracy: float
    train_loss: float
    epochs: int
    seconds: float
    exploration_rate: float | None
    actual_sparsity: float | None
    inference_flops_multiplier: float
    training_flops_multiplier: float
    history: object = field(repr=False, default=None)
    masks: dict = field(repr=False, default_factory=dict)


def run_image_classification(
    method: str,
    model_factory: Callable[[int], Module],
    data: ClassificationData,
    *,
    sparsity: float = 0.9,
    epochs: int = 5,
    batch_size: int = 64,
    lr: float = 0.1,
    momentum: float = 0.9,
    weight_decay: float = 5e-4,
    delta_t: int = 20,
    drop_fraction: float = 0.3,
    c: float = 1e-3,
    epsilon: float = 1.0,
    distribution: str = "erk",
    seed: int = 0,
    eval_every: int = 1,
    n_workers: int = 0,
) -> RunResult:
    """Train one method on one dataset and return its table row.

    ``model_factory(seed)`` must build a freshly initialized model; the same
    seed also drives data order and mask randomness so runs are reproducible.
    """
    start = time.time()
    rng = np.random.default_rng(seed)
    model = model_factory(seed)
    train_loader = DataLoader(
        data.train, batch_size=batch_size, shuffle=True,
        rng=np.random.default_rng(seed + 1),
    )
    test_loader = DataLoader(data.test, batch_size=256)
    steps_per_epoch = len(train_loader)
    total_steps = epochs * steps_per_epoch

    optimizer = SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)

    saliency_batches = None
    if method in ("snip", "grasp"):
        saliency_loader = DataLoader(
            data.train, batch_size=batch_size, shuffle=True,
            rng=np.random.default_rng(seed + 2),
        )
        saliency_batches = [next(iter(saliency_loader))]

    setup = build_method(
        method,
        model,
        optimizer,
        sparsity,
        total_steps,
        distribution=distribution,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        c=c,
        epsilon=epsilon,
        loss_fn=cross_entropy,
        saliency_batches=saliency_batches,
        input_shape=data.input_shape,
        rng=rng,
    )

    # Track density snapshots per epoch for training-FLOPs accounting of
    # dense-to-sparse methods (dynamic methods keep a constant budget).
    density_snapshots: list[dict[str, float]] = []

    def snapshot(record) -> None:
        if setup.masked is not None:
            density_snapshots.append(
                {t.name: t.density for t in setup.masked.targets}
            )

    trainer = Trainer(
        model,
        optimizer,
        cross_entropy,
        train_loader,
        test_loader,
        scheduler=scheduler,
        controller=setup.controller,
        callbacks=[LambdaCallback(snapshot)],
        eval_every=eval_every,
        n_workers=n_workers,
    )
    history = trainer.fit(epochs)
    if setup.finalize is not None:
        setup.finalize()

    final_acc = history.final_test_accuracy or 0.0
    # STR's finalize may change the pattern; re-evaluate to report honestly.
    if setup.finalize is not None and test_loader is not None:
        from repro.train.trainer import evaluate_classifier

        final_acc = evaluate_classifier(model, test_loader)

    profile = profile_model(model_factory(seed), data.input_shape)
    if setup.masked is not None:
        masks = setup.masked.masks_snapshot()
        _, infer_mult = sparse_inference_flops(profile, masks)
        train_mult = training_flops_multiplier(
            profile, density_snapshots if density_snapshots else masks
        )
        actual_sparsity = setup.masked.global_sparsity()
    else:
        masks = {}
        infer_mult = 1.0
        train_mult = 1.0
        actual_sparsity = None

    coverage = getattr(setup.controller, "coverage", None)
    return RunResult(
        method=method,
        dataset=data.name,
        sparsity=sparsity,
        final_accuracy=final_acc,
        best_accuracy=history.best_test_accuracy or final_acc,
        train_loss=history.epochs[-1].train_loss if len(history) else float("nan"),
        epochs=epochs,
        seconds=time.time() - start,
        exploration_rate=coverage.exploration_rate() if coverage else None,
        actual_sparsity=actual_sparsity,
        inference_flops_multiplier=infer_mult,
        training_flops_multiplier=train_mult,
        history=history,
        masks=masks,
    )


def run_multi_seed(
    method: str,
    model_factory: Callable[[int], Module],
    data: ClassificationData,
    seeds: tuple[int, ...] = (0, 1, 2),
    n_proc: int | None = None,
    **kwargs,
) -> tuple[float, float, list[RunResult]]:
    """Run several seeds; return (mean accuracy, std, all results).

    Mirrors the paper's "(mean ± std) over three random seeds" protocol.
    Seeds are independent runs, so they fan out across ``n_proc`` worker
    processes (default: the ``REPRO_NPROC`` environment variable; 1 =
    serial).  Every seed computes exactly what the serial path computes —
    each run re-seeds all of its randomness from its own ``seed`` — and the
    aggregation is identical; a failed seed raises, as it would serially
    (in-process runs abort on the first failure with the original
    exception; sharded runs raise after the other seeds finish).
    """
    jobs = [
        (lambda seed=seed: run_image_classification(
            method, model_factory, data, seed=seed, **kwargs
        ))
        for seed in seeds
    ]
    results = [
        shard.unwrap()
        for shard in run_sharded(jobs, n_proc=n_proc, fail_fast=True)
    ]
    scores = np.array([r.final_accuracy for r in results])
    return float(scores.mean()), float(scores.std()), results


@dataclass
class CellOutcome:
    """One sweep cell's result — or its failure report (crash isolation)."""

    cell: "SweepCell"
    result: RunResult | None
    error: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """All outcomes of a sharded sweep plus paper-style aggregation."""

    outcomes: list[CellOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CellOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def aggregate(self) -> list[dict]:
        """Group over seeds: one ``mean ± std`` row per distinct cell.

        Rows preserve first-appearance order of the (method, model,
        dataset, sparsity) groups, matching the serial table layout.
        """
        groups: dict[tuple, list[CellOutcome]] = {}
        for outcome in self.outcomes:
            cell = outcome.cell
            key = (cell.method, cell.model, cell.dataset, cell.sparsity)
            groups.setdefault(key, []).append(outcome)
        rows = []
        for (method, model, dataset, sparsity), members in groups.items():
            scores = np.array(
                [o.result.final_accuracy for o in members if o.ok], dtype=np.float64
            )
            rows.append(
                {
                    "method": method,
                    "model": model,
                    "dataset": dataset,
                    "sparsity": sparsity,
                    "mean_accuracy": float(scores.mean()) if scores.size else None,
                    "std_accuracy": float(scores.std()) if scores.size else None,
                    "seeds_ok": int(scores.size),
                    "seeds_failed": sum(1 for o in members if not o.ok),
                }
            )
        return rows


def run_sweep(
    cells: Sequence["SweepCell"],
    model_factories: dict[str, Callable[[int], Callable[[int], Module]]],
    datasets: dict[str, ClassificationData],
    n_proc: int | None = None,
    **run_kwargs,
) -> SweepReport:
    """Run a grid of sweep cells across ``n_proc`` worker processes.

    ``model_factories`` maps a model name to ``factory(num_classes) ->
    (seed -> Module)`` (the shape :mod:`repro.experiments.configs` already
    uses); ``datasets`` maps a dataset name to its data.  Unlike
    :func:`run_multi_seed`, a failing cell does not abort the sweep: it is
    reported as a failed :class:`CellOutcome` and every other cell still
    runs (crash isolation extends to worker-process death).
    """
    cells = list(cells)
    for cell in cells:
        if cell.model not in model_factories:
            raise KeyError(f"no model factory for {cell.model!r}")
        if cell.dataset not in datasets:
            raise KeyError(f"no dataset named {cell.dataset!r}")

    def make_job(cell: "SweepCell"):
        def job():
            data = datasets[cell.dataset]
            factory = model_factories[cell.model](data.num_classes)
            return run_image_classification(
                cell.method, factory, data,
                sparsity=cell.sparsity, seed=cell.seed, **run_kwargs,
            )
        return job

    shards = run_sharded([make_job(cell) for cell in cells], n_proc=n_proc)
    outcomes = [
        CellOutcome(
            cell=cell,
            result=shard.value if shard.ok else None,
            error=None if shard.ok else shard.error,
            seconds=shard.seconds,
        )
        for cell, shard in zip(cells, shards)
    ]
    return SweepReport(outcomes=outcomes)
