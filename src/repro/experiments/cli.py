"""Command-line interface for running reproduction experiments.

Usage (after ``pip install -e .``)::

    python -m repro.experiments.cli run --method dst_ee --dataset cifar10 \
        --model vgg19 --sparsity 0.9 --epochs 4
    python -m repro.experiments.cli gnn --dataset wiki_talk --sparsity 0.9
    python -m repro.experiments.cli methods

The heavyweight table sweeps live in ``benchmarks/`` (pytest-benchmark);
this CLI is for single-cell experiments and quick exploration.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import ALL_METHODS, method_family

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DST-EE reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one image-classification training run")
    run.add_argument("--method", default="dst_ee", choices=ALL_METHODS)
    run.add_argument("--dataset", default="cifar10",
                     choices=["cifar10", "cifar100", "imagenet"])
    run.add_argument("--model", default="vgg19",
                     choices=["vgg19", "vgg11", "resnet50", "resnet50_mini", "mlp"])
    run.add_argument("--sparsity", type=float, default=0.9)
    run.add_argument("--epochs", type=int, default=4)
    run.add_argument("--batch-size", type=int, default=64)
    run.add_argument("--lr", type=float, default=0.05)
    run.add_argument("--delta-t", type=int, default=6)
    run.add_argument("--c", type=float, default=1e-3,
                     help="exploration-exploitation coefficient (Eq. 1)")
    run.add_argument("--epsilon", type=float, default=1.0)
    run.add_argument("--distribution", default="erk",
                     choices=["erk", "er", "uniform"])
    run.add_argument("--width-mult", type=float, default=0.2)
    run.add_argument("--n-train", type=int, default=1024)
    run.add_argument("--n-test", type=int, default=512)
    run.add_argument("--image-size", type=int, default=12)
    run.add_argument("--seed", type=int, default=0)

    gnn = sub.add_parser("gnn", help="GNN link-prediction experiment")
    gnn.add_argument("--dataset", default="wiki_talk",
                     choices=["wiki_talk", "ia_email"])
    gnn.add_argument("--method", default="dst_ee",
                     choices=["dense", "dst_ee", "admm"])
    gnn.add_argument("--sparsity", type=float, default=0.9)
    gnn.add_argument("--epochs", type=int, default=12)
    gnn.add_argument("--nodes", type=int, default=400)
    gnn.add_argument("--seed", type=int, default=0)

    sub.add_parser("methods", help="list available methods by family")
    return parser


def _dataset(args):
    from repro.data import cifar10_like, cifar100_like, imagenet_like

    if args.dataset == "cifar10":
        return cifar10_like(n_train=args.n_train, n_test=args.n_test,
                            image_size=args.image_size, seed=args.seed)
    if args.dataset == "cifar100":
        return cifar100_like(n_train=args.n_train, n_test=args.n_test,
                             image_size=args.image_size, n_classes=20,
                             seed=args.seed)
    return imagenet_like(n_train=args.n_train, n_test=args.n_test,
                         image_size=args.image_size, n_classes=20,
                         seed=args.seed)


def _model_factory(args, num_classes: int):
    from repro.models import MLP, resnet50, resnet50_mini, vgg11, vgg19

    builders = {
        "vgg19": lambda seed: vgg19(num_classes, args.width_mult,
                                    args.image_size, seed=seed),
        "vgg11": lambda seed: vgg11(num_classes, args.width_mult,
                                    args.image_size, seed=seed),
        "resnet50": lambda seed: resnet50(num_classes, args.width_mult, seed=seed),
        "resnet50_mini": lambda seed: resnet50_mini(num_classes, args.width_mult,
                                                    seed=seed),
        "mlp": lambda seed: MLP(3 * args.image_size**2, (128, 64),
                                num_classes, seed=seed),
    }
    return builders[args.model]


def _command_run(args) -> int:
    from repro.experiments.runner import run_image_classification

    data = _dataset(args)
    result = run_image_classification(
        args.method, _model_factory(args, data.num_classes), data,
        sparsity=args.sparsity, epochs=args.epochs,
        batch_size=args.batch_size, lr=args.lr, delta_t=args.delta_t,
        c=args.c, epsilon=args.epsilon, distribution=args.distribution,
        seed=args.seed,
    )
    print(f"method:               {result.method}")
    print(f"dataset:              {result.dataset}")
    print(f"final accuracy:       {result.final_accuracy:.4f}")
    print(f"best accuracy:        {result.best_accuracy:.4f}")
    if result.actual_sparsity is not None:
        print(f"actual sparsity:      {result.actual_sparsity:.4f}")
        print(f"inference FLOPs:      {result.inference_flops_multiplier:.2f}x dense")
        print(f"training FLOPs:       {result.training_flops_multiplier:.2f}x dense")
    if result.exploration_rate is not None:
        print(f"exploration rate R:   {result.exploration_rate:.4f}")
    print(f"wall time:            {result.seconds:.1f}s")
    return 0


def _command_gnn(args) -> int:
    from repro.data import ia_email_like, wiki_talk_like
    from repro.experiments.gnn import (
        run_admm_prune_from_dense,
        run_gnn_dense,
        run_gnn_dst_ee,
    )

    maker = wiki_talk_like if args.dataset == "wiki_talk" else ia_email_like
    data = maker(n_nodes=args.nodes, seed=args.seed)
    if args.method == "dense":
        result = run_gnn_dense(data, epochs=args.epochs, seed=args.seed)
    elif args.method == "dst_ee":
        result = run_gnn_dst_ee(data, args.sparsity, epochs=args.epochs,
                                seed=args.seed)
    else:
        third = max(1, args.epochs // 3)
        result = run_admm_prune_from_dense(
            data, args.sparsity, pretrain_epochs=third, admm_epochs=third,
            retrain_epochs=third, seed=args.seed,
        )
    print(f"method:          {result.method}")
    print(f"dataset:         {result.dataset}")
    print(f"best accuracy:   {result.best_accuracy:.4f}")
    print(f"final accuracy:  {result.final_accuracy:.4f}")
    if result.actual_sparsity is not None:
        print(f"actual sparsity: {result.actual_sparsity:.4f}")
    print(f"wall time:       {result.seconds:.1f}s")
    return 0


def _command_methods() -> int:
    for name in ALL_METHODS:
        print(f"{name:16s} {method_family(name)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "gnn":
        return _command_gnn(args)
    return _command_methods()


if __name__ == "__main__":
    sys.exit(main())
