"""Command-line interface for running reproduction experiments.

Usage (after ``pip install -e .``)::

    python -m repro.experiments.cli run --method dst_ee --dataset cifar10 \
        --model vgg19 --sparsity 0.9 --epochs 4
    python -m repro.experiments.cli run --method dst_ee --seeds 0 1 2 --nproc 3
    python -m repro.experiments.cli sweep --methods set rigl dst_ee \
        --sparsities 0.9 0.95 --seeds 0 1 --nproc 4
    python -m repro.experiments.cli gnn --dataset wiki_talk --sparsity 0.9
    python -m repro.experiments.cli run-gan --method dst_ee --mixture ring8 \
        --sparsity 0.9 --total-steps 2000
    python -m repro.experiments.cli methods
    python -m repro.experiments.cli export --method dst_ee --sparsity 0.95 \
        --model mlp --epochs 2 --out model.npz
    python -m repro.experiments.cli serve --artifact model.npz --port 8100

``--nproc`` (or the ``REPRO_NPROC`` environment variable) shards seeds and
sweep cells across worker processes; ``--n-workers`` splits each mini-batch
across data-parallel gradient workers inside one run.  The heavyweight
table benches live in ``benchmarks/``; this CLI is for single cells and
ad-hoc grids.

Fault tolerance: ``--checkpoint-dir`` writes resume-exact training
checkpoints during ``run`` and ``sweep``; after a crash or preemption,
rerunning the same command with ``--resume`` continues bitwise-identically
— completed sweep cells are skipped, partial cells restore mid-epoch.  See
``docs/checkpointing.md``.

Serving: ``export`` trains one configuration and writes a versioned
serving artifact (compiled CSR weights + model config + preprocessing
spec); ``serve`` loads an artifact behind the micro-batching JSON HTTP
frontend, optionally fanning batches out across ``--n-workers`` forked
serving processes that share one read-only weight arena.  See
``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import (
    ALL_METHODS,
    GAN_METHODS,
    LM_METHODS,
    RL_METHODS,
    method_family,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DST-EE reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Training/dataset knobs shared by `run` and `sweep` — declared once so
    # the two entry points cannot drift apart.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dataset", default="cifar10", choices=["cifar10", "cifar100", "imagenet"])
    common.add_argument("--batch-size", type=int, default=64)
    common.add_argument("--lr", type=float, default=0.05)
    common.add_argument("--delta-t", type=int, default=6)
    common.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="block-structured mask tile size (1 = unstructured; "
        "default: REPRO_SPARSE_BLOCK_SIZE or 1)",
    )
    common.add_argument(
        "--sparse-backend",
        default=None,
        choices=["auto", "csr", "bsr", "dense"],
        help="execution backend for masked layers during training "
        "(see docs/performance.md; default: plain masked-dense)",
    )
    common.add_argument("--width-mult", type=float, default=0.2)
    common.add_argument("--n-train", type=int, default=1024)
    common.add_argument("--n-test", type=int, default=512)
    common.add_argument("--image-size", type=int, default=12)
    common.add_argument(
        "--nproc",
        type=int,
        default=None,
        help="worker processes for cell/seed sharding " "(default: REPRO_NPROC, 1 = serial)",
    )
    common.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write resume-exact training checkpoints here " "(see docs/checkpointing.md)",
    )
    common.add_argument(
        "--checkpoint-every-epochs",
        type=int,
        default=1,
        help="epoch checkpoint cadence (with --checkpoint-dir)",
    )
    common.add_argument(
        "--checkpoint-every-steps",
        type=int,
        default=None,
        help="additional step-granularity checkpoint cadence",
    )
    common.add_argument(
        "--keep-last",
        type=int,
        default=None,
        help="retain only the newest K checkpoints per run",
    )
    common.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in "
        "--checkpoint-dir (bitwise-identical to an "
        "uninterrupted run)",
    )

    run = sub.add_parser("run", parents=[common], help="one image-classification training run")
    run.add_argument("--method", default="dst_ee", choices=ALL_METHODS)
    run.add_argument(
        "--model",
        default="vgg19",
        choices=["vgg19", "vgg11", "resnet50", "resnet50_mini", "mlp"],
    )
    run.add_argument("--sparsity", type=float, default=0.9)
    run.add_argument("--epochs", type=int, default=4)
    run.add_argument(
        "--c",
        type=float,
        default=1e-3,
        help="exploration-exploitation coefficient (Eq. 1)",
    )
    run.add_argument("--epsilon", type=float, default=1.0)
    run.add_argument("--distribution", default="erk", choices=["erk", "er", "uniform"])
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="run the paper's multi-seed protocol over these seeds",
    )
    run.add_argument(
        "--n-workers",
        type=int,
        default=0,
        help="data-parallel gradient workers per run (0 = in-process)",
    )

    sweep = sub.add_parser(
        "sweep",
        parents=[common],
        help="grid of (method x model x sparsity x seed) cells",
    )
    sweep.add_argument(
        "--methods",
        nargs="+",
        default=["set", "rigl", "dst_ee"],
        choices=ALL_METHODS,
    )
    sweep.add_argument(
        "--models",
        nargs="+",
        default=["vgg11"],
        choices=["vgg19", "vgg11", "resnet50", "resnet50_mini", "mlp"],
    )
    sweep.add_argument("--sparsities", type=float, nargs="+", default=[0.9])
    sweep.add_argument("--seeds", type=int, nargs="+", default=[0])
    sweep.add_argument(
        "--root-seed",
        type=int,
        default=None,
        help="derive per-cell seeds from this root via SeedSequence.spawn",
    )
    sweep.add_argument("--epochs", type=int, default=2)
    sweep.add_argument("--seed", type=int, default=0, help="dataset generation seed")

    run_rl = sub.add_parser("run-rl", help="one DQN training run on a classic-control environment")
    run_rl.add_argument("--env", default="cartpole", choices=["cartpole", "acrobot"])
    run_rl.add_argument("--method", default="dst_ee", choices=RL_METHODS)
    run_rl.add_argument("--sparsity", type=float, default=0.9)
    run_rl.add_argument("--total-steps", type=int, default=5000)
    run_rl.add_argument(
        "--hidden",
        type=int,
        nargs="+",
        default=[256, 256],
        help="Q-network widths",
    )
    run_rl.add_argument("--batch-size", type=int, default=64)
    run_rl.add_argument("--lr", type=float, default=1e-3)
    run_rl.add_argument("--gamma", type=float, default=0.99)
    run_rl.add_argument("--buffer-capacity", type=int, default=10_000)
    run_rl.add_argument("--warmup-steps", type=int, default=500)
    run_rl.add_argument("--train-every", type=int, default=1, help="env steps per gradient step")
    run_rl.add_argument(
        "--target-sync-every",
        type=int,
        default=200,
        help="target-network sync cadence in gradient steps",
    )
    run_rl.add_argument("--epsilon-start", type=float, default=1.0)
    run_rl.add_argument("--epsilon-end", type=float, default=0.05)
    run_rl.add_argument(
        "--huber-delta",
        type=float,
        default=1.0,
        help="transition point of the Huber TD loss",
    )
    run_rl.add_argument(
        "--epsilon-decay-fraction",
        type=float,
        default=0.4,
        help="fraction of total steps over which epsilon decays",
    )
    run_rl.add_argument(
        "--delta-t",
        type=int,
        default=100,
        help="mask-update period in gradient steps",
    )
    run_rl.add_argument("--drop-fraction", type=float, default=0.3)
    run_rl.add_argument(
        "--c",
        type=float,
        default=1e-3,
        help="exploration-exploitation coefficient (Eq. 1)",
    )
    run_rl.add_argument(
        "--ee-epsilon",
        type=float,
        default=1.0,
        help="DST-EE epsilon (distinct from epsilon-greedy)",
    )
    run_rl.add_argument("--distribution", default="erk", choices=["erk", "er", "uniform"])
    run_rl.add_argument(
        "--sparse-backend",
        default=None,
        choices=["auto", "csr", "bsr", "dense"],
        help="execution backend for the masked Q-network layers "
        "(see docs/performance.md; default: plain masked-dense)",
    )
    run_rl.add_argument("--seed", type=int, default=0)
    run_rl.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="multi-seed protocol over these seeds",
    )
    run_rl.add_argument(
        "--nproc",
        type=int,
        default=None,
        help="worker processes for seed sharding",
    )
    run_rl.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write resume-exact RL training checkpoints here",
    )
    run_rl.add_argument("--checkpoint-every-episodes", type=int, default=1)
    run_rl.add_argument("--checkpoint-every-steps", type=int, default=None)
    run_rl.add_argument("--keep-last", type=int, default=None)
    run_rl.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    run_rl.add_argument(
        "--out",
        default=None,
        help="export the trained policy net as a serving artifact",
    )

    run_gan = sub.add_parser(
        "run-gan",
        help="one sparse-GAN run on a synthetic 2-D Gaussian mixture",
    )
    run_gan.add_argument("--mixture", default="ring8", choices=["ring4", "ring8", "grid9"])
    run_gan.add_argument("--method", default="dst_ee", choices=GAN_METHODS)
    run_gan.add_argument("--sparsity", type=float, default=0.9)
    run_gan.add_argument("--total-steps", type=int, default=2000)
    run_gan.add_argument(
        "--hidden",
        type=int,
        nargs="+",
        default=[64, 64],
        help="generator/discriminator MLP widths",
    )
    run_gan.add_argument("--latent-dim", type=int, default=8)
    run_gan.add_argument("--batch-size", type=int, default=64)
    run_gan.add_argument("--lr", type=float, default=1e-3)
    run_gan.add_argument(
        "--delta-t",
        type=int,
        default=100,
        help="mask-update period in generator/discriminator steps",
    )
    run_gan.add_argument("--drop-fraction", type=float, default=0.3)
    run_gan.add_argument(
        "--c",
        type=float,
        default=1e-3,
        help="exploration-exploitation coefficient (Eq. 1)",
    )
    run_gan.add_argument("--ee-epsilon", type=float, default=1.0)
    run_gan.add_argument("--distribution", default="erk", choices=["erk", "er", "uniform"])
    run_gan.add_argument(
        "--balance-max-shift",
        type=float,
        default=0.05,
        help="max fraction of the donor budget moved per G<->D rebalance",
    )
    run_gan.add_argument(
        "--balance-delta-t",
        type=int,
        default=None,
        help="G<->D rebalance cadence (default: --delta-t)",
    )
    run_gan.add_argument("--n-eval-samples", type=int, default=2000)
    run_gan.add_argument("--seed", type=int, default=0)
    run_gan.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="multi-seed protocol over these seeds",
    )
    run_gan.add_argument(
        "--nproc",
        type=int,
        default=None,
        help="worker processes for seed sharding",
    )
    run_gan.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write resume-exact GAN training checkpoints here",
    )
    run_gan.add_argument("--checkpoint-every-steps", type=int, default=200)
    run_gan.add_argument("--keep-last", type=int, default=None)
    run_gan.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )

    run_lm = sub.add_parser(
        "run-lm",
        help="one sparse char-GPT language-model run on the synthetic prose corpus",
    )
    run_lm.add_argument("--corpus", default="markov-prose", choices=["markov-prose"])
    run_lm.add_argument("--method", default="dst_ee", choices=LM_METHODS)
    run_lm.add_argument("--sparsity", type=float, default=0.9)
    run_lm.add_argument("--epochs", type=int, default=3)
    run_lm.add_argument("--n-chars", type=int, default=65536, help="corpus size in characters")
    run_lm.add_argument("--block-len", type=int, default=32, help="context window length")
    run_lm.add_argument("--n-layer", type=int, default=2)
    run_lm.add_argument("--n-head", type=int, default=2)
    run_lm.add_argument("--n-embd", type=int, default=64)
    run_lm.add_argument("--batch-size", type=int, default=32)
    run_lm.add_argument("--lr", type=float, default=1e-3)
    run_lm.add_argument(
        "--delta-t",
        type=int,
        default=100,
        help="mask-update period in gradient steps",
    )
    run_lm.add_argument("--drop-fraction", type=float, default=0.3)
    run_lm.add_argument(
        "--c",
        type=float,
        default=1e-3,
        help="exploration-exploitation coefficient (Eq. 1)",
    )
    run_lm.add_argument("--epsilon", type=float, default=1.0)
    run_lm.add_argument("--distribution", default="erk", choices=["erk", "er", "uniform"])
    run_lm.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="block-structured masks with this tile edge (dynamic methods)",
    )
    run_lm.add_argument(
        "--sparse-backend",
        default=None,
        choices=["auto", "csr", "blocked", "dense"],
        help="training-time sparse compute backend",
    )
    run_lm.add_argument("--seed", type=int, default=0)
    run_lm.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="multi-seed protocol over these seeds",
    )
    run_lm.add_argument(
        "--nproc",
        type=int,
        default=None,
        help="worker processes for seed sharding",
    )
    run_lm.add_argument(
        "--n-workers",
        type=int,
        default=0,
        help="data-parallel gradient workers inside the run",
    )
    run_lm.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write resume-exact LM training checkpoints here",
    )
    run_lm.add_argument("--checkpoint-every-epochs", type=int, default=1)
    run_lm.add_argument("--checkpoint-every-steps", type=int, default=None)
    run_lm.add_argument("--keep-last", type=int, default=None)
    run_lm.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    run_lm.add_argument(
        "--out",
        default=None,
        help="export the trained model as a serving artifact (.npz)",
    )

    export = sub.add_parser(
        "export",
        parents=[common],
        help="train one configuration and write a serving artifact",
    )
    export.add_argument("--method", default="dst_ee", choices=ALL_METHODS)
    export.add_argument(
        "--model",
        default="mlp",
        choices=["vgg19", "vgg11", "resnet50", "resnet50_mini", "mlp"],
    )
    export.add_argument("--sparsity", type=float, default=0.95)
    export.add_argument("--epochs", type=int, default=4)
    export.add_argument("--c", type=float, default=1e-3)
    export.add_argument("--epsilon", type=float, default=1.0)
    export.add_argument("--distribution", default="erk", choices=["erk", "er", "uniform"])
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--out", required=True, help="artifact path to write (.npz)")

    serve = sub.add_parser("serve", help="serve a model artifact over HTTP")
    serve.add_argument(
        "--artifact",
        required=True,
        help="artifact written by `export` (or serve.export_model)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batching: flush at this many pending requests",
    )
    serve.add_argument(
        "--max-latency-ms",
        type=float,
        default=2.0,
        help="micro-batching: flush when the oldest request " "has waited this long",
    )
    serve.add_argument(
        "--n-workers",
        type=int,
        default=0,
        help="forked serving processes sharing one read-only " "weight arena (0 = in-process)",
    )
    serve.add_argument(
        "--no-batching",
        action="store_true",
        help="disable request coalescing (A/B baseline)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="admission control: bound on admitted-but-unfinished "
        "requests; excess traffic is shed with 429 + Retry-After "
        "(0 disables admission control)",
    )
    serve.add_argument(
        "--deadline-s",
        type=float,
        default=30.0,
        help="default per-request deadline; requests may override via "
        "deadline_ms in the body, expiry answers 504",
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip artifact fingerprint verification at load",
    )

    gnn = sub.add_parser("gnn", help="GNN link-prediction experiment")
    gnn.add_argument("--dataset", default="wiki_talk", choices=["wiki_talk", "ia_email"])
    gnn.add_argument("--method", default="dst_ee", choices=["dense", "dst_ee", "admm"])
    gnn.add_argument("--sparsity", type=float, default=0.9)
    gnn.add_argument("--epochs", type=int, default=12)
    gnn.add_argument("--nodes", type=int, default=400)
    gnn.add_argument("--seed", type=int, default=0)

    sub.add_parser("methods", help="list available methods by family")
    return parser


def _dataset(args):
    from repro.data import cifar10_like, cifar100_like, imagenet_like

    if args.dataset == "cifar10":
        return cifar10_like(
            n_train=args.n_train,
            n_test=args.n_test,
            image_size=args.image_size,
            seed=args.seed,
        )
    if args.dataset == "cifar100":
        return cifar100_like(
            n_train=args.n_train,
            n_test=args.n_test,
            image_size=args.image_size,
            n_classes=20,
            seed=args.seed,
        )
    return imagenet_like(
        n_train=args.n_train,
        n_test=args.n_test,
        image_size=args.image_size,
        n_classes=20,
        seed=args.seed,
    )


def _model_kwargs(args, num_classes: int) -> dict:
    """Architecture kwargs per CLI model name.

    Single source of truth consumed by both the training factories and the
    exported artifact's ``model_config`` — they must agree, or a served
    artifact would rebuild a different architecture than was trained.
    """
    return {
        "vgg19": {
            "num_classes": num_classes,
            "width_mult": args.width_mult,
            "input_size": args.image_size,
        },
        "vgg11": {
            "num_classes": num_classes,
            "width_mult": args.width_mult,
            "input_size": args.image_size,
        },
        "resnet50": {"num_classes": num_classes, "width_mult": args.width_mult},
        "resnet50_mini": {"num_classes": num_classes, "width_mult": args.width_mult},
        "mlp": {
            "in_features": 3 * args.image_size**2,
            "hidden": [128, 64],
            "num_classes": num_classes,
        },
    }


def _model_builders(args, num_classes: int) -> dict:
    from repro.models import build_model

    return {
        name: (lambda seed, n=name, kw=kwargs: build_model(n, seed=seed, **kw))
        for name, kwargs in _model_kwargs(args, num_classes).items()
    }


def _model_factory(args, num_classes: int):
    return _model_builders(args, num_classes)[args.model]


def _checkpoint_kwargs(args) -> dict:
    """Shared checkpoint/resume plumbing for single runs."""
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if not args.checkpoint_dir:
        return {}
    return {
        "checkpoint_dir": args.checkpoint_dir,
        "checkpoint_every_epochs": args.checkpoint_every_epochs,
        "checkpoint_every_steps": args.checkpoint_every_steps,
        "checkpoint_keep_last": args.keep_last,
        "resume_from": args.checkpoint_dir if args.resume else None,
    }


def _command_run(args) -> int:
    from repro.experiments.runner import run_image_classification, run_multi_seed

    checkpoint_kwargs = _checkpoint_kwargs(args)
    data = _dataset(args)
    if args.seeds is not None:
        if args.checkpoint_dir:
            raise SystemExit(
                "--checkpoint-dir with --seeds is not supported by `run` "
                "(every seed would share one directory); use `sweep` for "
                "resumable multi-seed grids"
            )
        mean, std, results = run_multi_seed(
            args.method,
            _model_factory(args, data.num_classes),
            data,
            seeds=tuple(args.seeds),
            n_proc=args.nproc,
            sparsity=args.sparsity,
            epochs=args.epochs,
            batch_size=args.batch_size,
            lr=args.lr,
            delta_t=args.delta_t,
            c=args.c,
            epsilon=args.epsilon,
            distribution=args.distribution,
            block_size=args.block_size,
            sparse_backend=args.sparse_backend,
            n_workers=args.n_workers,
        )
        print(f"method:               {args.method}")
        print(f"dataset:              {data.name}")
        print(f"seeds:                {list(args.seeds)}")
        for seed, result in zip(args.seeds, results):
            print(
                f"  seed {seed}: final {result.final_accuracy:.4f} "
                f"(best {result.best_accuracy:.4f}, {result.seconds:.1f}s)"
            )
        print(f"accuracy:             {mean:.4f} ± {std:.4f}")
        return 0
    result = run_image_classification(
        args.method,
        _model_factory(args, data.num_classes),
        data,
        sparsity=args.sparsity,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        delta_t=args.delta_t,
        c=args.c,
        epsilon=args.epsilon,
        distribution=args.distribution,
        block_size=args.block_size,
        sparse_backend=args.sparse_backend,
        seed=args.seed,
        n_workers=args.n_workers,
        **checkpoint_kwargs,
    )
    print(f"method:               {result.method}")
    print(f"dataset:              {result.dataset}")
    print(f"final accuracy:       {result.final_accuracy:.4f}")
    print(f"best accuracy:        {result.best_accuracy:.4f}")
    if result.actual_sparsity is not None:
        print(f"actual sparsity:      {result.actual_sparsity:.4f}")
        print(f"inference FLOPs:      {result.inference_flops_multiplier:.2f}x dense")
        print(f"training FLOPs:       {result.training_flops_multiplier:.2f}x dense")
    if result.exploration_rate is not None:
        print(f"exploration rate R:   {result.exploration_rate:.4f}")
    print(f"wall time:            {result.seconds:.1f}s")
    return 0


def _command_sweep(args) -> int:
    from repro.experiments.registry import enumerate_cells
    from repro.experiments.runner import run_sweep
    from repro.experiments.tables import format_float, format_table

    data = _dataset(args)
    cells = enumerate_cells(
        args.methods,
        args.models,
        [args.dataset],
        args.sparsities,
        seeds=args.seeds,
        root_seed=args.root_seed,
    )
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    sweep_kwargs = {}
    if args.checkpoint_dir:
        sweep_kwargs = {
            "checkpoint_dir": args.checkpoint_dir,
            "resume": args.resume,
            "checkpoint_every_epochs": args.checkpoint_every_epochs,
            "checkpoint_every_steps": args.checkpoint_every_steps,
            "checkpoint_keep_last": args.keep_last,
        }
    builders = _model_builders(args, data.num_classes)
    report = run_sweep(
        cells,
        {name: (lambda num_classes, b=builders[name]: b) for name in args.models},
        {args.dataset: data},
        n_proc=args.nproc,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        delta_t=args.delta_t,
        block_size=args.block_size,
        sparse_backend=args.sparse_backend,
        **sweep_kwargs,
    )
    rows = [
        {
            "method": row["method"],
            "model": row["model"],
            "sparsity": f"{row['sparsity']:g}",
            "accuracy": (
                f"{format_float(row['mean_accuracy'], 4)} "
                f"± {format_float(row['std_accuracy'], 4)}"
            ),
            "seeds": f"{row['seeds_ok']}"
            + (f" ({row['seeds_failed']} failed)" if row["seeds_failed"] else ""),
        }
        for row in report.aggregate()
    ]
    print(
        format_table(
            rows,
            ["method", "model", "sparsity", "accuracy", "seeds"],
            title=f"sweep on {args.dataset} ({len(cells)} cells)",
        )
    )
    for outcome in report.failures:
        print(f"\nFAILED {outcome.cell}:")
        print("  " + (outcome.error or "").strip().replace("\n", "\n  "))
    return 1 if report.failures else 0


def _format_return(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.2f}"


def _command_run_rl(args) -> int:
    from repro.experiments.rl import run_rl, run_rl_multi_seed
    from repro.rl.envs import ENV_REGISTRY

    rl_kwargs = dict(
        sparsity=args.sparsity,
        total_steps=args.total_steps,
        hidden=tuple(args.hidden),
        batch_size=args.batch_size,
        lr=args.lr,
        gamma=args.gamma,
        buffer_capacity=args.buffer_capacity,
        warmup_steps=args.warmup_steps,
        train_every=args.train_every,
        target_sync_every=args.target_sync_every,
        epsilon_start=args.epsilon_start,
        epsilon_end=args.epsilon_end,
        epsilon_decay_fraction=args.epsilon_decay_fraction,
        huber_delta=args.huber_delta,
        delta_t=args.delta_t,
        drop_fraction=args.drop_fraction,
        c=args.c,
        epsilon=args.ee_epsilon,
        distribution=args.distribution,
        sparse_backend=args.sparse_backend,
    )
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.seeds is not None:
        if args.checkpoint_dir:
            raise SystemExit(
                "--checkpoint-dir with --seeds is not supported by `run-rl` "
                "(every seed would share one directory); use run_rl_sweep for "
                "resumable multi-seed grids"
            )
        if args.out:
            raise SystemExit("--out exports a single run; drop --seeds")
        mean, std, results = run_rl_multi_seed(
            args.method,
            args.env,
            seeds=tuple(args.seeds),
            n_proc=args.nproc,
            **rl_kwargs,
        )
        print(f"method:               {args.method}")
        print(f"environment:          {args.env}")
        print(f"seeds:                {list(args.seeds)}")
        for seed, result in zip(args.seeds, results):
            solved = (
                f"solved @ step {result.solved_at_step}" if result.solved else "not solved"
            )
            # A run too short to finish a single episode reports no return.
            final = _format_return(result.final_avg_return)
            best = _format_return(result.best_avg_return)
            print(f"  seed {seed}: final avg return {final} (best {best}, {solved})")
        print(f"avg return:           {mean:.2f} ± {std:.2f}")
        print(f"solved seeds:         {sum(1 for r in results if r.solved)}" f"/{len(results)}")
        return 0

    checkpoint_kwargs = {}
    if args.checkpoint_dir:
        checkpoint_kwargs = {
            "checkpoint_dir": args.checkpoint_dir,
            "checkpoint_every_epochs": args.checkpoint_every_episodes,
            "checkpoint_every_steps": args.checkpoint_every_steps,
            "checkpoint_keep_last": args.keep_last,
            "resume_from": args.checkpoint_dir if args.resume else None,
        }
    result = run_rl(
        args.method,
        args.env,
        seed=args.seed,
        keep_model=bool(args.out),
        **rl_kwargs,
        **checkpoint_kwargs,
    )
    print(f"method:               {result.method}")
    print(f"environment:          {result.env}")
    print(f"episodes:             {result.episodes}")
    print(f"env steps:            {result.total_steps}")
    print(f"gradient steps:       {result.train_steps}")
    if result.final_avg_return is not None:
        print(f"final avg return:     {result.final_avg_return:.2f}")
        # best is None until a full solve window of episodes has finished.
        print(f"best avg return:      {_format_return(result.best_avg_return)}")
    solved = f"yes (step {result.solved_at_step})" if result.solved else "no"
    print(f"solved (>= {result.solve_threshold:g}):   {solved}")
    if result.actual_sparsity is not None:
        print(f"actual sparsity:      {result.actual_sparsity:.4f}")
    if result.exploration_rate is not None:
        print(f"exploration rate R:   {result.exploration_rate:.4f}")
    print(f"wall time:            {result.seconds:.1f}s")

    if args.out:
        from repro.serve import export_model

        if result.masked is None:
            raise SystemExit(
                f"method {args.method!r} trains a dense policy; nothing sparse "
                "to export"
            )
        env_cls = ENV_REGISTRY[args.env]
        path = export_model(
            result.masked,
            args.out,
            model_config={
                "builder": "mlp",
                "kwargs": {
                    "in_features": env_cls.observation_size,
                    "hidden": [int(width) for width in args.hidden],
                    "num_classes": env_cls.n_actions,
                    "seed": args.seed,
                },
            },
            preprocessing={"input_shape": [env_cls.observation_size]},
            metadata={
                "workload": "rl",
                "method": args.method,
                "environment": args.env,
                "sparsity": args.sparsity,
                "actual_sparsity": result.actual_sparsity,
                "final_avg_return": result.final_avg_return,
                "total_steps": result.total_steps,
                "seed": args.seed,
            },
        )
        size_kib = path.stat().st_size / 1024
        print(f"artifact:             {path} ({size_kib:.0f} KiB)")
        print(f"serve with:           python -m repro.experiments.cli serve " f"--artifact {path}")
    return 0


def _command_run_lm(args) -> int:
    from repro.experiments.lm import run_lm, run_lm_multi_seed

    lm_kwargs = dict(
        sparsity=args.sparsity,
        epochs=args.epochs,
        n_chars=args.n_chars,
        block_len=args.block_len,
        n_layer=args.n_layer,
        n_head=args.n_head,
        n_embd=args.n_embd,
        batch_size=args.batch_size,
        lr=args.lr,
        delta_t=args.delta_t,
        drop_fraction=args.drop_fraction,
        c=args.c,
        epsilon=args.epsilon,
        distribution=args.distribution,
        block_size=args.block_size,
        sparse_backend=args.sparse_backend,
        n_workers=args.n_workers,
    )
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.seeds is not None:
        if args.checkpoint_dir:
            raise SystemExit(
                "--checkpoint-dir with --seeds is not supported by `run-lm` "
                "(every seed would share one directory); use run_lm_sweep for "
                "resumable multi-seed grids"
            )
        if args.out:
            raise SystemExit("--out exports a single run; drop --seeds")
        mean, std, results = run_lm_multi_seed(
            args.method,
            args.corpus,
            seeds=tuple(args.seeds),
            n_proc=args.nproc,
            **lm_kwargs,
        )
        print(f"method:               {args.method}")
        print(f"corpus:               {args.corpus}")
        print(f"seeds:                {list(args.seeds)}")
        for seed, result in zip(args.seeds, results):
            print(
                f"  seed {seed}: val ppl {result.val_perplexity:.3f} "
                f"(next-token acc {result.val_next_token_accuracy:.4f})"
            )
        print(f"val perplexity:       {mean:.3f} ± {std:.3f}")
        return 0

    checkpoint_kwargs = {}
    if args.checkpoint_dir:
        checkpoint_kwargs = {
            "checkpoint_dir": args.checkpoint_dir,
            "checkpoint_every_epochs": args.checkpoint_every_epochs,
            "checkpoint_every_steps": args.checkpoint_every_steps,
            "checkpoint_keep_last": args.keep_last,
            "resume_from": args.checkpoint_dir if args.resume else None,
        }
    result = run_lm(
        args.method,
        args.corpus,
        seed=args.seed,
        keep_model=bool(args.out),
        **lm_kwargs,
        **checkpoint_kwargs,
    )
    print(f"method:               {result.method}")
    print(f"corpus:               {result.corpus}")
    print(f"epochs:               {result.epochs}")
    print(f"gradient steps:       {result.total_steps}")
    print(f"train loss:           {result.train_loss:.4f}")
    print(f"val perplexity:       {result.val_perplexity:.3f}")
    print(f"next-token accuracy:  {result.val_next_token_accuracy:.4f}")
    print(f"parameters:           {result.n_params}")
    if result.actual_sparsity is not None:
        print(f"actual sparsity:      {result.actual_sparsity:.4f}")
    if result.exploration_rate is not None:
        print(f"exploration rate R:   {result.exploration_rate:.4f}")
    print(f"wall time:            {result.seconds:.1f}s")

    if args.out:
        from repro.data.text import CharVocab
        from repro.serve import export_model

        if result.masked is None:
            raise SystemExit(
                f"method {args.method!r} trains a dense model; nothing sparse to export"
            )
        pad_id = CharVocab().pad_id
        path = export_model(
            result.masked,
            args.out,
            model_config={
                "builder": "char_gpt",
                "kwargs": {
                    "vocab_size": 32,
                    "block_len": args.block_len,
                    "n_layer": args.n_layer,
                    "n_head": args.n_head,
                    "n_embd": args.n_embd,
                    # Serving answers greedy next-token queries: the loaded
                    # model returns last-position logits for left-padded
                    # prompts, unlike the flattened training head.
                    "head": "last",
                    "pad_id": pad_id,
                    "seed": args.seed,
                },
            },
            preprocessing={
                "kind": "sequence",
                "max_length": args.block_len,
                "pad_id": pad_id,
                "vocab_size": 32,
            },
            metadata={
                "workload": "lm",
                "method": args.method,
                "corpus": args.corpus,
                "sparsity": args.sparsity,
                "actual_sparsity": result.actual_sparsity,
                "val_perplexity": result.val_perplexity,
                "epochs": result.epochs,
                "seed": args.seed,
            },
        )
        size_kib = path.stat().st_size / 1024
        print(f"artifact:             {path} ({size_kib:.0f} KiB)")
        print(f"serve with:           python -m repro.experiments.cli serve " f"--artifact {path}")
    return 0


def _model_export_config(args, num_classes: int) -> dict:
    """Registry config that rebuilds the trained architecture at load time.

    Derived from the same kwargs table the training factory uses, so the
    exported artifact cannot drift from what was actually trained.
    """
    kwargs = dict(_model_kwargs(args, num_classes)[args.model])
    kwargs["seed"] = args.seed
    return {"builder": args.model, "kwargs": kwargs}


def _command_export(args) -> int:
    from repro.experiments.runner import run_image_classification
    from repro.serve import export_model

    checkpoint_kwargs = _checkpoint_kwargs(args)
    data = _dataset(args)
    result = run_image_classification(
        args.method,
        _model_factory(args, data.num_classes),
        data,
        sparsity=args.sparsity,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        delta_t=args.delta_t,
        c=args.c,
        epsilon=args.epsilon,
        distribution=args.distribution,
        block_size=args.block_size,
        sparse_backend=args.sparse_backend,
        seed=args.seed,
        keep_model=True,
        **checkpoint_kwargs,
    )
    if result.masked is None:
        raise SystemExit(f"method {args.method!r} trains a dense model; nothing sparse to export")
    path = export_model(
        result.masked,
        args.out,
        model_config=_model_export_config(args, data.num_classes),
        preprocessing={"input_shape": list(data.input_shape)},
        metadata={
            "method": args.method,
            "dataset": result.dataset,
            "sparsity": args.sparsity,
            "actual_sparsity": result.actual_sparsity,
            "final_accuracy": result.final_accuracy,
            "epochs": args.epochs,
            "seed": args.seed,
        },
    )
    size_kib = path.stat().st_size / 1024
    print(f"method:          {result.method}")
    print(f"final accuracy:  {result.final_accuracy:.4f}")
    print(f"artifact:        {path} ({size_kib:.0f} KiB)")
    print(f"serve with:      python -m repro.experiments.cli serve --artifact {path}")
    return 0


def _command_serve(args) -> int:
    from repro.serve import (
        AdmissionController,
        Server,
        ServingPool,
        load_model,
        serve_forever,
    )

    loaded = load_model(args.artifact, verify=not args.no_verify)
    pool = None
    forward = None
    if args.n_workers > 0:
        pool = ServingPool(loaded, n_workers=args.n_workers, preprocess=False)

        def forward(batch, _pool=pool):
            # Bounded wait: a wedged worker fails this batch instead of
            # blocking the batching-queue flusher thread forever.
            return _pool.predict(batch, timeout=60.0)
        arena_note = (
            f", shared weight arena {pool.arena.nbytes / 1024:.0f} KiB"
            if pool.arena is not None else ""
        )
        print(f"serving pool: {pool.n_workers} workers{arena_note}")
    admission = (
        AdmissionController(max_pending=args.max_pending) if args.max_pending > 0 else None
    )
    server = Server(
        loaded,
        max_batch=args.max_batch,
        max_latency_ms=args.max_latency_ms,
        batching=not args.no_batching,
        forward_override=forward,
        admission=admission,
    )
    metadata = loaded.metadata or {}
    print(f"artifact: {args.artifact}")
    print(f"  fingerprint: {loaded.fingerprint}")
    if metadata:
        print(f"  metadata:    {metadata}")
    try:
        serve_forever(server, args.host, args.port, default_deadline_s=args.deadline_s)
    finally:
        if pool is not None:
            pool.close()
    return 0


def _command_gnn(args) -> int:
    from repro.data import ia_email_like, wiki_talk_like
    from repro.experiments.gnn import (
        run_admm_prune_from_dense,
        run_gnn_dense,
        run_gnn_dst_ee,
    )

    maker = wiki_talk_like if args.dataset == "wiki_talk" else ia_email_like
    data = maker(n_nodes=args.nodes, seed=args.seed)
    if args.method == "dense":
        result = run_gnn_dense(data, epochs=args.epochs, seed=args.seed)
    elif args.method == "dst_ee":
        result = run_gnn_dst_ee(data, args.sparsity, epochs=args.epochs, seed=args.seed)
    else:
        third = max(1, args.epochs // 3)
        result = run_admm_prune_from_dense(
            data,
            args.sparsity,
            pretrain_epochs=third,
            admm_epochs=third,
            retrain_epochs=third,
            seed=args.seed,
        )
    print(f"method:          {result.method}")
    print(f"dataset:         {result.dataset}")
    print(f"best accuracy:   {result.best_accuracy:.4f}")
    print(f"final accuracy:  {result.final_accuracy:.4f}")
    if result.actual_sparsity is not None:
        print(f"actual sparsity: {result.actual_sparsity:.4f}")
    print(f"wall time:       {result.seconds:.1f}s")
    return 0


def _command_run_gan(args) -> int:
    from repro.experiments.gan import run_gan, run_gan_multi_seed

    gan_kwargs = dict(
        sparsity=args.sparsity,
        total_steps=args.total_steps,
        hidden=tuple(args.hidden),
        latent_dim=args.latent_dim,
        batch_size=args.batch_size,
        lr=args.lr,
        delta_t=args.delta_t,
        drop_fraction=args.drop_fraction,
        c=args.c,
        epsilon=args.ee_epsilon,
        distribution=args.distribution,
        balance_delta_t=args.balance_delta_t,
        balance_max_shift=args.balance_max_shift,
        n_eval_samples=args.n_eval_samples,
    )
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.seeds is not None:
        if args.checkpoint_dir:
            raise SystemExit(
                "--checkpoint-dir with --seeds is not supported by `run-gan` "
                "(every seed would share one directory); use run_gan_sweep "
                "for resumable multi-seed grids"
            )
        mean, std, results = run_gan_multi_seed(
            args.method,
            args.mixture,
            seeds=tuple(args.seeds),
            n_proc=args.nproc,
            **gan_kwargs,
        )
        print(f"method:               {args.method}")
        print(f"mixture:              {args.mixture}")
        print(f"seeds:                {list(args.seeds)}")
        for seed, result in zip(args.seeds, results):
            print(
                f"  seed {seed}: {result.modes_covered}/{result.n_modes} modes "
                f"(high-quality {result.high_quality_fraction:.3f})"
            )
        print(f"mode coverage:        {mean:.3f} ± {std:.3f}")
        return 0

    checkpoint_kwargs = {}
    if args.checkpoint_dir:
        checkpoint_kwargs = {
            "checkpoint_dir": args.checkpoint_dir,
            "checkpoint_every_steps": args.checkpoint_every_steps,
            "checkpoint_keep_last": args.keep_last,
            "resume_from": args.checkpoint_dir if args.resume else None,
        }
    result = run_gan(
        args.method,
        args.mixture,
        seed=args.seed,
        **gan_kwargs,
        **checkpoint_kwargs,
    )
    print(f"method:               {result.method}")
    print(f"mixture:              {result.mixture}")
    print(f"steps:                {result.total_steps}")
    print(f"modes covered:        {result.modes_covered}/{result.n_modes}")
    print(f"high-quality frac:    {result.high_quality_fraction:.3f}")
    if result.final_loss_d is not None:
        print(f"final loss D/G:       {result.final_loss_d:.4f} / {result.final_loss_g:.4f}")
    if result.g_density is not None:
        print(f"final G density:      {result.g_density:.4f}")
        print(f"final D density:      {result.d_density:.4f}")
        print(f"combined budget:      {result.combined_budget}")
        print(f"G<->D transfers:      {len(result.transfers)}")
    print(f"wall time:            {result.seconds:.1f}s")
    return 0


def _command_methods() -> int:
    for name in ALL_METHODS:
        print(f"{name:16s} {method_family(name)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "run-rl":
        return _command_run_rl(args)
    if args.command == "run-gan":
        return _command_run_gan(args)
    if args.command == "run-lm":
        return _command_run_lm(args)
    if args.command == "export":
        return _command_export(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "gnn":
        return _command_gnn(args)
    return _command_methods()


if __name__ == "__main__":
    sys.exit(main())
