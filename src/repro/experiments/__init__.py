"""Experiment harness: method registry, cell runners, table formatting."""

from repro.experiments.registry import (
    ALL_METHODS,
    DENSE_TO_SPARSE_METHODS,
    DYNAMIC_METHODS,
    RL_METHODS,
    STATIC_METHODS,
    MethodSetup,
    build_method,
    enumerate_rl_cells,
    method_family,
)
from repro.experiments.runner import RunResult, run_image_classification, run_multi_seed
from repro.experiments.rl import (
    RLRunResult,
    run_rl,
    run_rl_multi_seed,
    run_rl_sweep,
)
from repro.experiments.gnn import (
    GNNResult,
    evaluate_link_prediction,
    run_admm_prune_from_dense,
    run_gnn_dense,
    run_gnn_dst_ee,
    train_link_predictor,
)
from repro.experiments.tables import format_float, format_mean_std, format_table
from repro.experiments.configs import (
    TABLE1_METHODS,
    TABLE2_METHODS,
    Scale,
    fig3_settings,
    get_scale,
    gnn_settings,
    table1_settings,
    table2_settings,
)

__all__ = [
    "ALL_METHODS",
    "DYNAMIC_METHODS",
    "STATIC_METHODS",
    "DENSE_TO_SPARSE_METHODS",
    "MethodSetup",
    "build_method",
    "method_family",
    "RL_METHODS",
    "RLRunResult",
    "RunResult",
    "enumerate_rl_cells",
    "run_image_classification",
    "run_multi_seed",
    "run_rl",
    "run_rl_multi_seed",
    "run_rl_sweep",
    "GNNResult",
    "evaluate_link_prediction",
    "train_link_predictor",
    "run_gnn_dense",
    "run_gnn_dst_ee",
    "run_admm_prune_from_dense",
    "format_table",
    "format_float",
    "format_mean_std",
    "Scale",
    "get_scale",
    "table1_settings",
    "table2_settings",
    "gnn_settings",
    "fig3_settings",
    "TABLE1_METHODS",
    "TABLE2_METHODS",
]
