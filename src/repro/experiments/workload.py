"""One uniformly-shaped config for every workload entrypoint.

``run_image_classification``, ``run_rl``, ``run_gan`` and ``run_lm`` grew
up with slightly divergent keyword sets (``ee_epsilon`` vs ``epsilon``,
``checkpoint_every_episodes`` vs ``checkpoint_every_epochs``).  This
module is the shared vocabulary that unifies them:

* :class:`WorkloadConfig` — a frozen dataclass naming the method /
  budget / schedule / checkpoint / backend knobs identically across all
  four entrypoints.  Every entrypoint accepts ``config=`` and resolves
  each knob with the precedence **explicit kwarg > config field >
  per-workload default** (fields left ``None`` are unset).
* :data:`UNSET` — the sentinel the entrypoints use as keyword default so
  an explicitly passed value (including ``None``, which is meaningful
  for knobs like ``checkpoint_every_epochs``) is distinguishable from
  "not passed".
* :func:`resolve_knob` / :func:`warn_deprecated_alias` — the resolution
  and one-release deprecation-shim helpers.

The migration table in ``docs/controllers.md`` lists the renamed kwargs;
the old names keep working for one release and emit
``DeprecationWarning`` (asserted in ``tests/experiments/test_workload.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields

__all__ = ["UNSET", "WorkloadConfig", "resolve_knob", "warn_deprecated_alias"]


class _Unset:
    """Sentinel type distinguishing "not passed" from an explicit ``None``."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unset>"

    def __reduce__(self):
        return (_Unset, ())


UNSET = _Unset()


@dataclass(frozen=True)
class WorkloadConfig:
    """Uniform knobs shared by all workload entrypoints.

    Fields default to ``None`` meaning *unset* — the entrypoint's own
    default applies.  Workload-specific knobs (environment names, GAN
    mixtures, model widths…) stay ordinary keyword arguments on the
    entrypoints; this config carries only the vocabulary every workload
    shares.
    """

    # method / budget
    method: str | None = None
    sparsity: float | None = None
    distribution: str | None = None
    block_size: int | None = None
    # schedule (drop-and-grow)
    delta_t: int | None = None
    drop_fraction: float | None = None
    c: float | None = None
    epsilon: float | None = None
    # training loop
    epochs: int | None = None
    total_steps: int | None = None
    batch_size: int | None = None
    lr: float | None = None
    seed: int | None = None
    n_workers: int | None = None
    # backend
    sparse_backend: str | None = None
    # checkpointing
    checkpoint_dir: object | None = None
    checkpoint_every_epochs: int | None = None
    checkpoint_every_steps: int | None = None
    checkpoint_keep_last: int | None = None
    resume_from: object | None = None

    def kwargs(self) -> dict:
        """The non-``None`` fields as a plain kwargs dict."""
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is not None:
                out[spec.name] = value
        return out


def resolve_knob(name: str, explicit, config: WorkloadConfig | None, default):
    """Resolve one knob: explicit kwarg > config field > default."""
    if explicit is not UNSET:
        return explicit
    if config is not None:
        value = getattr(config, name)
        if value is not None:
            return value
    return default


def warn_deprecated_alias(old: str, new: str, old_value, new_value):
    """One-release shim for a renamed kwarg; returns the value to use.

    Emits a :class:`DeprecationWarning` whenever the old name is passed.
    If both names are passed explicitly the new one wins (the warning
    says so), matching the migration table in ``docs/controllers.md``.
    """
    if old_value is UNSET:
        return new_value
    warnings.warn(
        f"{old!r} is deprecated; pass {new!r} instead (one-release shim, "
        "see the migration table in docs/controllers.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    if new_value is not UNSET:
        return new_value
    return old_value
