"""Plain-text table formatting for the benchmark harness output.

The benches print rows in the same arrangement as the paper's tables so the
shapes (who wins, by how much) can be compared side by side with
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_float", "format_mean_std"]


def format_float(value, digits: int = 2) -> str:
    """Render a float (or None) compactly."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_mean_std(mean: float, std: float, digits: int = 2) -> str:
    """Paper-style ``mean ± std`` cell."""
    return f"{mean:.{digits}f} ± {std:.{digits}f}"


def format_table(
    rows: Sequence[dict],
    columns: Sequence[str],
    headers: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Align a list of row-dicts into a monospace table string."""
    headers = list(headers) if headers is not None else list(columns)
    if len(headers) != len(columns):
        raise ValueError("headers and columns must have the same length")
    cells = [[str(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
