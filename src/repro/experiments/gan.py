"""Sparse-GAN stressor: adversarial training under a shared density budget.

The budget API's hardest customer: *two* networks (a generator and a
discriminator, both plain MLPs over a synthetic 2-D Gaussian mixture) each
run their own sparsity controller, and a :class:`GanDensityBalancer` moves
non-zero capacity **between** their :class:`~repro.sparse.budget.DensityBudget`
objects during training — when the discriminator's hinge margin says it is
winning, the generator is granted density at the discriminator's expense
(and vice versa).  The combined non-zero count is conserved exactly; each
engine realizes its new allocations at its next ΔT mask update.

Everything is dependency-free: data is sampled from closed-form mixtures
(:data:`MIXTURES`), the networks are :class:`repro.models.mlp.MLP`
instances, and the loss is the hinge GAN objective built from existing
tensor ops.  :class:`GANTrainer` mirrors :class:`repro.rl.trainer.RLTrainer`:
``state_dict``/``load_state_dict`` capture everything that evolves (both
networks, both optimizers, both controllers, the balancer's margin EMA and
transfer ledger, the data/latent RNG streams, history, callbacks), so a
killed run resumed from a checkpoint continues **bitwise identically**.

Quality is scored by *mode coverage*: the fraction of mixture modes that
receive a non-trivial share of generated samples (the standard synthetic
2-D GAN health check) — surfaced as ``final_accuracy`` so the sweep
aggregation machinery works unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.experiments.registry import GAN_METHODS, SweepCell, build_method
from repro.experiments.runner import (
    SweepReport,
    _resolve_resume_path,
    run_cell_grid,
)
from repro.models.mlp import MLP
from repro.optim import Adam
from repro.parallel import run_sharded
from repro.sparse.budget import DensityBudget
from repro.train.callbacks import Callback
from repro.train.checkpoint import CheckpointCallback, load_training_checkpoint
from repro.experiments.workload import (
    UNSET,
    WorkloadConfig,
    resolve_knob,
    warn_deprecated_alias,
)

__all__ = [
    "MIXTURES",
    "GaussianMixture",
    "GanDensityBalancer",
    "GANTrainer",
    "GANRunResult",
    "run_gan",
    "run_gan_multi_seed",
    "run_gan_sweep",
]


# ----------------------------------------------------------------------
# synthetic data
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GaussianMixture:
    """Closed-form 2-D mixture: equally weighted isotropic Gaussians."""

    name: str
    centers: tuple[tuple[float, float], ...]
    std: float

    @property
    def n_modes(self) -> int:
        return len(self.centers)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        centers = np.asarray(self.centers, dtype=np.float32)
        idx = rng.integers(0, len(centers), size=n)
        noise = rng.normal(0.0, self.std, size=(n, 2))
        return (centers[idx] + noise).astype(np.float32)

    def mode_coverage(
        self, samples: np.ndarray, min_share: float = 0.005
    ) -> tuple[int, float]:
        """(covered modes, high-quality sample fraction) for ``samples``.

        A sample is *high quality* if it lies within 3σ of its nearest
        mode; a mode is *covered* if it attracts at least ``min_share`` of
        all samples as high-quality hits.
        """
        centers = np.asarray(self.centers, dtype=np.float64)
        points = np.asarray(samples, dtype=np.float64)
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        nearest = np.argmin(distances, axis=1)
        good = distances[np.arange(len(points)), nearest] <= 3.0 * self.std
        threshold = max(1, int(round(min_share * len(points))))
        covered = sum(
            int(np.sum(good & (nearest == mode)) >= threshold)
            for mode in range(len(centers))
        )
        return covered, float(np.mean(good)) if len(points) else 0.0


def _ring(n: int, radius: float = 2.0) -> tuple[tuple[float, float], ...]:
    angles = [2.0 * np.pi * k / n for k in range(n)]
    return tuple((radius * float(np.cos(a)), radius * float(np.sin(a))) for a in angles)


MIXTURES: dict[str, GaussianMixture] = {
    "ring4": GaussianMixture("ring4", _ring(4), std=0.05),
    "ring8": GaussianMixture("ring8", _ring(8), std=0.05),
    "grid9": GaussianMixture(
        "grid9",
        tuple((float(x), float(y)) for x in (-2.0, 0.0, 2.0) for y in (-2.0, 0.0, 2.0)),
        std=0.05,
    ),
}


# ----------------------------------------------------------------------
# cross-network density balancing
# ----------------------------------------------------------------------
class GanDensityBalancer:
    """Move density between the G and D budgets from the hinge margin.

    Every ``delta_t`` steps the EMA of the discriminator margin
    (``mean D(real) − mean D(fake)``) is compared to a deadband: above
    ``margin_high`` the discriminator is winning, so up to ``max_shift`` of
    its current budget is rescaled away and granted to the generator;
    below ``margin_low`` the transfer runs the other way.  Transfers are
    exact in elements (both budgets ``rescale`` to integer totals) and the
    combined total never changes; the engines realize the new allocations
    at their next mask update.
    """

    def __init__(
        self,
        g_budget: DensityBudget,
        d_budget: DensityBudget,
        delta_t: int = 100,
        max_shift: float = 0.05,
        ema_beta: float = 0.9,
        margin_high: float = 1.5,
        margin_low: float = 0.5,
        stop_step: int | None = None,
    ):
        if not 0.0 < max_shift <= 1.0:
            raise ValueError(f"max_shift must be in (0, 1], got {max_shift}")
        if margin_low > margin_high:
            raise ValueError("margin_low must be <= margin_high")
        self.g_budget = g_budget
        self.d_budget = d_budget
        self.delta_t = max(1, int(delta_t))
        self.max_shift = float(max_shift)
        self.ema_beta = float(ema_beta)
        self.margin_high = float(margin_high)
        self.margin_low = float(margin_low)
        self.stop_step = stop_step
        self._margin_ema: float | None = None
        self.transfers: list[tuple[int, int]] = []  # (step, +toward G / −toward D)

    @property
    def combined_total(self) -> int:
        return self.g_budget.total + self.d_budget.total

    def observe(self, d_real_mean: float, d_fake_mean: float) -> None:
        margin = float(d_real_mean) - float(d_fake_mean)
        if self._margin_ema is None:
            self._margin_ema = margin
        else:
            self._margin_ema = self.ema_beta * self._margin_ema + (1.0 - self.ema_beta) * margin

    def maybe_rebalance(self, step: int) -> int:
        """At ΔT boundaries, shift budget toward the losing network.

        Returns the signed element count moved (positive toward the
        generator, zero off-boundary or inside the deadband).
        """
        if step <= 0 or step % self.delta_t != 0 or self._margin_ema is None:
            return 0
        if self.stop_step is not None and step >= self.stop_step:
            return 0
        if self._margin_ema > self.margin_high:
            donor, receiver, sign = self.d_budget, self.g_budget, +1
        elif self._margin_ema < self.margin_low:
            donor, receiver, sign = self.g_budget, self.d_budget, -1
        else:
            return 0
        floor = sum(donor.unit(name) for name in donor.names)
        moved = min(
            int(self.max_shift * donor.total),
            donor.total - floor,
            receiver.capacity - receiver.total,
        )
        if moved <= 0:
            return 0
        donor.rescale(donor.total - moved)
        receiver.rescale(receiver.total + moved)
        self.transfers.append((step, sign * moved))
        return sign * moved

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "margin_ema": self._margin_ema,
            "transfers": [[int(step), int(moved)] for step, moved in self.transfers],
        }

    def load_state_dict(self, state: dict) -> None:
        raw = state["margin_ema"]
        self._margin_ema = None if raw is None else float(raw)
        self.transfers = [(int(step), int(moved)) for step, moved in state["transfers"]]


# ----------------------------------------------------------------------
# trainer
# ----------------------------------------------------------------------
@dataclass
class GanStepRecord:
    """One logged training step (the GAN analogue of an ``EpochRecord``)."""

    step: int
    loss_d: float
    loss_g: float
    margin: float
    g_density: float | None
    d_density: float | None
    transferred: int

    @property
    def epoch(self) -> int:
        """Alias so epoch-cadence callbacks (checkpointing) work unchanged."""
        return self.step


class GANTrainer:
    """Alternating hinge-GAN loop with per-network DST controllers.

    Each global step runs one discriminator update and one generator
    update; both controllers see the same step counter, so their ΔT
    schedules stay aligned with the balancer's.  The balancer (optional)
    runs *before* the two updates, so a transfer at step ``t`` is realized
    by the engines' mask updates at the same ``t``.
    """

    # Construction-time config (mixture geometry and the loss have no
    # evolving state); the balancer, RNGs and history ARE checkpointed.
    CHECKPOINT_EXEMPT = {"mixture"}

    def __init__(
        self,
        generator: MLP,
        discriminator: MLP,
        mixture: GaussianMixture,
        g_optimizer,
        d_optimizer,
        g_controller=None,
        d_controller=None,
        balancer: GanDensityBalancer | None = None,
        callbacks: Sequence[Callback] = (),
        batch_size: int = 64,
        latent_dim: int = 8,
        log_every: int = 50,
        data_rng: np.random.Generator | None = None,
        latent_rng: np.random.Generator | None = None,
    ):
        self.generator = generator
        self.discriminator = discriminator
        self.mixture = mixture
        self.g_optimizer = g_optimizer
        self.d_optimizer = d_optimizer
        self.g_controller = g_controller
        self.d_controller = d_controller
        self.balancer = balancer
        self.callbacks = list(callbacks)
        self.batch_size = int(batch_size)
        self.latent_dim = int(latent_dim)
        self.log_every = max(1, int(log_every))
        self.data_rng = data_rng if data_rng is not None else np.random.default_rng()
        self.latent_rng = latent_rng if latent_rng is not None else np.random.default_rng()
        self.history: list[GanStepRecord] = []
        self.global_step = 0
        self.last_loss_d: float | None = None
        self.last_loss_g: float | None = None

    # ------------------------------------------------------------------
    def _latents(self, n: int) -> Tensor:
        z = self.latent_rng.standard_normal((n, self.latent_dim)).astype(np.float32)
        return Tensor(z)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` points from the generator with an external RNG."""
        z = rng.standard_normal((n, self.latent_dim)).astype(np.float32)
        return np.asarray(self.generator(Tensor(z)).data)

    def _density(self, controller) -> float | None:
        masked = getattr(controller, "masked", None)
        return None if masked is None else 1.0 - masked.global_sparsity()

    # ------------------------------------------------------------------
    def fit(self, total_steps: int) -> list[GanStepRecord]:
        """Train until ``total_steps`` global steps (resume-aware)."""
        for callback in self.callbacks:
            callback.bind(self)
        while self.global_step < total_steps:
            self.global_step += 1
            step = self.global_step

            transferred = 0
            if self.balancer is not None:
                transferred = self.balancer.maybe_rebalance(step)

            # ---- discriminator update (hinge loss) ----
            real = Tensor(self.mixture.sample(self.batch_size, self.data_rng))
            fake_detached = self.generator(self._latents(self.batch_size)).detach()
            self.discriminator.zero_grad()
            if self.d_controller is not None:
                self.d_controller.before_backward(step)
            d_real = self.discriminator(real)
            d_fake = self.discriminator(fake_detached)
            loss_d = (1.0 - d_real).relu().mean() + (1.0 + d_fake).relu().mean()
            loss_d.backward()
            skip_d = False
            if self.d_controller is not None:
                skip_d = self.d_controller.on_backward(step)
            if not skip_d:
                self.d_optimizer.step()
                if self.d_controller is not None:
                    self.d_controller.after_step(step)
            margin = float(np.mean(d_real.data)) - float(np.mean(d_fake.data))
            if self.balancer is not None:
                self.balancer.observe(
                    float(np.mean(d_real.data)), float(np.mean(d_fake.data))
                )

            # ---- generator update (non-saturating hinge) ----
            self.generator.zero_grad()
            self.discriminator.zero_grad()
            if self.g_controller is not None:
                self.g_controller.before_backward(step)
            fake = self.generator(self._latents(self.batch_size))
            loss_g = (-self.discriminator(fake)).mean()
            loss_g.backward()
            skip_g = False
            if self.g_controller is not None:
                skip_g = self.g_controller.on_backward(step)
            if not skip_g:
                self.g_optimizer.step()
                if self.g_controller is not None:
                    self.g_controller.after_step(step)

            self.last_loss_d = loss_d.item()
            self.last_loss_g = loss_g.item()
            if step % self.log_every == 0 or transferred:
                record = GanStepRecord(
                    step=step,
                    loss_d=self.last_loss_d,
                    loss_g=self.last_loss_g,
                    margin=margin,
                    g_density=self._density(self.g_controller),
                    d_density=self._density(self.d_controller),
                    transferred=transferred,
                )
                self.history.append(record)
                for callback in self.callbacks:
                    callback.on_epoch_end(record)
            for callback in self.callbacks:
                callback.on_step_end(step)
            if any(callback.should_stop() for callback in self.callbacks):
                break
        return self.history

    # ------------------------------------------------------------------
    # checkpointing (resume-exact; see module docstring)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "global_step": self.global_step,
            "generator": self.generator.state_dict(),
            "discriminator": self.discriminator.state_dict(),
            "g_optimizer": self.g_optimizer.state_dict(),
            "d_optimizer": self.d_optimizer.state_dict(),
            "g_controller": (
                self.g_controller.state_dict() if self.g_controller is not None else None
            ),
            "d_controller": (
                self.d_controller.state_dict() if self.d_controller is not None else None
            ),
            "balancer": self.balancer.state_dict() if self.balancer is not None else None,
            "data_rng": self.data_rng.bit_generator.state,
            "latent_rng": self.latent_rng.bit_generator.state,
            "last_loss_d": self.last_loss_d,
            "last_loss_g": self.last_loss_g,
            "history": [
                {
                    "step": record.step,
                    "loss_d": record.loss_d,
                    "loss_g": record.loss_g,
                    "margin": record.margin,
                    "g_density": record.g_density,
                    "d_density": record.d_density,
                    "transferred": record.transferred,
                }
                for record in self.history
            ],
            "callbacks": [
                {"type": type(cb).__name__, "state": cb.state_dict()}
                for cb in self.callbacks
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        for name, attr in (
            ("g_controller", self.g_controller),
            ("d_controller", self.d_controller),
            ("balancer", self.balancer),
        ):
            if (state[name] is None) != (attr is None):
                raise ValueError(f"checkpoint and trainer disagree on {name} presence")
        self.generator.load_state_dict(state["generator"])
        self.discriminator.load_state_dict(state["discriminator"])
        self.g_optimizer.load_state_dict(state["g_optimizer"])
        self.d_optimizer.load_state_dict(state["d_optimizer"])
        if self.g_controller is not None:
            self.g_controller.load_state_dict(state["g_controller"])
        if self.d_controller is not None:
            self.d_controller.load_state_dict(state["d_controller"])
        if self.balancer is not None:
            self.balancer.load_state_dict(state["balancer"])
        self.data_rng.bit_generator.state = state["data_rng"]
        self.latent_rng.bit_generator.state = state["latent_rng"]
        self.global_step = int(state["global_step"])
        self.last_loss_d = (
            None if state["last_loss_d"] is None else float(state["last_loss_d"])
        )
        self.last_loss_g = (
            None if state["last_loss_g"] is None else float(state["last_loss_g"])
        )
        self.history = [
            GanStepRecord(
                step=int(record["step"]),
                loss_d=float(record["loss_d"]),
                loss_g=float(record["loss_g"]),
                margin=float(record["margin"]),
                g_density=(
                    None if record["g_density"] is None else float(record["g_density"])
                ),
                d_density=(
                    None if record["d_density"] is None else float(record["d_density"])
                ),
                transferred=int(record["transferred"]),
            )
            for record in state["history"]
        ]
        for index, saved in enumerate(state.get("callbacks", [])):
            if saved["state"] is None:
                continue
            if index < len(self.callbacks) and (
                type(self.callbacks[index]).__name__ == saved["type"]
            ):
                self.callbacks[index].load_state_dict(saved["state"])


# ----------------------------------------------------------------------
# run entry points
# ----------------------------------------------------------------------
@dataclass
class GANRunResult:
    """Outcome of one sparse-GAN training run."""

    method: str
    mixture: str
    sparsity: float
    seed: int
    total_steps: int
    modes_covered: int
    n_modes: int
    mode_coverage: float
    high_quality_fraction: float
    final_loss_d: float | None
    final_loss_g: float | None
    g_density: float | None
    d_density: float | None
    combined_budget: int | None
    transfers: list = field(repr=False, default_factory=list)
    seconds: float = 0.0
    history: list = field(repr=False, default_factory=list)
    # Populated only with ``keep_model=True`` (serial runs).
    generator: object = field(repr=False, default=None, compare=False)
    discriminator: object = field(repr=False, default=None, compare=False)

    @property
    def final_accuracy(self) -> float:
        """Sweep-aggregation score (``SweepReport`` reads this name)."""
        return self.mode_coverage


def run_gan(
    method: str = UNSET,
    mixture: str = "ring8",
    *,
    config: WorkloadConfig | None = None,
    sparsity: float = UNSET,
    total_steps: int = UNSET,
    seed: int = UNSET,
    hidden: Sequence[int] = (64, 64),
    latent_dim: int = 8,
    batch_size: int = UNSET,
    lr: float = UNSET,
    delta_t: int = UNSET,
    drop_fraction: float = UNSET,
    c: float = UNSET,
    epsilon: float = UNSET,
    ee_epsilon: float = UNSET,
    distribution: str = UNSET,
    balance_delta_t: int | None = None,
    balance_max_shift: float = 0.05,
    n_eval_samples: int = 2000,
    log_every: int = 50,
    callbacks: Sequence[Callback] = (),
    checkpoint_dir=UNSET,
    checkpoint_every_steps: int | None = UNSET,
    checkpoint_keep_last: int | None = UNSET,
    resume_from=UNSET,
    keep_model: bool = False,
) -> GANRunResult:
    """Train one sparse-GAN configuration and return its summary row.

    ``seed`` drives every stream of randomness (both networks' init, both
    initial masks, both engines' tie-breaking, data sampling, latent
    sampling, evaluation), so runs are exactly reproducible.  ``method``
    is one of :data:`~repro.experiments.registry.GAN_METHODS` and is
    applied to *both* networks; for non-dense methods the
    :class:`GanDensityBalancer` additionally moves density between the two
    budgets.  Checkpoint/resume semantics match the supervised and RL
    runners — a resumed run is bitwise identical to an uninterrupted one.

    The uniform workload knobs may also arrive through ``config=`` (see
    :class:`~repro.experiments.workload.WorkloadConfig`); explicit
    keywords win over config fields.  ``ee_epsilon`` is a one-release
    deprecated alias of ``epsilon``, the name the other entrypoints use.
    """
    epsilon = warn_deprecated_alias("ee_epsilon", "epsilon", ee_epsilon, epsilon)
    method = resolve_knob("method", method, config, None)
    if method is None:
        raise TypeError("run_gan: 'method' is required")
    sparsity = resolve_knob("sparsity", sparsity, config, 0.9)
    total_steps = resolve_knob("total_steps", total_steps, config, 2000)
    seed = resolve_knob("seed", seed, config, 0)
    batch_size = resolve_knob("batch_size", batch_size, config, 64)
    lr = resolve_knob("lr", lr, config, 1e-3)
    delta_t = resolve_knob("delta_t", delta_t, config, 100)
    drop_fraction = resolve_knob("drop_fraction", drop_fraction, config, 0.3)
    c = resolve_knob("c", c, config, 1e-3)
    ee_epsilon = resolve_knob("epsilon", epsilon, config, 1.0)
    distribution = resolve_knob("distribution", distribution, config, "erk")
    checkpoint_dir = resolve_knob("checkpoint_dir", checkpoint_dir, config, None)
    checkpoint_every_steps = resolve_knob(
        "checkpoint_every_steps", checkpoint_every_steps, config, 200
    )
    checkpoint_keep_last = resolve_knob(
        "checkpoint_keep_last", checkpoint_keep_last, config, None
    )
    resume_from = resolve_knob("resume_from", resume_from, config, None)
    if method not in GAN_METHODS:
        raise ValueError(f"method {method!r} is not GAN-capable; known: {GAN_METHODS}")
    if mixture not in MIXTURES:
        raise ValueError(f"unknown mixture {mixture!r}; registered: {sorted(MIXTURES)}")
    start = time.time()
    spec = MIXTURES[mixture]
    hidden = tuple(int(width) for width in hidden)
    generator = MLP(latent_dim, hidden, 2, seed=seed)
    discriminator = MLP(2, hidden, 1, seed=seed + 1)
    g_optimizer = Adam(generator.parameters(), lr=lr)
    d_optimizer = Adam(discriminator.parameters(), lr=lr)

    g_setup = build_method(
        method,
        generator,
        g_optimizer,
        sparsity,
        total_steps,
        distribution=distribution,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        c=c,
        epsilon=ee_epsilon,
        rng=np.random.default_rng(seed + 2),
    )
    d_setup = build_method(
        method,
        discriminator,
        d_optimizer,
        sparsity,
        total_steps,
        distribution=distribution,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        c=c,
        epsilon=ee_epsilon,
        rng=np.random.default_rng(seed + 3),
    )

    balancer = None
    if g_setup.masked is not None and d_setup.masked is not None:
        balancer = GanDensityBalancer(
            g_setup.masked.budget,
            d_setup.masked.budget,
            delta_t=balance_delta_t if balance_delta_t is not None else delta_t,
            max_shift=balance_max_shift,
            # Freeze transfers alongside the engines' own topology freeze.
            stop_step=int(0.75 * total_steps),
        )

    all_callbacks: list[Callback] = list(callbacks)
    if checkpoint_dir is not None:
        all_callbacks.append(
            CheckpointCallback(
                checkpoint_dir,
                every_n_epochs=None,
                every_n_steps=checkpoint_every_steps,
                keep_last=checkpoint_keep_last,
            )
        )

    trainer = GANTrainer(
        generator,
        discriminator,
        spec,
        g_optimizer,
        d_optimizer,
        g_controller=g_setup.controller,
        d_controller=d_setup.controller,
        balancer=balancer,
        callbacks=all_callbacks,
        batch_size=batch_size,
        latent_dim=latent_dim,
        log_every=log_every,
        data_rng=np.random.default_rng(seed + 4),
        latent_rng=np.random.default_rng(seed + 5),
    )
    resume_path = _resolve_resume_path(resume_from)
    if resume_path is not None:
        trainer.load_state_dict(load_training_checkpoint(resume_path))
    history = trainer.fit(total_steps)

    eval_rng = np.random.default_rng(seed + 6)
    samples = trainer.generate(n_eval_samples, eval_rng)
    covered, quality = spec.mode_coverage(samples)
    return GANRunResult(
        method=method,
        mixture=mixture,
        sparsity=sparsity,
        seed=seed,
        total_steps=trainer.global_step,
        modes_covered=covered,
        n_modes=spec.n_modes,
        mode_coverage=covered / spec.n_modes,
        high_quality_fraction=quality,
        final_loss_d=trainer.last_loss_d,
        final_loss_g=trainer.last_loss_g,
        g_density=(
            1.0 - g_setup.masked.global_sparsity() if g_setup.masked is not None else None
        ),
        d_density=(
            1.0 - d_setup.masked.global_sparsity() if d_setup.masked is not None else None
        ),
        combined_budget=balancer.combined_total if balancer is not None else None,
        transfers=list(balancer.transfers) if balancer is not None else [],
        seconds=time.time() - start,
        history=list(history),
        generator=generator if keep_model else None,
        discriminator=discriminator if keep_model else None,
    )


def run_gan_multi_seed(
    method: str,
    mixture: str = "ring8",
    seeds: tuple[int, ...] = (0, 1, 2),
    n_proc: int | None = None,
    **kwargs,
) -> tuple[float, float, list[GANRunResult]]:
    """Run several seeds; return (mean mode coverage, std, all results)."""
    jobs = [
        (lambda seed=seed: run_gan(method, mixture, seed=seed, **kwargs))
        for seed in seeds
    ]
    results = [
        shard.unwrap() for shard in run_sharded(jobs, n_proc=n_proc, fail_fast=True)
    ]
    scores = np.array([r.mode_coverage for r in results])
    return float(np.mean(scores)), float(np.std(scores)), results


def run_gan_sweep(
    cells: Sequence[SweepCell],
    n_proc: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    **run_kwargs,
) -> SweepReport:
    """Run a grid of GAN sweep cells across ``n_proc`` worker processes.

    Cells come from
    :func:`repro.experiments.registry.enumerate_gan_cells` (``dataset`` is
    the mixture name).  Crash isolation, per-cell result records,
    ``manifest.json``, config-fingerprint invalidation, and ``resume=True``
    semantics are identical to the supervised and RL sweeps — all three
    share :func:`repro.experiments.runner.run_cell_grid`.
    """
    cells = list(cells)
    for cell in cells:
        if cell.method not in GAN_METHODS:
            raise ValueError(f"method {cell.method!r} is not GAN-capable; known: {GAN_METHODS}")
        if cell.dataset not in MIXTURES:
            raise KeyError(f"no mixture named {cell.dataset!r}")

    def run_cell(cell: SweepCell, cell_dir, resume_cell: bool, kwargs: dict):
        return run_gan(
            cell.method,
            cell.dataset,
            sparsity=cell.sparsity,
            seed=cell.seed,
            checkpoint_dir=cell_dir,
            resume_from=cell_dir if resume_cell else None,
            **kwargs,
        )

    return run_cell_grid(
        cells,
        run_cell,
        n_proc=n_proc,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        **run_kwargs,
    )
