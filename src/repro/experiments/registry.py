"""Method registry: build any of the paper's compared methods by name.

Families
--------
* ``dense`` — no sparsification (the tables' reference rows).
* static pruning at initialization — ``snip``, ``grasp``, ``synflow``,
  ``static_random`` (random ERK mask, an ablation point).
* dense-to-sparse — ``str`` (proximal variant), ``gmp``, ``granet``.
* dynamic sparse training — ``set``, ``rigl``, ``rigl_itop``, ``deepr``,
  ``snfs``, ``dsr``, ``mest`` and the paper's ``dst_ee``.

:func:`build_method` returns a :class:`MethodSetup` holding the controller
(plus the masked model when applicable) ready for the Trainer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.module import Module
from repro.optim.sgd import Optimizer
from repro.sparse import (
    DSTEEGrowth,
    DensityBalanceController,
    DensityBudget,
    DynamicSparseEngine,
    FixedMaskController,
    GMPController,
    GradientGrowth,
    MagnitudeDrop,
    MagnitudeGradientDrop,
    MaskedModel,
    MomentumGrowth,
    RandomGrowth,
    STRController,
    SignFlipDrop,
    SparsityController,
    TrainingSchedule,
    grasp_masks,
    snip_masks,
    synflow_masks,
)

__all__ = [
    "MethodSetup",
    "SweepCell",
    "build_method",
    "enumerate_cells",
    "enumerate_rl_cells",
    "enumerate_gan_cells",
    "enumerate_lm_cells",
    "DYNAMIC_METHODS",
    "STATIC_METHODS",
    "DENSE_TO_SPARSE_METHODS",
    "ALL_METHODS",
    "RL_METHODS",
    "GAN_METHODS",
    "LM_METHODS",
    "method_family",
]


DYNAMIC_METHODS = (
    "set",
    "rigl",
    "rigl_itop",
    "deepr",
    "snfs",
    "dsr",
    "mest",
    "dst_ee",
    "balanced",
)
STATIC_METHODS = ("snip", "grasp", "synflow", "static_random")
DENSE_TO_SPARSE_METHODS = ("str", "gmp", "granet", "gap")
ALL_METHODS = ("dense",) + STATIC_METHODS + DENSE_TO_SPARSE_METHODS + DYNAMIC_METHODS

# Methods the RL workload supports: the dense reference plus every
# drop-and-grow controller.  Static pruners need saliency batches and the
# dense-to-sparse schedules are epoch-keyed — neither maps onto the
# step-driven DQN loop without a separate design.
RL_METHODS = ("dense",) + DYNAMIC_METHODS

# Methods the sparse-GAN stressor supports: both networks run a
# drop-and-grow controller (or none), and the G↔D balancer moves density
# between their budgets — so only budget-driven dynamic methods qualify.
GAN_METHODS = ("dense",) + DYNAMIC_METHODS

# Methods the char-LM workload supports: the dense reference plus every
# budget-driven drop-and-grow controller, applied across all transformer
# weight matrices (attention/MLP Linears and both embedding tables).
LM_METHODS = ("dense",) + DYNAMIC_METHODS


def method_family(name: str) -> str:
    """Return the family of a method name (raises on unknown names)."""
    if name == "dense":
        return "dense"
    if name in STATIC_METHODS:
        return "static"
    if name in DENSE_TO_SPARSE_METHODS:
        return "dense_to_sparse"
    if name in DYNAMIC_METHODS:
        return "dynamic"
    raise ValueError(f"unknown method {name!r}; known: {ALL_METHODS}")


@dataclass
class MethodSetup:
    """A constructed method: controller + masked model (None for dense)."""

    name: str
    family: str
    controller: SparsityController | None
    masked: MaskedModel | None
    finalize: Callable[[], None] | None = None  # e.g. STR pattern freeze


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of a sweep grid: a single training run.

    This is the granularity at which the parallel execution engine shards
    work (see :func:`repro.experiments.runner.run_sweep`): cells never
    share state, so any subset can run in any process in any order.
    """

    method: str
    model: str
    dataset: str
    sparsity: float
    seed: int


def enumerate_cells(
    methods: Sequence[str],
    models: Sequence[str],
    datasets: Sequence[str],
    sparsities: Sequence[float],
    seeds: Sequence[int] = (0, 1, 2),
    root_seed: int | None = None,
) -> list[SweepCell]:
    """Deterministic cell list for a (method × model × dataset × sparsity × seed) grid.

    Methods are validated up front (one bad name fails fast instead of as
    ``len(grid)`` broken cells).  With ``root_seed`` set, the explicit
    ``seeds`` are replaced by per-cell seeds derived via
    ``SeedSequence.spawn`` (:func:`repro.parallel.derive_seeds`): cell ``i``
    always gets the same seed regardless of worker count or sweep order,
    and no two cells share a stream.  With the default ``root_seed=None``
    every cell group reuses the explicit seed list — the paper's
    "(mean ± std) over seeds {0, 1, 2}" protocol.
    """
    for name in methods:
        method_family(name)  # raises on unknown methods
    grid = [
        (method, model, dataset, sparsity, seed)
        for method in methods
        for model in models
        for dataset in datasets
        for sparsity in sparsities
        for seed in seeds
    ]
    if root_seed is not None:
        from repro.parallel import derive_seeds

        derived = derive_seeds(root_seed, len(grid))
        grid = [
            (method, model, dataset, sparsity, derived[index])
            for index, (method, model, dataset, sparsity, _) in enumerate(grid)
        ]
    return [SweepCell(*entry) for entry in grid]


def enumerate_rl_cells(
    methods: Sequence[str],
    envs: Sequence[str],
    sparsities: Sequence[float],
    seeds: Sequence[int] = (0, 1, 2),
    root_seed: int | None = None,
) -> list[SweepCell]:
    """Deterministic cell list for an RL (method × env × sparsity × seed) grid.

    RL cells reuse :class:`SweepCell` with ``model="dqn"`` and the
    environment name in the ``dataset`` slot, so the sweep runner,
    checkpoint records, and report aggregation all work unchanged (see
    :func:`repro.experiments.rl.run_rl_sweep`).  Seeding semantics match
    :func:`enumerate_cells`: ``root_seed`` derives one independent seed per
    cell via ``SeedSequence.spawn``.
    """
    from repro.rl.envs import ENV_REGISTRY

    for name in methods:
        if name not in RL_METHODS:
            raise ValueError(f"method {name!r} is not RL-capable; known: {RL_METHODS}")
    for env_name in envs:
        if env_name not in ENV_REGISTRY:
            known = ", ".join(sorted(ENV_REGISTRY))
            raise ValueError(f"unknown environment {env_name!r}; registered: {known}")
    grid = [
        (method, "dqn", env_name, sparsity, seed)
        for method in methods
        for env_name in envs
        for sparsity in sparsities
        for seed in seeds
    ]
    if root_seed is not None:
        from repro.parallel import derive_seeds

        derived = derive_seeds(root_seed, len(grid))
        grid = [
            (method, model, env_name, sparsity, derived[index])
            for index, (method, model, env_name, sparsity, _) in enumerate(grid)
        ]
    return [SweepCell(*entry) for entry in grid]


def enumerate_gan_cells(
    methods: Sequence[str],
    mixtures: Sequence[str],
    sparsities: Sequence[float],
    seeds: Sequence[int] = (0, 1, 2),
    root_seed: int | None = None,
) -> list[SweepCell]:
    """Deterministic cell list for a GAN (method × mixture × sparsity × seed) grid.

    GAN cells reuse :class:`SweepCell` with ``model="gan"`` and the mixture
    name in the ``dataset`` slot, mirroring :func:`enumerate_rl_cells`, so
    the sweep runner, checkpoint records, and report aggregation work
    unchanged (see :func:`repro.experiments.gan.run_gan_sweep`).
    """
    from repro.experiments.gan import MIXTURES

    for name in methods:
        if name not in GAN_METHODS:
            raise ValueError(f"method {name!r} is not GAN-capable; known: {GAN_METHODS}")
    for mixture in mixtures:
        if mixture not in MIXTURES:
            known = ", ".join(sorted(MIXTURES))
            raise ValueError(f"unknown mixture {mixture!r}; registered: {known}")
    grid = [
        (method, "gan", mixture, sparsity, seed)
        for method in methods
        for mixture in mixtures
        for sparsity in sparsities
        for seed in seeds
    ]
    if root_seed is not None:
        from repro.parallel import derive_seeds

        derived = derive_seeds(root_seed, len(grid))
        grid = [
            (method, model, mixture, sparsity, derived[index])
            for index, (method, model, mixture, sparsity, _) in enumerate(grid)
        ]
    return [SweepCell(*entry) for entry in grid]


def enumerate_lm_cells(
    methods: Sequence[str],
    sparsities: Sequence[float],
    seeds: Sequence[int] = (0, 1, 2),
    root_seed: int | None = None,
) -> list[SweepCell]:
    """Deterministic cell list for an LM (method × sparsity × seed) grid.

    LM cells reuse :class:`SweepCell` with ``model="char_gpt"`` and the
    corpus name in the ``dataset`` slot, mirroring the RL/GAN grids, so
    the sweep runner, checkpoint records, and report aggregation work
    unchanged (see :func:`repro.experiments.lm.run_lm_sweep`).
    """
    for name in methods:
        if name not in LM_METHODS:
            raise ValueError(f"method {name!r} is not LM-capable; known: {LM_METHODS}")
    grid = [
        (method, "char_gpt", "markov-prose", sparsity, seed)
        for method in methods
        for sparsity in sparsities
        for seed in seeds
    ]
    if root_seed is not None:
        from repro.parallel import derive_seeds

        derived = derive_seeds(root_seed, len(grid))
        grid = [
            (method, model, corpus, sparsity, derived[index])
            for index, (method, model, corpus, sparsity, _) in enumerate(grid)
        ]
    return [SweepCell(*entry) for entry in grid]


def build_method(
    name: str,
    model: Module,
    optimizer: Optimizer,
    sparsity: float,
    total_steps: int,
    *,
    distribution: str = "erk",
    delta_t: int = 100,
    drop_fraction: float = 0.3,
    stop_fraction: float = 0.75,
    c: float = 1e-3,
    epsilon: float = 1.0,
    mest_lambda: float = 1.0,
    loss_fn: Callable | None = None,
    saliency_batches: Iterable | None = None,
    input_shape: tuple[int, ...] | None = None,
    include_modules: Sequence[Module] | None = None,
    rng: np.random.Generator | None = None,
    block_size: int | None = None,
) -> MethodSetup:
    """Construct the named sparsification method around ``model``.

    ``saliency_batches`` (an iterable of ``(inputs, targets)``) is required
    for SNIP/GraSP; ``input_shape`` for SynFlow.  ``include_modules``
    restricts sparsification (the GNN experiments pass the two FC layers).

    ``block_size`` > 1 requests block-structured masks (drop-and-grow on
    ``block_size × block_size`` tiles; see :mod:`repro.sparse.blocks`).  It
    applies to the distribution-sampled mask families — random-static and
    the dynamic methods — and is rejected for saliency-derived or
    dense-to-sparse methods, whose unstructured scores have no block form.
    """
    family = method_family(name)
    rng = rng if rng is not None else np.random.default_rng()

    if family == "dense":
        return MethodSetup(name=name, family=family, controller=None, masked=None)

    from repro.sparse.masked import resolve_block_size

    resolved_block = resolve_block_size(block_size)
    if resolved_block > 1 and not (family == "dynamic" or name == "static_random"):
        raise ValueError(
            f"block_size={resolved_block} is not supported for method "
            f"{name!r} (family {family!r}); block-structured masks apply to "
            "the dynamic methods and static_random"
        )

    if family == "static":
        if name == "static_random":
            masked = MaskedModel(
                model,
                sparsity,
                distribution=distribution,
                rng=rng,
                include_modules=include_modules,
                block_size=resolved_block,
            )
        else:
            masks = _static_masks(
                name,
                model,
                sparsity,
                loss_fn,
                saliency_batches,
                input_shape,
                include_modules,
            )
            masked = MaskedModel(
                model,
                sparsity,
                distribution=distribution,
                rng=rng,
                include_modules=include_modules,
                masks=masks,
            )
        return MethodSetup(
            name=name,
            family=family,
            controller=FixedMaskController(masked),
            masked=masked,
        )

    if family == "dense_to_sparse":
        if name == "gap":
            # GaP cycles partitions dense; masks start at the target level
            # and the construction-time budget is the sparse-phase target.
            from repro.sparse.gap import GaPController

            masked = MaskedModel(
                model,
                sparsity,
                distribution=distribution,
                rng=rng,
                include_modules=include_modules,
            )
            controller = GaPController(
                masked,
                schedule=TrainingSchedule(total_steps=total_steps, delta_t=delta_t),
                budget=masked.budget,
            )
            return MethodSetup(name=name, family=family, controller=controller, masked=masked)
        masked = MaskedModel(
            model,
            0.0,
            distribution="uniform",
            rng=rng,
            include_modules=include_modules,
        )
        # Dense-to-sparse controllers take the *final* budget: training
        # starts dense (masked.budget is all-capacity) and prunes down to it.
        final_budget = DensityBudget.from_global(masked.targets, 1.0 - sparsity)
        if name == "str":
            controller = STRController(
                masked,
                schedule=TrainingSchedule(
                    total_steps=total_steps,
                    delta_t=delta_t,
                    t_start_fraction=0.05,
                    t_end_fraction=0.75,
                ),
                budget=final_budget,
            )
            return MethodSetup(
                name=name,
                family=family,
                controller=controller,
                masked=masked,
                finalize=controller.finalize,
            )
        regrow = 0.5 if name == "granet" else 0.0
        controller = GMPController(
            masked,
            schedule=TrainingSchedule(total_steps=total_steps, delta_t=delta_t),
            budget=final_budget,
            regrow_fraction=regrow,
            rng=rng,
        )
        return MethodSetup(name=name, family=family, controller=controller, masked=masked)

    # ------------------------------------------------------------------ dynamic
    masked = MaskedModel(
        model,
        sparsity,
        distribution=distribution,
        rng=rng,
        include_modules=include_modules,
        block_size=resolved_block,
    )
    growth, drop, extra = _dynamic_rules(name, c, epsilon, mest_lambda)
    schedule = TrainingSchedule(
        total_steps=total_steps,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        drop_schedule=extra.get("drop_schedule", "cosine"),
        stop_fraction=extra.get("stop_fraction", stop_fraction),
    )
    if name == "balanced":
        engine = DensityBalanceController(
            masked,
            schedule=schedule,
            budget=masked.budget,
            growth_rule=growth,
            drop_rule=drop,
            optimizer=optimizer,
            rng=rng,
        )
        return MethodSetup(name=name, family=family, controller=engine, masked=masked)
    engine = DynamicSparseEngine(
        masked,
        growth,
        drop_rule=drop,
        optimizer=optimizer,
        rng=rng,
        schedule=schedule,
        budget=masked.budget,
        global_drop=extra.get("global_drop", False),
        grow_allocation=extra.get("grow_allocation", "per_layer"),
    )
    return MethodSetup(name=name, family=family, controller=engine, masked=masked)


def _dynamic_rules(name: str, c: float, epsilon: float, mest_lambda: float):
    """Growth rule, drop rule and engine overrides per dynamic method."""
    if name == "set":
        return RandomGrowth(), MagnitudeDrop(), {"drop_schedule": "constant"}
    if name == "rigl":
        return GradientGrowth(), MagnitudeDrop(), {}
    if name == "rigl_itop":
        # ITOP setting: keep exploring for the whole run with an un-annealed
        # drop fraction, maximizing coverage.
        return GradientGrowth(), MagnitudeDrop(), {
            "drop_schedule": "constant",
            "stop_fraction": 1.0,
        }
    if name == "dst_ee":
        return DSTEEGrowth(c=c, epsilon=epsilon), MagnitudeDrop(), {}
    if name == "snfs":
        return MomentumGrowth(), MagnitudeDrop(), {}
    if name == "deepr":
        return RandomGrowth(), SignFlipDrop(), {"drop_schedule": "constant"}
    if name == "dsr":
        return RandomGrowth(), MagnitudeDrop(), {
            "global_drop": True,
            "grow_allocation": "proportional",
        }
    if name == "mest":
        return RandomGrowth(), MagnitudeGradientDrop(mest_lambda), {"drop_schedule": "linear"}
    if name == "balanced":
        # Parger-style cross-layer rebalancing on RigL's rules; the
        # rebalancer itself is attached by build_method.
        return GradientGrowth(), MagnitudeDrop(), {}
    raise ValueError(f"unknown dynamic method {name!r}")


def _static_masks(
    name: str,
    model: Module,
    sparsity: float,
    loss_fn: Callable | None,
    saliency_batches: Iterable | None,
    input_shape: tuple[int, ...] | None,
    include_modules: Sequence[Module] | None,
) -> dict[str, np.ndarray]:
    if name == "synflow":
        if input_shape is None:
            raise ValueError("synflow requires input_shape")
        return synflow_masks(model, input_shape, sparsity, include_modules)
    if loss_fn is None or saliency_batches is None:
        raise ValueError(f"{name} requires loss_fn and saliency_batches")
    batches = list(saliency_batches)
    if name == "snip":
        return snip_masks(model, loss_fn, batches, sparsity, include_modules)
    if name == "grasp":
        return grasp_masks(model, loss_fn, batches, sparsity, include_modules)
    raise ValueError(f"unknown static method {name!r}")
