"""RL experiment cells: one (method, environment, sparsity, seed) DQN run.

The RL counterpart of :mod:`repro.experiments.runner`: wires together an
environment from :mod:`repro.rl.envs`, a DQN agent whose online Q-network
is sparsified by :func:`repro.experiments.registry.build_method`, and the
resume-exact :class:`~repro.rl.trainer.RLTrainer`, and returns an
:class:`RLRunResult` with the numbers the RL benches and tables report.

Fault tolerance mirrors the supervised layer: pass ``checkpoint_dir`` to
write resume-exact training checkpoints during the run and ``resume_from``
to continue a killed run bitwise-identically; at the grid level,
:func:`run_rl_sweep` records completed cells on disk and ``resume=True``
skips them / resumes partial ones, reusing the same per-cell record and
manifest machinery as the supervised sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.experiments.registry import RL_METHODS, SweepCell, build_method
from repro.experiments.runner import (
    SweepReport,
    _resolve_resume_path,
    run_cell_grid,
)
from repro.models.mlp import MLP
from repro.optim import Adam
from repro.parallel import run_sharded
from repro.rl.agent import DQNAgent, EpsilonSchedule
from repro.rl.envs import ENV_REGISTRY, SOLVE_WINDOW, make_env
from repro.rl.replay import ReplayBuffer
from repro.rl.trainer import RLTrainer, rolling_returns
from repro.train.callbacks import Callback
from repro.train.checkpoint import CheckpointCallback, load_training_checkpoint
from repro.experiments.workload import (
    UNSET,
    WorkloadConfig,
    resolve_knob,
    warn_deprecated_alias,
)

__all__ = ["RLRunResult", "run_rl", "run_rl_multi_seed", "run_rl_sweep"]


@dataclass
class RLRunResult:
    """Outcome of one DQN training run."""

    method: str
    env: str
    sparsity: float
    seed: int
    total_steps: int
    train_steps: int
    episodes: int
    final_avg_return: float | None
    best_avg_return: float | None
    solved: bool
    solved_at_step: int | None
    solve_threshold: float
    seconds: float
    env_steps_per_sec: float
    train_steps_per_sec: float
    exploration_rate: float | None
    actual_sparsity: float | None
    history: list = field(repr=False, default_factory=list)
    masks: dict = field(repr=False, default_factory=dict)
    # Populated only with ``keep_model=True`` (serial runs): the trained
    # online Q-network and its MaskedModel wrapper, for export through
    # repro.serve.  Sweep workers never ship these over pipes.
    model: object = field(repr=False, default=None, compare=False)
    masked: object = field(repr=False, default=None, compare=False)

    @property
    def final_accuracy(self) -> float | None:
        """Sweep-aggregation score (``SweepReport`` reads this name).

        For RL cells the aggregated "accuracy" is the final rolling
        average episode return.
        """
        return self.final_avg_return


def run_rl(
    method: str = UNSET,
    env_name: str = "cartpole",
    *,
    config: WorkloadConfig | None = None,
    sparsity: float = UNSET,
    total_steps: int = UNSET,
    seed: int = UNSET,
    hidden: Sequence[int] = (256, 256),
    batch_size: int = UNSET,
    lr: float = UNSET,
    gamma: float = 0.99,
    buffer_capacity: int = 10_000,
    warmup_steps: int = 500,
    train_every: int = 1,
    target_sync_every: int = 200,
    epsilon_start: float = 1.0,
    epsilon_end: float = 0.05,
    epsilon_decay_fraction: float = 0.4,
    huber_delta: float = 1.0,
    delta_t: int = UNSET,
    drop_fraction: float = UNSET,
    c: float = UNSET,
    epsilon: float = UNSET,
    ee_epsilon: float = UNSET,
    distribution: str = UNSET,
    sparse_backend: str | None = UNSET,
    solve_window: int = SOLVE_WINDOW,
    callbacks: Sequence[Callback] = (),
    checkpoint_dir=UNSET,
    checkpoint_every_epochs: int | None = UNSET,
    checkpoint_every_episodes: int | None = UNSET,
    checkpoint_every_steps: int | None = UNSET,
    checkpoint_keep_last: int | None = UNSET,
    resume_from=UNSET,
    keep_model: bool = False,
) -> RLRunResult:
    """Train one DQN configuration and return its summary row.

    ``seed`` drives every stream of randomness (network init, initial
    masks, engine tie-breaking, action exploration, replay sampling,
    environment resets), so runs are exactly reproducible.  ``method`` is
    one of :data:`~repro.experiments.registry.RL_METHODS`; for dynamic
    methods the drop-and-grow schedule runs over the expected number of
    *gradient* steps.  Checkpoint/resume semantics match
    :func:`repro.experiments.runner.run_image_classification` — a resumed
    run's trajectory, final masks, and episode history are bitwise
    identical to an uninterrupted run of the same configuration.

    The uniform workload knobs may also arrive through ``config=`` (see
    :class:`~repro.experiments.workload.WorkloadConfig`); explicit
    keywords win over config fields.  ``ee_epsilon`` and
    ``checkpoint_every_episodes`` are one-release deprecated aliases of
    ``epsilon`` and ``checkpoint_every_epochs`` — the names every other
    workload entrypoint uses (an RL "epoch" is one episode).
    """
    epsilon = warn_deprecated_alias("ee_epsilon", "epsilon", ee_epsilon, epsilon)
    checkpoint_every_epochs = warn_deprecated_alias(
        "checkpoint_every_episodes",
        "checkpoint_every_epochs",
        checkpoint_every_episodes,
        checkpoint_every_epochs,
    )
    method = resolve_knob("method", method, config, None)
    if method is None:
        raise TypeError("run_rl: 'method' is required")
    sparsity = resolve_knob("sparsity", sparsity, config, 0.9)
    total_steps = resolve_knob("total_steps", total_steps, config, 5000)
    seed = resolve_knob("seed", seed, config, 0)
    batch_size = resolve_knob("batch_size", batch_size, config, 64)
    lr = resolve_knob("lr", lr, config, 1e-3)
    delta_t = resolve_knob("delta_t", delta_t, config, 100)
    drop_fraction = resolve_knob("drop_fraction", drop_fraction, config, 0.3)
    c = resolve_knob("c", c, config, 1e-3)
    ee_epsilon = resolve_knob("epsilon", epsilon, config, 1.0)
    distribution = resolve_knob("distribution", distribution, config, "erk")
    sparse_backend = resolve_knob("sparse_backend", sparse_backend, config, None)
    checkpoint_dir = resolve_knob("checkpoint_dir", checkpoint_dir, config, None)
    checkpoint_every_episodes = resolve_knob(
        "checkpoint_every_epochs", checkpoint_every_epochs, config, 1
    )
    checkpoint_every_steps = resolve_knob(
        "checkpoint_every_steps", checkpoint_every_steps, config, None
    )
    checkpoint_keep_last = resolve_knob(
        "checkpoint_keep_last", checkpoint_keep_last, config, None
    )
    resume_from = resolve_knob("resume_from", resume_from, config, None)
    if method not in RL_METHODS:
        raise ValueError(f"method {method!r} is not RL-capable; known: {RL_METHODS}")
    start = time.time()
    env = make_env(env_name, seed=seed + 3)
    hidden = tuple(int(width) for width in hidden)
    online = MLP(env.observation_size, hidden, env.n_actions, seed=seed)
    target = MLP(env.observation_size, hidden, env.n_actions, seed=seed)
    optimizer = Adam(online.parameters(), lr=lr)

    warmup = max(int(warmup_steps), int(batch_size))
    n_updates = max(1, (int(total_steps) - warmup) // max(1, int(train_every)))
    setup = build_method(
        method,
        online,
        optimizer,
        sparsity,
        n_updates,
        distribution=distribution,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        c=c,
        epsilon=ee_epsilon,
        rng=np.random.default_rng(seed),
    )

    agent = DQNAgent(
        online,
        target,
        env.n_actions,
        gamma=gamma,
        huber_delta=huber_delta,
        rng=np.random.default_rng(seed + 1),
    )
    buffer = ReplayBuffer(
        buffer_capacity,
        env.observation_size,
        rng=np.random.default_rng(seed + 2),
    )
    epsilon_schedule = EpsilonSchedule(
        epsilon_start,
        epsilon_end,
        max(1, int(total_steps * epsilon_decay_fraction)),
    )

    all_callbacks: list[Callback] = list(callbacks)
    if checkpoint_dir is not None:
        all_callbacks.append(
            CheckpointCallback(
                checkpoint_dir,
                every_n_epochs=checkpoint_every_episodes,
                every_n_steps=checkpoint_every_steps,
                keep_last=checkpoint_keep_last,
            )
        )

    trainer = RLTrainer(
        agent,
        env,
        buffer,
        optimizer,
        controller=setup.controller,
        callbacks=all_callbacks,
        epsilon_schedule=epsilon_schedule,
        batch_size=batch_size,
        train_every=train_every,
        warmup_steps=warmup,
        target_sync_every=target_sync_every,
        sparse_backend=sparse_backend,
    )
    resume_path = _resolve_resume_path(resume_from)
    if resume_path is not None:
        trainer.load_state_dict(load_training_checkpoint(resume_path))
    history = trainer.fit(total_steps)

    rolling = rolling_returns(history, solve_window)
    # Like solved_at, the best rolling average only considers full windows:
    # a single lucky early episode must not produce a headline stat above
    # the solve threshold on a run that never solved.
    full_windows = rolling[solve_window - 1 :]
    solved_at = trainer.solved_at(solve_window)
    coverage = getattr(setup.controller, "coverage", None)
    return RLRunResult(
        method=method,
        env=env_name,
        sparsity=sparsity,
        seed=seed,
        total_steps=trainer.global_step,
        train_steps=trainer.train_step,
        episodes=len(history),
        final_avg_return=trainer.average_return(solve_window),
        best_avg_return=max(full_windows) if full_windows else None,
        solved=solved_at is not None,
        solved_at_step=solved_at,
        solve_threshold=env.solve_threshold,
        seconds=time.time() - start,
        env_steps_per_sec=trainer.env_steps_per_sec,
        train_steps_per_sec=trainer.train_steps_per_sec,
        exploration_rate=coverage.exploration_rate() if coverage else None,
        actual_sparsity=(setup.masked.global_sparsity() if setup.masked is not None else None),
        history=list(history),
        masks=setup.masked.masks_snapshot() if setup.masked is not None else {},
        model=online if keep_model else None,
        masked=setup.masked if keep_model else None,
    )


def run_rl_multi_seed(
    method: str,
    env_name: str = "cartpole",
    seeds: tuple[int, ...] = (0, 1, 2),
    n_proc: int | None = None,
    **kwargs,
) -> tuple[float, float, list[RLRunResult]]:
    """Run several seeds; return (mean final return, std, all results).

    Seeds are independent runs, so they fan out across ``n_proc`` worker
    processes exactly as :func:`repro.experiments.runner.run_multi_seed`
    does — each seed recomputes exactly what the serial path computes, and
    a failed seed raises as it would serially.
    """
    jobs = [
        (lambda seed=seed: run_rl(method, env_name, seed=seed, **kwargs))
        for seed in seeds
    ]
    results = [
        shard.unwrap() for shard in run_sharded(jobs, n_proc=n_proc, fail_fast=True)
    ]
    scores = np.array(
        [r.final_avg_return if r.final_avg_return is not None else np.nan for r in results]
    )
    return float(np.nanmean(scores)), float(np.nanstd(scores)), results


def run_rl_sweep(
    cells: Sequence[SweepCell],
    n_proc: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    **run_kwargs,
) -> SweepReport:
    """Run a grid of RL sweep cells across ``n_proc`` worker processes.

    Cells come from
    :func:`repro.experiments.registry.enumerate_rl_cells` (``dataset`` is
    the environment name).  Crash isolation, per-cell result records,
    ``manifest.json``, config-fingerprint invalidation, and ``resume=True``
    semantics are identical to :func:`repro.experiments.runner.run_sweep`
    — the two sweeps share the underlying machinery.
    """
    cells = list(cells)
    for cell in cells:
        if cell.method not in RL_METHODS:
            raise ValueError(f"method {cell.method!r} is not RL-capable; known: {RL_METHODS}")
        if cell.dataset not in ENV_REGISTRY:
            raise KeyError(f"no environment named {cell.dataset!r}")

    def run_cell(cell: SweepCell, cell_dir, resume_cell: bool, kwargs: dict):
        return run_rl(
            cell.method,
            cell.dataset,
            sparsity=cell.sparsity,
            seed=cell.seed,
            checkpoint_dir=cell_dir,
            resume_from=cell_dir if resume_cell else None,
            **kwargs,
        )

    return run_cell_grid(
        cells,
        run_cell,
        n_proc=n_proc,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        **run_kwargs,
    )
