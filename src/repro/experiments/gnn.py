"""GNN link-prediction experiments (Tables III and IV).

Three pipelines, matching the paper's §V.B protocol:

* :func:`run_gnn_dense` — dense training, best test accuracy over epochs;
* :func:`run_gnn_dst_ee` — DST-EE applied to the predictor's two FC layers
  with *uniform* sparsity, 50 epochs;
* :func:`run_admm_prune_from_dense` — the prune-from-dense baseline:
  20 pretrain + 20 ADMM (augmented-Lagrangian) + 20 retrain epochs with a
  hard top-k prune in between, per the paper's 60-epoch recipe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.graphs import LinkPredictionData
from repro.metrics.accuracy import binary_accuracy
from repro.models.gnn import GNNLinkModel
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.sparse import (
    ADMMPruner,
    DSTEEGrowth,
    DynamicSparseEngine,
    FixedMaskController,
    MaskedModel,
)

__all__ = [
    "GNNResult",
    "evaluate_link_prediction",
    "train_link_predictor",
    "run_gnn_dense",
    "run_gnn_dst_ee",
    "run_admm_prune_from_dense",
]


@dataclass
class GNNResult:
    """Outcome of one GNN pipeline."""

    method: str
    dataset: str
    sparsity: float | None
    best_accuracy: float
    final_accuracy: float
    epochs: int
    seconds: float
    actual_sparsity: float | None = None


def evaluate_link_prediction(model: GNNLinkModel, data: LinkPredictionData) -> float:
    """Binary accuracy over held-out positive and negative edges."""
    was_training = model.training
    model.eval()
    with no_grad():
        edges = np.vstack([data.test_pos, data.test_neg])
        labels = np.concatenate(
            [np.ones(len(data.test_pos)), np.zeros(len(data.test_neg))]
        ).astype(np.float32)
        logits = model(data.adjacency, Tensor(data.features), edges)
    model.train(was_training)
    return binary_accuracy(logits, labels)


def _edge_batches(data: LinkPredictionData, rng: np.random.Generator, batch_size: int):
    """Shuffled mini-batches of (edges, labels) over train pos+neg edges."""
    edges = np.vstack([data.train_pos, data.train_neg])
    labels = np.concatenate(
        [np.ones(len(data.train_pos)), np.zeros(len(data.train_neg))]
    ).astype(np.float32)
    order = rng.permutation(len(edges))
    for start in range(0, len(edges), batch_size):
        idx = order[start : start + batch_size]
        yield edges[idx], labels[idx]


def train_link_predictor(
    model: GNNLinkModel,
    data: LinkPredictionData,
    epochs: int,
    *,
    lr: float = 5e-3,
    batch_size: int = 512,
    controller=None,
    optimizer=None,
    admm: ADMMPruner | None = None,
    admm_dual_every: int = 2,
    seed: int = 0,
) -> tuple[float, float, object]:
    """Generic GNN training loop; returns (best_acc, final_acc, optimizer)."""
    rng = np.random.default_rng(seed)
    features = Tensor(data.features)
    if optimizer is None:
        optimizer = Adam(model.parameters(), lr=lr)
    best = 0.0
    final = 0.0
    step = 0
    for epoch in range(epochs):
        model.train()
        for edges, labels in _edge_batches(data, rng, batch_size):
            step += 1
            model.zero_grad()
            logits = model(data.adjacency, features, edges)
            loss = binary_cross_entropy_with_logits(logits, labels)
            loss.backward()
            if admm is not None:
                admm.add_penalty_gradients()
            skip = controller.on_backward(step) if controller is not None else False
            if not skip:
                optimizer.step()
                if controller is not None:
                    controller.after_step(step)
        if admm is not None and (epoch + 1) % admm_dual_every == 0:
            admm.dual_update()
        final = evaluate_link_prediction(model, data)
        best = max(best, final)
    return best, final, optimizer


def run_gnn_dense(
    data: LinkPredictionData,
    epochs: int = 50,
    seed: int = 0,
    lr: float = 5e-3,
) -> GNNResult:
    """Dense reference row of Tables III/IV."""
    start = time.time()
    model = GNNLinkModel(data.n_features, seed=seed)
    best, final, _ = train_link_predictor(model, data, epochs, lr=lr, seed=seed)
    return GNNResult(
        method="dense",
        dataset=data.name,
        sparsity=None,
        best_accuracy=best,
        final_accuracy=final,
        epochs=epochs,
        seconds=time.time() - start,
    )


def run_gnn_dst_ee(
    data: LinkPredictionData,
    sparsity: float,
    epochs: int = 50,
    *,
    c: float = 1e-3,
    epsilon: float = 1.0,
    delta_t: int = 5,
    drop_fraction: float = 0.3,
    lr: float = 5e-3,
    seed: int = 0,
) -> GNNResult:
    """DST-EE on the predictor's two FC layers with uniform sparsity."""
    start = time.time()
    model = GNNLinkModel(data.n_features, seed=seed)
    rng = np.random.default_rng(seed)
    masked = MaskedModel(
        model,
        sparsity,
        distribution="uniform",
        rng=rng,
        include_modules=model.sparse_target_modules(),
    )
    optimizer = Adam(model.parameters(), lr=lr)
    n_batches = int(np.ceil((len(data.train_pos) + len(data.train_neg)) / 512))
    total_steps = epochs * max(n_batches, 1)
    engine = DynamicSparseEngine(
        masked,
        DSTEEGrowth(c=c, epsilon=epsilon),
        total_steps=total_steps,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        optimizer=optimizer,
        rng=rng,
    )
    best, final, _ = train_link_predictor(
        model,
        data,
        epochs,
        controller=engine,
        optimizer=optimizer,
        seed=seed,
    )
    return GNNResult(
        method="dst_ee",
        dataset=data.name,
        sparsity=sparsity,
        best_accuracy=best,
        final_accuracy=final,
        epochs=epochs,
        seconds=time.time() - start,
        actual_sparsity=masked.global_sparsity(),
    )


def run_admm_prune_from_dense(
    data: LinkPredictionData,
    sparsity: float,
    *,
    pretrain_epochs: int = 20,
    admm_epochs: int = 20,
    retrain_epochs: int = 20,
    rho: float = 5e-3,
    lr: float = 5e-3,
    seed: int = 0,
) -> GNNResult:
    """Three-phase ADMM prune-from-dense (the paper's 60-epoch baseline)."""
    start = time.time()
    model = GNNLinkModel(data.n_features, seed=seed)
    targets = model.sparse_target_modules()

    # Phase 1: dense pretraining.
    _, _, optimizer = train_link_predictor(
        model, data, pretrain_epochs, lr=lr, seed=seed
    )

    # Phase 2: ADMM (reweighted) training toward the sparse constraint set.
    pruner = ADMMPruner(model, sparsity, rho=rho, include_modules=targets)
    train_link_predictor(
        model,
        data,
        admm_epochs,
        lr=lr,
        optimizer=optimizer,
        admm=pruner,
        seed=seed + 1,
    )

    # Phase 3: hard prune + fixed-mask retraining.
    masks = pruner.hard_prune_masks()
    masked = MaskedModel(
        model,
        sparsity,
        distribution="uniform",
        include_modules=targets,
        masks=masks,
    )
    controller = FixedMaskController(masked)
    best, final, _ = train_link_predictor(
        model,
        data,
        retrain_epochs,
        lr=lr,
        controller=controller,
        seed=seed + 2,
    )
    total_epochs = pretrain_epochs + admm_epochs + retrain_epochs
    return GNNResult(
        method="prune_from_dense_admm",
        dataset=data.name,
        sparsity=sparsity,
        best_accuracy=best,
        final_accuracy=final,
        epochs=total_epochs,
        seconds=time.time() - start,
        actual_sparsity=masked.global_sparsity(),
    )
