"""Char-LM experiment cells: one (method, corpus, sparsity, seed) GPT run.

The language-model counterpart of :mod:`repro.experiments.runner`: wires
the seeded Markov-prose corpus (:mod:`repro.data.text`) to a
:class:`~repro.models.CharGPT` whose every weight matrix — attention/MLP
Linears and both embedding tables — is sparsified by
:func:`repro.experiments.registry.build_method`, trains it with the
resume-exact :class:`~repro.train.Trainer`, and reports validation
perplexity (``exp`` of the mean per-token cross-entropy).

This entrypoint is *born* on the unified :class:`WorkloadConfig`
vocabulary: every method/budget/schedule/checkpoint/backend knob is named
identically to the image/RL/GAN runners and resolvable from ``config=``.

Fault tolerance mirrors the other workloads: ``checkpoint_dir`` writes
resume-exact training checkpoints during the run, ``resume_from``
continues a killed run bitwise-identically (including mid-epoch), and
:func:`run_lm_sweep` reuses :func:`~repro.experiments.runner.run_cell_grid`
verbatim for crash isolation, per-cell records, and ``resume=True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.loader import DataLoader
from repro.data.text import LMData, make_char_lm_data
from repro.experiments.registry import LM_METHODS, SweepCell, build_method
from repro.experiments.runner import (
    SweepReport,
    _resolve_resume_path,
    run_cell_grid,
)
from repro.experiments.workload import UNSET, WorkloadConfig, resolve_knob
from repro.models.char_gpt import CharGPT
from repro.nn.losses import lm_cross_entropy
from repro.nn.module import Module
from repro.optim import Adam
from repro.parallel import run_sharded
from repro.train import Trainer
from repro.train.callbacks import Callback
from repro.train.checkpoint import CheckpointCallback, load_training_checkpoint

__all__ = [
    "LMRunResult",
    "evaluate_lm",
    "run_lm",
    "run_lm_multi_seed",
    "run_lm_sweep",
]

CORPORA = ("markov-prose",)


@dataclass
class LMRunResult:
    """Outcome of one char-LM training run."""

    method: str
    corpus: str
    sparsity: float
    seed: int
    epochs: int
    total_steps: int
    train_loss: float
    val_loss: float
    val_perplexity: float
    val_next_token_accuracy: float
    n_params: int
    seconds: float
    steps_per_sec: float
    exploration_rate: float | None
    actual_sparsity: float | None
    history: object = field(repr=False, default=None)
    masks: dict = field(repr=False, default_factory=dict)
    final_layer_densities: dict = field(repr=False, default_factory=dict)
    # Populated only with ``keep_model=True`` (serial runs): the trained
    # model and its MaskedModel wrapper, for compile-and-export pipelines
    # (see repro.serve).  Sweep workers never ship these over pipes.
    model: object = field(repr=False, default=None, compare=False)
    masked: object = field(repr=False, default=None, compare=False)

    @property
    def final_accuracy(self) -> float:
        """Sweep-aggregation score (``SweepReport`` reads this name).

        For LM cells the aggregated "accuracy" is next-token top-1
        accuracy on the validation split — perplexity rides alongside in
        the full result row.
        """
        return self.val_next_token_accuracy


def evaluate_lm(model: Module, loader: DataLoader) -> tuple[float, float]:
    """(mean per-token cross-entropy, next-token accuracy) over a loader.

    Runs in eval mode without graph recording.  The loss is averaged over
    *tokens* (every window position), so ``exp(loss)`` is the validation
    perplexity the benches gate on.
    """
    was_training = model.training
    model.eval()
    total_loss = 0.0
    correct = 0
    total = 0
    with no_grad():
        for inputs, targets in loader:
            logits = model(inputs)
            n_tokens = int(np.asarray(targets).size)
            loss = lm_cross_entropy(logits, targets)
            total_loss += float(loss.data) * n_tokens
            flat_targets = np.asarray(targets).reshape(-1)
            correct += int((logits.data.argmax(axis=1) == flat_targets).sum())
            total += n_tokens
    model.train(was_training)
    total = max(total, 1)
    return total_loss / total, correct / total


def run_lm(
    method=UNSET,
    corpus: str = "markov-prose",
    *,
    config: WorkloadConfig | None = None,
    data: LMData | None = None,
    n_chars: int = 65536,
    val_fraction: float = 0.1,
    block_len: int = 32,
    n_layer: int = 2,
    n_head: int = 2,
    n_embd: int = 64,
    sparsity=UNSET,
    epochs=UNSET,
    batch_size=UNSET,
    lr=UNSET,
    delta_t=UNSET,
    drop_fraction=UNSET,
    c=UNSET,
    epsilon=UNSET,
    distribution=UNSET,
    block_size=UNSET,
    sparse_backend=UNSET,
    seed=UNSET,
    n_workers=UNSET,
    callbacks: Sequence[Callback] = (),
    checkpoint_dir=UNSET,
    checkpoint_every_epochs=UNSET,
    checkpoint_every_steps=UNSET,
    checkpoint_keep_last=UNSET,
    resume_from=UNSET,
    keep_model: bool = False,
) -> LMRunResult:
    """Train one sparse char-GPT configuration and return its summary row.

    ``seed`` drives every stream of randomness (model init, corpus
    generation, data order, initial masks, engine tie-breaking), so runs
    are exactly reproducible.  ``method`` is one of
    :data:`~repro.experiments.registry.LM_METHODS`.  Knobs resolve with
    precedence *explicit kwarg > ``config`` field > default* (see
    :mod:`repro.experiments.workload`).  Checkpoint/resume semantics
    match the supervised runner — a resumed run's trajectory, final
    masks, and validation numbers are bitwise identical to an
    uninterrupted run, including kills inside an epoch and at ΔT
    mask-update boundaries (serial and ``n_workers>=2``).
    """
    method = resolve_knob("method", method, config, None)
    if method not in LM_METHODS:
        raise ValueError(f"method {method!r} is not LM-capable; known: {LM_METHODS}")
    if corpus not in CORPORA:
        raise ValueError(f"unknown corpus {corpus!r}; registered: {CORPORA}")
    sparsity = resolve_knob("sparsity", sparsity, config, 0.9)
    epochs = resolve_knob("epochs", epochs, config, 3)
    batch_size = resolve_knob("batch_size", batch_size, config, 32)
    lr = resolve_knob("lr", lr, config, 1e-3)
    delta_t = resolve_knob("delta_t", delta_t, config, 100)
    drop_fraction = resolve_knob("drop_fraction", drop_fraction, config, 0.3)
    c = resolve_knob("c", c, config, 1e-3)
    epsilon = resolve_knob("epsilon", epsilon, config, 1.0)
    distribution = resolve_knob("distribution", distribution, config, "erk")
    block_size = resolve_knob("block_size", block_size, config, None)
    sparse_backend = resolve_knob("sparse_backend", sparse_backend, config, None)
    seed = resolve_knob("seed", seed, config, 0)
    n_workers = resolve_knob("n_workers", n_workers, config, 0)
    checkpoint_dir = resolve_knob("checkpoint_dir", checkpoint_dir, config, None)
    checkpoint_every_epochs = resolve_knob(
        "checkpoint_every_epochs", checkpoint_every_epochs, config, 1
    )
    checkpoint_every_steps = resolve_knob(
        "checkpoint_every_steps", checkpoint_every_steps, config, None
    )
    checkpoint_keep_last = resolve_knob(
        "checkpoint_keep_last", checkpoint_keep_last, config, None
    )
    resume_from = resolve_knob("resume_from", resume_from, config, None)

    start = time.time()
    if data is None:
        data = make_char_lm_data(
            n_chars=n_chars,
            block_len=block_len,
            val_fraction=val_fraction,
            seed=seed,
        )
    model = CharGPT(
        vocab_size=data.vocab_size,
        block_len=data.block_len,
        n_layer=n_layer,
        n_head=n_head,
        n_embd=n_embd,
        head="train",
        seed=seed,
    )
    train_loader = DataLoader(
        data.train,
        batch_size=batch_size,
        shuffle=True,
        rng=np.random.default_rng(seed + 1),
    )
    val_loader = DataLoader(data.val, batch_size=max(batch_size, 64))
    total_steps = epochs * len(train_loader)

    optimizer = Adam(model.parameters(), lr=lr)
    setup = build_method(
        method,
        model,
        optimizer,
        sparsity,
        total_steps,
        distribution=distribution,
        delta_t=delta_t,
        drop_fraction=drop_fraction,
        c=c,
        epsilon=epsilon,
        rng=np.random.default_rng(seed),
        block_size=block_size,
    )

    all_callbacks: list[Callback] = list(callbacks)
    if checkpoint_dir is not None:
        all_callbacks.append(
            CheckpointCallback(
                checkpoint_dir,
                every_n_epochs=checkpoint_every_epochs,
                every_n_steps=checkpoint_every_steps,
                keep_last=checkpoint_keep_last,
            )
        )

    # The classifier-shaped evaluator cannot consume (B*T, V) logits
    # against (B, T) targets, so the Trainer runs without a test loader
    # and validation happens once below via evaluate_lm.
    trainer = Trainer(
        model,
        optimizer,
        lm_cross_entropy,
        train_loader,
        None,
        controller=setup.controller,
        callbacks=all_callbacks,
        sparse_backend=sparse_backend,
        n_workers=n_workers,
    )
    resume_path = _resolve_resume_path(resume_from)
    if resume_path is not None:
        trainer.load_state_dict(load_training_checkpoint(resume_path))
    history = trainer.fit(epochs)

    val_loss, val_accuracy = evaluate_lm(model, val_loader)
    seconds = time.time() - start
    records = history.epochs
    steps_rates = [r.steps_per_sec for r in records if r.steps_per_sec is not None]
    coverage = getattr(setup.controller, "coverage", None)
    return LMRunResult(
        method=method,
        corpus=corpus,
        sparsity=sparsity,
        seed=seed,
        epochs=len(records),
        total_steps=total_steps,
        train_loss=records[-1].train_loss if records else float("nan"),
        val_loss=val_loss,
        val_perplexity=float(np.exp(val_loss)),
        val_next_token_accuracy=val_accuracy,
        n_params=sum(p.size for p in model.parameters()),
        seconds=seconds,
        steps_per_sec=float(np.mean(steps_rates)) if steps_rates else 0.0,
        exploration_rate=coverage.exploration_rate() if coverage else None,
        actual_sparsity=(
            setup.masked.global_sparsity() if setup.masked is not None else None
        ),
        history=history,
        masks=setup.masked.masks_snapshot() if setup.masked is not None else {},
        final_layer_densities=(
            setup.masked.layer_allocations() if setup.masked is not None else {}
        ),
        model=model if keep_model else None,
        masked=setup.masked if keep_model else None,
    )


def run_lm_multi_seed(
    method: str,
    corpus: str = "markov-prose",
    seeds: tuple[int, ...] = (0, 1, 2),
    n_proc: int | None = None,
    **kwargs,
) -> tuple[float, float, list[LMRunResult]]:
    """Run several seeds; return (mean val perplexity, std, all results).

    Seeds fan out across ``n_proc`` worker processes exactly as the
    supervised and RL multi-seed runners do — each seed recomputes
    exactly what the serial path computes, and a failed seed raises as it
    would serially.
    """
    jobs = [
        (lambda seed=seed: run_lm(method, corpus, seed=seed, **kwargs))
        for seed in seeds
    ]
    results = [
        shard.unwrap() for shard in run_sharded(jobs, n_proc=n_proc, fail_fast=True)
    ]
    scores = np.array([r.val_perplexity for r in results])
    return float(np.mean(scores)), float(np.std(scores)), results


def run_lm_sweep(
    cells: Sequence[SweepCell],
    n_proc: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    **run_kwargs,
) -> SweepReport:
    """Run a grid of LM sweep cells across ``n_proc`` worker processes.

    Cells come from
    :func:`repro.experiments.registry.enumerate_lm_cells` (``dataset`` is
    the corpus name).  Crash isolation, per-cell result records,
    ``manifest.json``, config-fingerprint invalidation, and ``resume=True``
    semantics are identical to the supervised, RL, and GAN sweeps — all
    four share :func:`repro.experiments.runner.run_cell_grid` verbatim.
    """
    cells = list(cells)
    for cell in cells:
        if cell.method not in LM_METHODS:
            raise ValueError(
                f"method {cell.method!r} is not LM-capable; known: {LM_METHODS}"
            )
        if cell.dataset not in CORPORA:
            raise KeyError(f"no corpus named {cell.dataset!r}")

    def run_cell(cell: SweepCell, cell_dir, resume_cell: bool, kwargs: dict):
        return run_lm(
            cell.method,
            cell.dataset,
            sparsity=cell.sparsity,
            seed=cell.seed,
            checkpoint_dir=cell_dir,
            resume_from=cell_dir if resume_cell else None,
            **kwargs,
        )

    return run_cell_grid(
        cells,
        run_cell,
        n_proc=n_proc,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        **run_kwargs,
    )
