"""Benchmark-scale experiment configurations.

The paper's experiments (VGG-19/ResNet-50 on CIFAR & ImageNet, 100–250
epochs on 8 GPUs) are reproduced at laptop scale on the synthetic datasets
(DESIGN.md §2).  The scale is selectable with the ``REPRO_SCALE``
environment variable:

* ``small`` (default) — minutes on a CPU; 1 seed; reduced method grid is
  *not* applied: every method and sparsity of each table still runs.
* ``medium`` — larger data/models, 2 seeds.
* ``full``  — the largest practical CPU setting, 3 seeds (paper protocol).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.data.synthetic import cifar10_like, cifar100_like, imagenet_like
from repro.models import resnet50_mini, resnet50, vgg19

__all__ = [
    "Scale",
    "get_scale",
    "TABLE1_METHODS",
    "TABLE2_METHODS",
    "table1_settings",
    "table2_settings",
    "gnn_settings",
    "fig3_settings",
    "gan_settings",
]

# Method rows of Table I, in the paper's order (SIS's subdifferential solver
# is out of scope; the STR proximal family represents dense-to-sparse — see
# DESIGN.md).  "dense" is the reference row.
TABLE1_METHODS = (
    "dense",
    "snip",
    "grasp",
    "synflow",
    "str",
    "deepr",
    "set",
    "rigl",
    "dst_ee",
)

# Method rows of Table II.
TABLE2_METHODS = (
    "dense",
    "snip",
    "grasp",
    "deepr",
    "snfs",
    "dsr",
    "set",
    "rigl",
    "mest",
    "rigl_itop",
    "dst_ee",
)


@dataclass
class Scale:
    """Size knobs shared by all benches."""

    name: str
    n_train: int
    n_test: int
    image_size: int
    epochs: int
    extended_epochs: int  # the paper's 250-epoch DST-EE rows
    batch_size: int
    delta_t: int
    drop_fraction: float
    seeds: tuple[int, ...]
    vgg_width: float
    resnet_width: float
    lr: float = 0.08
    cifar100_classes: int = 20
    imagenet_classes: int = 20
    imagenet_size: int = 12
    gnn_nodes: int = 400


_SCALES = {
    "small": Scale(
        name="small",
        n_train=1024,
        n_test=512,
        image_size=12,
        epochs=4,
        extended_epochs=6,
        batch_size=64,
        delta_t=6,
        drop_fraction=0.3,
        seeds=(0,),
        vgg_width=0.2,
        resnet_width=0.125,
        lr=0.05,
    ),
    "medium": Scale(
        name="medium",
        n_train=2048,
        n_test=768,
        image_size=12,
        epochs=6,
        extended_epochs=9,
        batch_size=64,
        delta_t=10,
        drop_fraction=0.3,
        seeds=(0, 1),
        vgg_width=0.25,
        resnet_width=0.2,
        lr=0.05,
        cifar100_classes=40,
        imagenet_classes=40,
    ),
    "full": Scale(
        name="full",
        n_train=4096,
        n_test=1024,
        image_size=16,
        epochs=12,
        extended_epochs=18,
        batch_size=128,
        delta_t=16,
        drop_fraction=0.3,
        seeds=(0, 1, 2),
        vgg_width=0.25,
        resnet_width=0.25,
        cifar100_classes=100,
        imagenet_classes=50,
        imagenet_size=16,
        gnn_nodes=800,
    ),
}


def get_scale() -> Scale:
    """Read the scale from ``REPRO_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_SCALE", "small").lower()
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"REPRO_SCALE={name!r} unknown; choose from {sorted(_SCALES)}") from None


@dataclass
class TableSettings:
    """Everything a table bench needs: data, model factories, run kwargs."""

    scale: Scale
    datasets: dict = field(default_factory=dict)
    model_factories: dict = field(default_factory=dict)
    sparsities: tuple[float, ...] = ()
    methods: tuple[str, ...] = ()

    def run_kwargs(self) -> dict:
        return dict(
            epochs=self.scale.epochs,
            batch_size=self.scale.batch_size,
            lr=self.scale.lr,
            delta_t=self.scale.delta_t,
            drop_fraction=self.scale.drop_fraction,
        )


def table1_settings() -> TableSettings:
    """VGG-19 & ResNet-50(family) on CIFAR-10/100-like at 90/95/98%."""
    scale = get_scale()
    datasets = {
        "cifar10": cifar10_like(
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size,
            seed=7,
        ),
        "cifar100": cifar100_like(
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size,
            n_classes=scale.cifar100_classes,
            seed=17,
        ),
    }

    def vgg_factory(num_classes: int) -> Callable:
        return lambda seed: vgg19(
            num_classes=num_classes,
            width_mult=scale.vgg_width,
            input_size=scale.image_size,
            seed=seed,
        )

    def resnet_factory(num_classes: int) -> Callable:
        return lambda seed: resnet50_mini(
            num_classes=num_classes,
            width_mult=scale.resnet_width,
            seed=seed,
        )

    model_factories = {
        "vgg19": vgg_factory,
        "resnet50": resnet_factory,
    }
    return TableSettings(
        scale=scale,
        datasets=datasets,
        model_factories=model_factories,
        sparsities=(0.9, 0.95, 0.98),
        methods=TABLE1_METHODS,
    )


def table2_settings() -> TableSettings:
    """ResNet-50(family) on ImageNet-like at 80/90% with FLOPs columns."""
    scale = get_scale()
    datasets = {
        "imagenet": imagenet_like(
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.imagenet_size,
            n_classes=scale.imagenet_classes,
            seed=27,
        ),
    }

    def resnet_factory(num_classes: int) -> Callable:
        return lambda seed: resnet50_mini(
            num_classes=num_classes,
            width_mult=scale.resnet_width,
            seed=seed,
        )

    return TableSettings(
        scale=scale,
        datasets=datasets,
        model_factories={"resnet50": resnet_factory},
        sparsities=(0.8, 0.9),
        methods=TABLE2_METHODS,
    )


@dataclass
class GNNSettings:
    """Tables III/IV knobs."""

    scale: Scale
    sparsities: tuple[float, ...] = (0.8, 0.9, 0.98)
    dst_ee_epochs: int = 12
    admm_phase_epochs: tuple[int, int, int] = (5, 5, 5)
    dense_epochs: int = 12

    def scaled(self) -> "GNNSettings":
        if self.scale.name == "full":
            self.dst_ee_epochs = 50
            self.admm_phase_epochs = (20, 20, 20)
            self.dense_epochs = 50
        elif self.scale.name == "medium":
            self.dst_ee_epochs = 25
            self.admm_phase_epochs = (10, 10, 10)
            self.dense_epochs = 25
        return self


def gnn_settings() -> GNNSettings:
    """Epoch budgets follow the paper's 50-vs-60 protocol, scaled."""
    return GNNSettings(scale=get_scale()).scaled()


@dataclass
class GANSettings:
    """Sparse-GAN stressor knobs (see :mod:`repro.experiments.gan`)."""

    scale: Scale
    mixtures: tuple[str, ...] = ("ring8",)
    sparsities: tuple[float, ...] = (0.8, 0.9)
    total_steps: int = 1500
    hidden: tuple[int, ...] = (64, 64)
    batch_size: int = 64
    delta_t: int = 75
    balance_max_shift: float = 0.05

    def scaled(self) -> "GANSettings":
        if self.scale.name == "full":
            self.mixtures = ("ring8", "grid9")
            self.total_steps = 6000
            self.hidden = (128, 128)
            self.delta_t = 150
        elif self.scale.name == "medium":
            self.mixtures = ("ring8", "grid9")
            self.total_steps = 3000
            self.delta_t = 100
        return self

    def run_kwargs(self) -> dict:
        return dict(
            total_steps=self.total_steps,
            hidden=self.hidden,
            batch_size=self.batch_size,
            delta_t=self.delta_t,
            balance_max_shift=self.balance_max_shift,
        )


def gan_settings() -> GANSettings:
    """Mixture/step budgets for the GAN sweep, scaled like the tables."""
    return GANSettings(scale=get_scale()).scaled()


@dataclass
class Fig3Settings:
    """Coefficient sweep of Figure 3."""

    scale: Scale
    sparsity: float = 0.95
    cifar100_coefficients: tuple[float, ...] = (1e-4, 1e-3, 5e-3)
    cifar10_coefficients: tuple[float, ...] = (5e-4, 1e-3, 5e-3)


def fig3_settings() -> Fig3Settings:
    return Fig3Settings(scale=get_scale())
