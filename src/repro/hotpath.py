"""Hot-path marker for allocation-discipline checking.

``@hot_path`` is a zero-cost annotation (it returns the function
unchanged) that declares "this function runs once per training step and
must not allocate".  The reprolint RPL005 rule treats marked functions —
and any closure nested inside them — as hot and flags numpy allocation
calls (``np.zeros``, ``np.empty``, ``np.ascontiguousarray``, ...) so the
allocation-free claims the kernels' docstrings make are machine-checked
instead of aspirational.

Deliberate allocations inside a marked function (aliasing hazards, cold
shape-change branches) carry an inline ``# reprolint: disable=RPL005``
with the reason.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path"]

F = TypeVar("F", bound=Callable)


def hot_path(fn: F) -> F:
    """Mark ``fn`` as a per-step hot path (no-op at runtime)."""
    fn.__repro_hot_path__ = True
    return fn
