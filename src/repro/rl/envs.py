"""Dependency-free classic-control environments (NumPy only).

Two standard benchmarks for value-based RL, implemented from their textbook
dynamics so the repository needs no gym/gymnasium dependency:

* :class:`CartPoleEnv` — the Barto-Sutton-Anderson cart-pole balancing task
  (Euler integration at 50 Hz, +1 reward per step, 200-step cap);
* :class:`AcrobotEnv` — Sutton's two-link underactuated swing-up (RK4
  integration, -1 reward per step until the tip clears one link height).

Both follow the repository's RNG conventions: all randomness flows through
one ``np.random.Generator`` owned by the environment, and the complete
evolving state (physics, step counter, generator bit state) round-trips
through ``state_dict``/``load_state_dict`` so an RL training run can be
checkpointed and resumed bitwise-exactly mid-episode (see
:mod:`repro.rl.trainer`).

The API is intentionally tiny::

    env = make_env("cartpole", seed=0)
    obs = env.reset()
    obs, reward, done = env.step(action)

``solve_threshold`` is the average episode return over
``SOLVE_WINDOW``-episode windows at which the task counts as solved —
the number the RL benches and the acceptance gate consult.
"""

from __future__ import annotations

import copy

import numpy as np
from repro.rng import resolve_rng

__all__ = [
    "SOLVE_WINDOW",
    "AcrobotEnv",
    "CartPoleEnv",
    "ENV_REGISTRY",
    "Env",
    "make_env",
]

# Episodes averaged when deciding whether an environment is solved.
SOLVE_WINDOW = 20


class Env:
    """Base class: seeded episodic environment with checkpointable state.

    Subclasses set the class attributes below and implement
    :meth:`_reset_state`, :meth:`_step_physics`, and :meth:`_observe`.
    """

    observation_size: int
    n_actions: int
    max_episode_steps: int
    solve_threshold: float

    def __init__(self, rng: np.random.Generator | None = None):
        self.rng = resolve_rng(rng)
        self.state = np.zeros(0, dtype=np.float64)
        self.steps = 0
        self.needs_reset = True

    # ------------------------------------------------------------------
    # episode protocol
    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""
        self.state = self._reset_state()
        self.steps = 0
        self.needs_reset = False
        return self._observe()

    def step(self, action: int) -> tuple[np.ndarray, float, bool, bool]:
        """Advance one step; returns ``(observation, reward, terminated, truncated)``.

        ``terminated`` marks a true environment terminal (pole fell, tip
        reached the target); ``truncated`` marks the ``max_episode_steps``
        cutoff.  The distinction matters for value bootstrapping: a
        truncated episode is *not* a zero-value terminal, and treating it
        as one visibly caps DQN returns near the time limit.
        """
        if self.needs_reset:
            raise RuntimeError("episode is over; call reset() first")
        action = int(action)
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action must be in [0, {self.n_actions}), got {action}")
        reward, terminated = self._step_physics(action)
        self.steps += 1
        truncated = not terminated and self.steps >= self.max_episode_steps
        self.needs_reset = terminated or truncated
        return self._observe(), float(reward), terminated, truncated

    # ------------------------------------------------------------------
    # checkpointing (resume-exact: physics + step counter + RNG stream)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "type": type(self).__name__,
            "state": self.state.copy(),
            "steps": self.steps,
            "needs_reset": self.needs_reset,
            "rng": copy.deepcopy(self.rng.bit_generator.state),
        }

    def load_state_dict(self, state: dict) -> None:
        saved_type = state.get("type", type(self).__name__)
        if saved_type != type(self).__name__:
            raise ValueError(
                f"checkpoint environment is {saved_type!r}, this environment "
                f"is {type(self).__name__!r}"
            )
        self.state = np.asarray(state["state"], dtype=np.float64).copy()
        self.steps = int(state["steps"])
        self.needs_reset = bool(state["needs_reset"])
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])

    # ------------------------------------------------------------------
    # physics hooks
    # ------------------------------------------------------------------
    def _reset_state(self) -> np.ndarray:
        raise NotImplementedError

    def _step_physics(self, action: int) -> tuple[float, bool]:
        raise NotImplementedError

    def _observe(self) -> np.ndarray:
        raise NotImplementedError


class CartPoleEnv(Env):
    """Cart-pole balancing (Barto, Sutton & Anderson 1983; CartPole-v0 setup).

    State ``(x, x_dot, theta, theta_dot)``; two actions push the cart left
    or right with a fixed force; +1 reward per step; the episode ends when
    the pole tilts past 12 degrees, the cart leaves the track, or 200 steps
    elapse.  ``solve_threshold`` follows the classic CartPole-v0 definition:
    average return of at least 195 over recent episodes.
    """

    observation_size = 4
    n_actions = 2
    max_episode_steps = 200
    solve_threshold = 195.0

    GRAVITY = 9.8
    CART_MASS = 1.0
    POLE_MASS = 0.1
    POLE_HALF_LENGTH = 0.5
    FORCE_MAG = 10.0
    TAU = 0.02  # integration step (50 Hz)
    THETA_LIMIT = 12.0 * np.pi / 180.0
    X_LIMIT = 2.4

    def _reset_state(self) -> np.ndarray:
        return self.rng.uniform(-0.05, 0.05, size=4)

    def _step_physics(self, action: int) -> tuple[float, bool]:
        x, x_dot, theta, theta_dot = self.state
        force = self.FORCE_MAG if action == 1 else -self.FORCE_MAG
        total_mass = self.CART_MASS + self.POLE_MASS
        pole_mass_length = self.POLE_MASS * self.POLE_HALF_LENGTH

        cos_t = np.cos(theta)
        sin_t = np.sin(theta)
        temp = (force + pole_mass_length * theta_dot**2 * sin_t) / total_mass
        theta_acc = (self.GRAVITY * sin_t - cos_t * temp) / (
            self.POLE_HALF_LENGTH * (4.0 / 3.0 - self.POLE_MASS * cos_t**2 / total_mass)
        )
        x_acc = temp - pole_mass_length * theta_acc * cos_t / total_mass

        x = x + self.TAU * x_dot
        x_dot = x_dot + self.TAU * x_acc
        theta = theta + self.TAU * theta_dot
        theta_dot = theta_dot + self.TAU * theta_acc
        self.state = np.array([x, x_dot, theta, theta_dot], dtype=np.float64)

        terminated = bool(abs(x) > self.X_LIMIT or abs(theta) > self.THETA_LIMIT)
        return 1.0, terminated

    def _observe(self) -> np.ndarray:
        return self.state.astype(np.float32)


class AcrobotEnv(Env):
    """Two-link acrobot swing-up (Sutton 1996 dynamics, RK4 integration).

    State ``(theta1, theta2, theta1_dot, theta2_dot)``; three actions apply
    torque {-1, 0, +1} at the elbow; -1 reward per step until the tip rises
    one link length above the pivot (or 500 steps elapse).  Observations
    are the standard six features ``(cos t1, sin t1, cos t2, sin t2, t1_dot,
    t2_dot)``.
    """

    observation_size = 6
    n_actions = 3
    max_episode_steps = 500
    solve_threshold = -100.0

    DT = 0.2
    LINK_LENGTH = 1.0
    LINK_MASS = 1.0
    LINK_COM = 0.5
    LINK_INERTIA = 1.0
    GRAVITY = 9.8
    MAX_VEL_1 = 4.0 * np.pi
    MAX_VEL_2 = 9.0 * np.pi
    TORQUES = (-1.0, 0.0, 1.0)

    def _reset_state(self) -> np.ndarray:
        return self.rng.uniform(-0.1, 0.1, size=4)

    def _dynamics(self, s: np.ndarray, torque: float) -> np.ndarray:
        m = self.LINK_MASS
        length = self.LINK_LENGTH
        lc = self.LINK_COM
        inertia = self.LINK_INERTIA
        g = self.GRAVITY
        theta1, theta2, dtheta1, dtheta2 = s

        d1 = (
            m * lc**2
            + m * (length**2 + lc**2 + 2 * length * lc * np.cos(theta2))
            + 2 * inertia
        )
        d2 = m * (lc**2 + length * lc * np.cos(theta2)) + inertia
        phi2 = m * lc * g * np.cos(theta1 + theta2 - np.pi / 2.0)
        phi1 = (
            -m * length * lc * dtheta2**2 * np.sin(theta2)
            - 2 * m * length * lc * dtheta2 * dtheta1 * np.sin(theta2)
            + (m * lc + m * length) * g * np.cos(theta1 - np.pi / 2.0)
            + phi2
        )
        ddtheta2 = (
            torque
            + d2 / d1 * phi1
            - m * length * lc * dtheta1**2 * np.sin(theta2)
            - phi2
        ) / (m * lc**2 + inertia - d2**2 / d1)
        ddtheta1 = -(d2 * ddtheta2 + phi1) / d1
        return np.array([dtheta1, dtheta2, ddtheta1, ddtheta2], dtype=np.float64)

    def _step_physics(self, action: int) -> tuple[float, bool]:
        torque = self.TORQUES[action]
        s = self.state
        # One RK4 step over the control interval.
        k1 = self._dynamics(s, torque)
        k2 = self._dynamics(s + 0.5 * self.DT * k1, torque)
        k3 = self._dynamics(s + 0.5 * self.DT * k2, torque)
        k4 = self._dynamics(s + self.DT * k3, torque)
        s = s + self.DT / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)

        # Wrap angles to [-pi, pi) and clamp velocities (Sutton's bounds).
        s[0] = ((s[0] + np.pi) % (2 * np.pi)) - np.pi
        s[1] = ((s[1] + np.pi) % (2 * np.pi)) - np.pi
        s[2] = np.clip(s[2], -self.MAX_VEL_1, self.MAX_VEL_1)
        s[3] = np.clip(s[3], -self.MAX_VEL_2, self.MAX_VEL_2)
        self.state = s

        terminated = bool(-np.cos(s[0]) - np.cos(s[1] + s[0]) > 1.0)
        return -1.0, terminated

    def _observe(self) -> np.ndarray:
        theta1, theta2, dtheta1, dtheta2 = self.state
        return np.array(
            [
                np.cos(theta1),
                np.sin(theta1),
                np.cos(theta2),
                np.sin(theta2),
                dtheta1,
                dtheta2,
            ],
            dtype=np.float32,
        )


ENV_REGISTRY: dict[str, type[Env]] = {
    "cartpole": CartPoleEnv,
    "acrobot": AcrobotEnv,
}


def make_env(name: str, seed: int | None = None) -> Env:
    """Instantiate a registered environment with its own seeded generator."""
    try:
        env_cls = ENV_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ENV_REGISTRY))
        raise KeyError(f"unknown environment {name!r}; registered: {known}") from None
    return env_cls(rng=np.random.default_rng(seed))
