"""DQN agent: online + target Q-networks, epsilon-greedy policy, Huber TD loss.

The agent is deliberately thin: it owns the two Q-networks and one action
``Generator`` and exposes exactly the three operations the
:class:`~repro.rl.trainer.RLTrainer` loop needs — act, compute the TD loss
on a replay batch, and sync the target network.  Sparsity is orthogonal:
the online network's weights are masked in place by a
:class:`~repro.sparse.masked.MaskedModel` / controller pair exactly as in
supervised training, and :meth:`sync_target` copies the masked weights
verbatim (zeros included), so the target network always evaluates the same
sparse topology the online network trains.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, no_grad
from repro.nn.losses import huber_loss
from repro.nn.module import Module
from repro.rng import resolve_rng

__all__ = ["DQNAgent", "EpsilonSchedule"]


class EpsilonSchedule:
    """Linear epsilon decay: ``start`` → ``end`` over ``decay_steps`` steps.

    A pure function of the global environment step, so it needs no
    checkpoint state.
    """

    def __init__(self, start: float = 1.0, end: float = 0.05, decay_steps: int = 10_000):
        if decay_steps < 1:
            raise ValueError(f"decay_steps must be >= 1, got {decay_steps}")
        self.start = float(start)
        self.end = float(end)
        self.decay_steps = int(decay_steps)

    def __call__(self, step: int) -> float:
        fraction = min(max(step, 0) / self.decay_steps, 1.0)
        return self.start + (self.end - self.start) * fraction


class DQNAgent:
    """Q-learning agent with a frozen bootstrap (target) network.

    Parameters
    ----------
    online, target:
        Two identically shaped Q-networks mapping a batch of observations
        to per-action values.  ``target`` is synchronized from ``online``
        at construction and then only via :meth:`sync_target`.
    n_actions:
        Size of the discrete action space.
    gamma:
        Discount factor for the bootstrapped TD target.
    huber_delta:
        Transition point of the Huber TD loss.
    rng:
        Generator for epsilon-greedy exploration draws.
    """

    def __init__(
        self,
        online: Module,
        target: Module,
        n_actions: int,
        gamma: float = 0.99,
        huber_delta: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        self.online = online
        self.target = target
        self.n_actions = int(n_actions)
        self.gamma = float(gamma)
        self.huber_delta = float(huber_delta)
        self.rng = resolve_rng(rng)
        self.sync_target()
        self.target.eval()

    # ------------------------------------------------------------------
    # acting
    # ------------------------------------------------------------------
    def greedy_action(self, observation: np.ndarray) -> int:
        """Argmax action of the online network for one observation."""
        with no_grad():
            q = self.online(Tensor(np.asarray(observation, np.float32)[None, :]))
        return int(np.argmax(q.data[0]))

    def act(self, observation: np.ndarray, epsilon: float) -> int:
        """Epsilon-greedy action.

        Exactly one uniform draw per call, plus one integer draw on the
        exploration branch — the fixed draw pattern is what keeps resumed
        runs on the same action stream.
        """
        if self.rng.random() < epsilon:
            return int(self.rng.integers(self.n_actions))
        return self.greedy_action(observation)

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def td_loss(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_observations: np.ndarray,
        dones: np.ndarray,
    ):
        """Huber loss between Q(s, a) and the frozen bootstrapped target.

        Targets ``r + gamma * (1 - done) * max_a' Q_target(s', a')`` are
        computed without autograd — only the online network's gathered
        Q-values carry gradient.
        """
        with no_grad():
            next_q = self.target(Tensor(next_observations)).data
        targets = rewards + self.gamma * (1.0 - dones) * next_q.max(axis=1)
        q_values = self.online(Tensor(observations))
        batch_index = np.arange(len(actions))
        predicted = ops.getitem(q_values, (batch_index, np.asarray(actions)))
        return huber_loss(predicted, targets.astype(np.float32), delta=self.huber_delta)

    def sync_target(self) -> None:
        """Copy the online network's parameters into the target network."""
        self.target.load_state_dict(self.online.state_dict())

    # ------------------------------------------------------------------
    # checkpointing (network/optimizer state is owned by the trainer)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"rng": copy.deepcopy(self.rng.bit_generator.state)}

    def load_state_dict(self, state: dict) -> None:
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])
