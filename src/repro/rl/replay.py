"""Ring-buffer experience replay with deterministic sampling.

Storage is preallocated once (no per-transition allocation on the hot
path), writes wrap around FIFO, and sampling draws indices from a private
``np.random.Generator`` — so given the same seed and the same push/sample
sequence, a :class:`ReplayBuffer` produces bitwise-identical batches.  The
complete evolving state (contents, write position, generator bit state)
round-trips through ``state_dict``/``load_state_dict``, which is what makes
killed-and-resumed DQN runs continue exactly (see :mod:`repro.rl.trainer`).
"""

from __future__ import annotations

import copy

import numpy as np
from repro.rng import resolve_rng

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity FIFO transition store for off-policy RL.

    Parameters
    ----------
    capacity:
        Maximum number of stored transitions; older entries are overwritten.
    observation_size:
        Flat observation dimension (transitions store float32 observations).
    rng:
        Generator used by :meth:`sample`; defaults to a fresh unseeded one.
    """

    def __init__(
        self,
        capacity: int,
        observation_size: int,
        rng: np.random.Generator | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.observation_size = int(observation_size)
        self.rng = resolve_rng(rng)
        self.observations = np.zeros((capacity, observation_size), dtype=np.float32)
        self.next_observations = np.zeros((capacity, observation_size), dtype=np.float32)
        self.actions = np.zeros(capacity, dtype=np.int64)
        self.rewards = np.zeros(capacity, dtype=np.float32)
        self.dones = np.zeros(capacity, dtype=np.float32)
        self.position = 0
        self.size = 0

    def __len__(self) -> int:
        return self.size

    def push(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        next_observation: np.ndarray,
        done: bool,
    ) -> None:
        """Store one transition, overwriting the oldest once full."""
        index = self.position
        self.observations[index] = observation
        self.next_observations[index] = next_observation
        self.actions[index] = action
        self.rewards[index] = reward
        self.dones[index] = 1.0 if done else 0.0
        self.position = (index + 1) % self.capacity
        self.size = min(self.size + 1, self.capacity)

    def sample(self, batch_size: int) -> dict[str, np.ndarray]:
        """Uniform random batch (with replacement) from the stored window.

        Deterministic given the generator's state: the only randomness is
        one ``rng.integers`` draw.
        """
        if self.size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = self.rng.integers(0, self.size, size=int(batch_size))
        return {
            "observations": self.observations[indices],
            "actions": self.actions[indices],
            "rewards": self.rewards[indices],
            "next_observations": self.next_observations[indices],
            "dones": self.dones[indices],
        }

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "observation_size": self.observation_size,
            "position": self.position,
            "size": self.size,
            "observations": self.observations.copy(),
            "next_observations": self.next_observations.copy(),
            "actions": self.actions.copy(),
            "rewards": self.rewards.copy(),
            "dones": self.dones.copy(),
            "rng": copy.deepcopy(self.rng.bit_generator.state),
        }

    def load_state_dict(self, state: dict) -> None:
        if int(state["capacity"]) != self.capacity:
            raise ValueError(
                f"checkpoint buffer capacity {state['capacity']} does not "
                f"match this buffer's capacity {self.capacity}"
            )
        if int(state["observation_size"]) != self.observation_size:
            raise ValueError(
                f"checkpoint observation size {state['observation_size']} does "
                f"not match this buffer's {self.observation_size}"
            )
        self.position = int(state["position"])
        self.size = int(state["size"])
        np.copyto(self.observations, state["observations"])
        np.copyto(self.next_observations, state["next_observations"])
        self.actions[:] = state["actions"]
        np.copyto(self.rewards, state["rewards"])
        np.copyto(self.dones, state["dones"])
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])
