"""DQN training loop driven by the dynamic-sparse-training engine.

:class:`RLTrainer` is the RL counterpart of :class:`repro.train.Trainer`:
it steps an environment, fills a replay buffer, and performs Q-learning
gradient steps whose sparsity is controlled by the *same*
:class:`~repro.sparse.engine.SparsityController` machinery as supervised
training — on a mask-update step the optimizer update is replaced by one
drop-and-grow round (Algorithm 1), and otherwise gradients outside the
mask are zeroed before the step.  The trainer reuses the supervised
stack's callback protocol (:class:`repro.train.callbacks.Callback`,
including :class:`repro.train.checkpoint.CheckpointCallback`), the sparse
execution backends, and the optimizer binding for sparse coordinate
updates.

Resume semantics match the supervised trainer: :meth:`state_dict` captures
*everything that evolves* — both Q-networks, optimizer moments, controller
state (masks, coverage, engine RNG, grad-EMA), the replay buffer (contents
+ sampling RNG), the environment (physics mid-episode + reset RNG), the
agent's action RNG, episode history and the partial episode's accumulators
— so a trainer built from the same configuration and restored via
:meth:`load_state_dict` continues **bitwise identically** to the
uninterrupted run, even when the checkpoint was taken mid-episode.  Two
counters matter: ``global_step`` counts environment steps (drives the
epsilon schedule and checkpoint cadence) and ``train_step`` counts gradient
steps (drives the ΔT mask-update schedule and target-network syncs).

Target-sync × ΔT interplay: a gradient step that is both a mask-update
step and a sync boundary first runs the drop-and-grow round, then copies
the *post-update* (newly masked, zero-initialized growth) weights into the
target network — the bootstrap never evaluates a topology the online
network no longer has.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.optim.lr_scheduler import LRScheduler
from repro.optim.sgd import Optimizer
from repro.rl.agent import DQNAgent, EpsilonSchedule
from repro.rl.envs import SOLVE_WINDOW, Env
from repro.rl.replay import ReplayBuffer
from repro.sparse.engine import SparsityController
from repro.train.callbacks import Callback

__all__ = ["EpisodeRecord", "RLTrainer", "rolling_returns"]


@dataclass
class EpisodeRecord:
    """One finished episode (the RL analogue of an ``EpochRecord``)."""

    episode: int
    global_step: int
    episode_return: float
    length: int
    epsilon: float
    train_loss: float | None
    sparsity: float | None
    exploration_rate: float | None

    @property
    def epoch(self) -> int:
        """Alias so epoch-cadence callbacks (checkpointing) work unchanged."""
        return self.episode


def rolling_returns(history: Sequence[EpisodeRecord], window: int = SOLVE_WINDOW) -> list[float]:
    """Rolling mean episode return over trailing ``window`` episodes."""
    returns = [record.episode_return for record in history]
    return [
        float(np.mean(returns[max(0, index + 1 - window) : index + 1]))
        for index in range(len(returns))
    ]


class RLTrainer:
    """Step-based DQN trainer with DST controller hooks.

    Parameters
    ----------
    agent:
        The :class:`~repro.rl.agent.DQNAgent` (owns online/target networks).
    env:
        A :class:`~repro.rl.envs.Env`; episodes restart automatically.
    buffer:
        Replay storage; gradient steps begin once it holds
        ``warmup_steps`` transitions.
    optimizer:
        Optimizer over the online network's parameters.
    controller:
        Optional :class:`~repro.sparse.engine.SparsityController` for the
        online network (the target network tracks it through syncs).
    scheduler:
        Optional LR scheduler, stepped once per ``scheduler_every`` gradient
        steps (RL has no epochs to hang the paper's per-epoch schedule on).
    callbacks:
        :class:`~repro.train.callbacks.Callback` hooks; ``on_step_end``
        fires per environment step (with ``global_step``) and
        ``on_epoch_end`` per finished episode (with the
        :class:`EpisodeRecord`).
    epsilon_schedule:
        Maps ``global_step`` to the exploration rate.
    batch_size, train_every, warmup_steps:
        One gradient step on a ``batch_size`` replay sample every
        ``train_every`` environment steps, once ``warmup_steps``
        transitions are stored.
    target_sync_every:
        Target-network sync cadence in *gradient* steps.
    sparse_backend:
        As in the supervised trainer: ``"auto"``/``"csr"``/``"dense"``
        installs execution backends on the controller's masked layers and
        (non-dense) binds the optimizer for sparse coordinate updates.
    """

    # epsilon_schedule is a pure function of global_step (construction-time
    # config, no evolving state), so resume correctness does not depend on
    # checkpointing it.
    CHECKPOINT_EXEMPT = {"epsilon_schedule"}

    def __init__(
        self,
        agent: DQNAgent,
        env: Env,
        buffer: ReplayBuffer,
        optimizer: Optimizer,
        controller: SparsityController | None = None,
        scheduler: LRScheduler | None = None,
        callbacks: Sequence[Callback] = (),
        epsilon_schedule: EpsilonSchedule | None = None,
        batch_size: int = 64,
        train_every: int = 1,
        warmup_steps: int = 500,
        target_sync_every: int = 200,
        scheduler_every: int = 1000,
        sparse_backend: str | None = None,
    ):
        self.agent = agent
        self.env = env
        self.buffer = buffer
        self.optimizer = optimizer
        self.controller = controller
        self.scheduler = scheduler
        self.callbacks = list(callbacks)
        self.epsilon_schedule = (
            epsilon_schedule if epsilon_schedule is not None else EpsilonSchedule()
        )
        self.batch_size = int(batch_size)
        self.train_every = max(1, int(train_every))
        self.warmup_steps = max(int(warmup_steps), int(batch_size))
        if self.warmup_steps > buffer.capacity:
            # len(buffer) saturates at capacity, so a warmup above it would
            # silently keep the >=warmup gate false forever: an entire run
            # of env steps with zero gradient steps.
            raise ValueError(
                f"warmup_steps ({self.warmup_steps}) exceeds the replay "
                f"buffer's capacity ({buffer.capacity}); training would "
                "never start"
            )
        self.target_sync_every = max(1, int(target_sync_every))
        self.scheduler_every = max(1, int(scheduler_every))
        self.sparse_backend = sparse_backend

        self.history: list[EpisodeRecord] = []
        self.global_step = 0  # environment steps
        self.train_step = 0  # gradient steps
        self.env_steps_per_sec = 0.0
        self.train_steps_per_sec = 0.0
        # Partial-episode accumulators (None between fit calls unless a
        # mid-episode checkpoint was restored).
        self._obs: np.ndarray | None = None
        self._episode_return = 0.0
        self._episode_length = 0
        self._episode_losses: list[float] = []

    # ------------------------------------------------------------------
    # setup shared with the supervised trainer
    # ------------------------------------------------------------------
    def _install_sparse_backend(self) -> None:
        if self.sparse_backend is None or self.controller is None:
            return
        from repro.sparse.kernels import install_training_backends, resolve_mode

        mode = resolve_mode(self.sparse_backend)
        install_training_backends(self.controller.masked, mode=mode)
        if mode != "dense":
            if getattr(self.controller, "optimizer", False) is None:
                self.controller.optimizer = self.optimizer
            self.controller.masked.bind_optimizer(self.optimizer)

    # ------------------------------------------------------------------
    # training loop
    # ------------------------------------------------------------------
    def fit(self, total_steps: int) -> list[EpisodeRecord]:
        """Interact until ``total_steps`` *total* environment steps.

        On a restored trainer the loop continues from the checkpointed
        position (mid-episode included), so the same ``fit(total_steps)``
        call finishes the original budget.
        """
        self._install_sparse_backend()
        for callback in self.callbacks:
            callback.bind(self)
        start = time.perf_counter()
        steps_at_start = self.global_step
        train_at_start = self.train_step

        if self._obs is None:
            self._obs = self.env.reset()
        while self.global_step < total_steps:
            self.global_step += 1
            epsilon = self.epsilon_schedule(self.global_step)
            action = self.agent.act(self._obs, epsilon)
            next_obs, reward, terminated, truncated = self.env.step(action)
            # Bootstrap through time-limit truncations: only true terminals
            # have zero continuation value.
            self.buffer.push(self._obs, action, reward, next_obs, terminated)
            self._obs = next_obs
            self._episode_return += reward
            self._episode_length += 1

            if len(self.buffer) >= self.warmup_steps and (
                self.global_step % self.train_every == 0
            ):
                self._train_on_batch()

            if terminated or truncated:
                self._finish_episode(epsilon)

            for callback in self.callbacks:
                callback.on_step_end(self.global_step)
            if any(callback.should_stop() for callback in self.callbacks):
                break

        elapsed = time.perf_counter() - start
        if elapsed > 0:
            self.env_steps_per_sec = (self.global_step - steps_at_start) / elapsed
            self.train_steps_per_sec = (self.train_step - train_at_start) / elapsed
        return self.history

    def _train_on_batch(self) -> None:
        batch = self.buffer.sample(self.batch_size)
        self.agent.online.zero_grad()
        if self.controller is not None:
            self.controller.before_backward(self.train_step + 1)
        loss = self.agent.td_loss(**batch)
        loss.backward()
        self.train_step += 1
        skip_step = False
        if self.controller is not None:
            skip_step = self.controller.on_backward(self.train_step)
        if not skip_step:
            self.optimizer.step()
            if self.controller is not None:
                self.controller.after_step(self.train_step)
        if self.scheduler is not None and self.train_step % self.scheduler_every == 0:
            self.scheduler.step()
        # Sync after the (possibly replaced-by-mask-update) step so the
        # target copies the post-update topology and weights.
        if self.train_step % self.target_sync_every == 0:
            self.agent.sync_target()
        self._episode_losses.append(loss.item())

    def _finish_episode(self, epsilon: float) -> None:
        record = EpisodeRecord(
            episode=len(self.history),
            global_step=self.global_step,
            episode_return=float(self._episode_return),
            length=self._episode_length,
            epsilon=float(epsilon),
            train_loss=(
                float(np.mean(self._episode_losses)) if self._episode_losses else None
            ),
            sparsity=(
                self.controller.masked.global_sparsity()
                if self.controller is not None
                else None
            ),
            exploration_rate=self._exploration_rate(),
        )
        self.history.append(record)
        self._episode_return = 0.0
        self._episode_length = 0
        self._episode_losses = []
        # Start the next episode *before* the callbacks run, so an
        # episode-end checkpoint always captures a ready-to-act state (and
        # the reset's RNG draw lands on the same side of the checkpoint in
        # interrupted and uninterrupted runs).
        self._obs = self.env.reset()
        for callback in self.callbacks:
            callback.on_epoch_end(record)

    def _exploration_rate(self) -> float | None:
        coverage = getattr(self.controller, "coverage", None)
        if coverage is None:
            return None
        return coverage.exploration_rate()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def average_return(self, window: int = SOLVE_WINDOW) -> float | None:
        """Mean return of the trailing ``window`` episodes (None if none)."""
        if not self.history:
            return None
        returns = [record.episode_return for record in self.history[-window:]]
        return float(np.mean(returns))

    def solved_at(self, window: int = SOLVE_WINDOW) -> int | None:
        """First global step where the rolling return crosses the solve bar.

        Only *full* windows count: the solve criterion is the average over
        ``window`` episodes, so the first ``window - 1`` entries (partial
        averages, where one lucky early episode could cross the bar alone)
        are never eligible.
        """
        threshold = self.env.solve_threshold
        rolling = rolling_returns(self.history, window)
        for index, (record, average) in enumerate(zip(self.history, rolling)):
            if index + 1 < window:
                continue
            if average >= threshold:
                return record.global_step
        return None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete, serializable training state (see module docstring)."""
        return {
            "global_step": self.global_step,
            "train_step": self.train_step,
            "model": self.agent.online.state_dict(),
            "target_model": self.agent.target.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": (
                self.scheduler.state_dict() if self.scheduler is not None else None
            ),
            "controller": (
                self.controller.state_dict() if self.controller is not None else None
            ),
            "agent": self.agent.state_dict(),
            "buffer": self.buffer.state_dict(),
            "env": self.env.state_dict(),
            "observation": None if self._obs is None else np.asarray(self._obs).copy(),
            "episode": {
                "return": float(self._episode_return),
                "length": int(self._episode_length),
                "losses": np.asarray(self._episode_losses, dtype=np.float64),
            },
            "history": [
                {
                    "episode": record.episode,
                    "global_step": record.global_step,
                    "episode_return": record.episode_return,
                    "length": record.length,
                    "epsilon": record.epsilon,
                    "train_loss": record.train_loss,
                    "sparsity": record.sparsity,
                    "exploration_rate": record.exploration_rate,
                }
                for record in self.history
            ],
            "callbacks": [
                {"type": type(cb).__name__, "state": cb.state_dict()}
                for cb in self.callbacks
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (resume-exact).

        The trainer must have been constructed with the same configuration
        (network architecture, optimizer/controller types, environment,
        buffer capacity, schedules); only the evolving state is restored.
        """
        if (state["controller"] is None) != (self.controller is None):
            raise ValueError("checkpoint and trainer disagree on controller presence")
        if (state["scheduler"] is None) != (self.scheduler is None):
            raise ValueError("checkpoint and trainer disagree on scheduler presence")
        self.agent.online.load_state_dict(state["model"])
        self.agent.target.load_state_dict(state["target_model"])
        if self.controller is not None:
            self.controller.load_state_dict(state["controller"])
        self.optimizer.load_state_dict(state["optimizer"])
        if self.scheduler is not None:
            self.scheduler.load_state_dict(state["scheduler"])
        self.agent.load_state_dict(state["agent"])
        self.buffer.load_state_dict(state["buffer"])
        self.env.load_state_dict(state["env"])
        self.global_step = int(state["global_step"])
        self.train_step = int(state["train_step"])
        observation = state.get("observation")
        self._obs = None if observation is None else np.asarray(observation, np.float32)
        episode = state["episode"]
        self._episode_return = float(episode["return"])
        self._episode_length = int(episode["length"])
        self._episode_losses = [float(value) for value in episode["losses"]]
        self.history = [
            EpisodeRecord(
                episode=int(record["episode"]),
                global_step=int(record["global_step"]),
                episode_return=float(record["episode_return"]),
                length=int(record["length"]),
                epsilon=float(record["epsilon"]),
                train_loss=(
                    None if record["train_loss"] is None else float(record["train_loss"])
                ),
                sparsity=(
                    None if record["sparsity"] is None else float(record["sparsity"])
                ),
                exploration_rate=(
                    None
                    if record["exploration_rate"] is None
                    else float(record["exploration_rate"])
                ),
            )
            for record in state["history"]
        ]
        # Callback state is matched positionally, as in the supervised
        # trainer (see Trainer.load_state_dict for the rationale).
        for index, saved in enumerate(state.get("callbacks", [])):
            if saved["state"] is None:
                continue
            callback = self.callbacks[index] if index < len(self.callbacks) else None
            if callback is None or type(callback).__name__ != saved["type"]:
                found = (
                    "no callback" if callback is None else repr(type(callback).__name__)
                )
                warnings.warn(
                    f"checkpoint callback state of type {saved['type']!r} at "
                    f"position {index} was not restored ({found} there in the "
                    "resumed trainer)",
                    stacklevel=2,
                )
                continue
            callback.load_state_dict(saved["state"])
