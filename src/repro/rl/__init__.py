"""Reinforcement-learning workload driven by the DST engine.

Dependency-free classic-control environments, a ring-buffer replay store,
a DQN agent whose Q-networks are sparsified through the same
:class:`~repro.sparse.masked.MaskedModel` / controller machinery as the
supervised experiments, and a resume-exact training loop.  See
``docs/rl.md``.
"""

from repro.rl.agent import DQNAgent, EpsilonSchedule
from repro.rl.envs import (
    SOLVE_WINDOW,
    AcrobotEnv,
    CartPoleEnv,
    ENV_REGISTRY,
    Env,
    make_env,
)
from repro.rl.replay import ReplayBuffer
from repro.rl.trainer import EpisodeRecord, RLTrainer, rolling_returns

__all__ = [
    "SOLVE_WINDOW",
    "AcrobotEnv",
    "CartPoleEnv",
    "DQNAgent",
    "ENV_REGISTRY",
    "Env",
    "EpisodeRecord",
    "EpsilonSchedule",
    "RLTrainer",
    "ReplayBuffer",
    "make_env",
    "rolling_returns",
]
