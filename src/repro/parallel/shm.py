"""Shared-memory array helpers for the data-parallel gradient workers.

Thin wrappers around :mod:`multiprocessing.shared_memory` that keep the
block handle and the numpy view together, so the owning process can unlink
the segment exactly once and forked children can keep using the inherited
mapping without reattaching by name.
"""

from __future__ import annotations

import numpy as np
from multiprocessing import shared_memory

__all__ = ["SharedArray", "SharedArena", "ParamLayout"]


class SharedArray:
    """A numpy array backed by a ``SharedMemory`` block.

    Created (and eventually unlinked) by the parent; forked workers inherit
    the mapping, so reads/writes on ``.array`` are visible across the
    process tree with no copies.
    """

    def __init__(self, shape: tuple[int, ...], dtype=np.float32):
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)

    def close(self, unlink: bool = True) -> None:
        """Release the mapping (and the segment, when ``unlink``)."""
        # Drop the numpy view first: SharedMemory.close() refuses to unmap
        # while exported buffers are alive.
        self.array = None
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked by the owner
                pass


class SharedArena:
    """Named arrays packed into one read-only shared-memory block.

    The serving pool (:mod:`repro.serve.pool`) uses this as a *weight
    arena*: the parent packs every compiled layer's CSR components into a
    single segment, marks the views read-only, and forked workers inherit
    the mapping — N workers serve from one physical copy of the weights
    instead of N private copies.

    Unlike :class:`SharedArray` (one mutable array for gradient exchange),
    an arena holds many heterogeneous arrays and hands out views that
    refuse writes, so a worker bug cannot silently corrupt the weights
    every other worker is reading.
    """

    _ALIGN = 64  # cache-line alignment for each packed array

    def __init__(self, arrays: dict[str, np.ndarray], readonly: bool = True):
        contiguous = {name: np.ascontiguousarray(value) for name, value in arrays.items()}
        offsets: dict[str, int] = {}
        total = 0
        for name, value in contiguous.items():
            total = -(-total // self._ALIGN) * self._ALIGN  # round up
            offsets[name] = total
            total += value.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        self._views: dict[str, np.ndarray] = {}
        self.readonly = bool(readonly)
        self.nbytes = total
        for name, value in contiguous.items():
            view = np.ndarray(
                value.shape, dtype=value.dtype, buffer=self._shm.buf, offset=offsets[name]
            )
            view[...] = value
            if self.readonly:
                view.flags.writeable = False
            self._views[name] = view

    def view(self, name: str) -> np.ndarray:
        """The packed array ``name`` (read-only when the arena is)."""
        return self._views[name]

    def names(self) -> list[str]:
        return list(self._views)

    def close(self, unlink: bool = True) -> None:
        """Release the mapping (and the segment, when ``unlink``)."""
        self._views = {}
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked by the owner
                pass


class ParamLayout:
    """Flat offsets of a parameter list inside one contiguous float32 block."""

    def __init__(self, params):
        self.params = list(params)
        self.offsets: list[int] = []
        total = 0
        for param in self.params:
            self.offsets.append(total)
            total += int(param.size)
        self.total = total

    def view(self, flat: np.ndarray, index: int) -> np.ndarray:
        """Parameter-shaped view of entry ``index`` inside ``flat``."""
        param = self.params[index]
        offset = self.offsets[index]
        return flat[offset : offset + param.size].reshape(param.shape)
