"""Data-parallel gradient workers: split each mini-batch across processes.

:class:`GradientWorkerPool` forks ``n_workers`` persistent worker processes
around a model.  Every training step the parent splits the mini-batch into
contiguous shards, each worker runs forward + backward on its shard against
the **shared** parameters, and the parent all-reduces (averages, weighted by
shard size) the per-worker gradients before the optimizer step.  DST
semantics are unchanged: the controller sees one averaged dense gradient per
parameter, exactly as if the full batch had been processed in-process, and
drop/grow decisions happen only in the parent.

Shared-memory layout (all created before the fork, inherited by workers):

* ``params``  — one contiguous float32 block holding every parameter; each
  ``Parameter.data`` is rebound to a view into it, so the parent's optimizer
  step and mask surgery are immediately visible to the workers with no
  parameter broadcast;
* ``grads``   — an ``(n_workers, total_params)`` float32 block; worker ``w``
  writes its shard gradient into row ``w``;
* ``masks``   — a flat bool block mirroring every
  :class:`~repro.sparse.masked.SparseParam` mask.  The parent re-publishes a
  layer's mask when its ``mask_version`` moved since the last step (i.e.
  after each drop-and-grow round) and names the changed layers in the step
  command; workers copy those slices into their local masks and invalidate
  cached index sets, which keeps worker-side CSR kernel structures in sync.

Commands and small results (loss, shard size, correct count, norm-layer
buffers) travel over per-worker pipes; only the batch shard is pickled,
never the model.

Semantics notes
---------------
* Gradient averaging is weighted by shard size, so the result equals the
  full-batch mean gradient up to float32 summation order.
* Stochastic layers (dropout) draw from per-worker RNG streams; batch-norm
  layers normalize by per-shard statistics and the parent adopts the
  running buffers of the first worker — the same per-replica semantics as
  standard data-parallel training.
"""

from __future__ import annotations

import numpy as np
import multiprocessing as mp

from repro.autograd.tensor import Tensor
from repro.parallel.pool import fork_available
from repro.parallel.shm import ParamLayout, SharedArray

__all__ = ["GradientWorkerPool"]


class GradientWorkerPool:
    """Persistent fork workers computing sharded gradients for one model.

    Parameters
    ----------
    model:
        The model to replicate.  Its parameters are moved into shared
        memory for the pool's lifetime (and copied back on :meth:`close`).
    loss_fn:
        ``loss_fn(logits, targets) -> Tensor`` (scalar, mean reduction).
    n_workers:
        Number of worker processes (>= 2; use the trainer's serial path
        otherwise).
    masked:
        Optional :class:`~repro.sparse.masked.MaskedModel` whose masks are
        mirrored into shared memory and resynced on ``mask_version`` bumps.
    """

    def __init__(self, model, loss_fn, n_workers: int, masked=None):
        if n_workers < 2:
            raise ValueError(f"n_workers must be >= 2, got {n_workers}")
        if not fork_available():
            raise RuntimeError("GradientWorkerPool requires fork support")
        if mp.current_process().daemon:
            # Daemonic processes (e.g. run_sharded seed workers) cannot have
            # children; the trainer falls back to in-process gradients.
            raise RuntimeError(
                "GradientWorkerPool cannot start inside a daemonic worker "
                "process (nested parallelism); use Trainer(n_workers=0) there"
            )
        self.model = model
        self.loss_fn = loss_fn
        self.n_workers = int(n_workers)
        self.masked = masked
        self._closed = False

        params = list(model.parameters())
        for param in params:
            if param.data.dtype != np.float32:
                raise TypeError(
                    f"shared-parameter pool requires float32 parameters, "
                    f"got {param.data.dtype} for {param.name!r}"
                )
        self.layout = ParamLayout(params)
        self._param_shm = SharedArray((self.layout.total,), np.float32)
        self._grad_shm = SharedArray((self.n_workers, self.layout.total), np.float32)
        self._views: list[np.ndarray] = []
        for index, param in enumerate(params):
            view = self.layout.view(self._param_shm.array, index)
            np.copyto(view, param.data)
            param.data = view
            self._views.append(view)

        self._targets = list(masked.targets) if masked is not None else []
        self._mask_offsets: list[int] = []
        total_mask = 0
        for target in self._targets:
            self._mask_offsets.append(total_mask)
            total_mask += int(target.size)
        self._mask_shm = SharedArray((max(total_mask, 1),), np.bool_)
        self._mask_versions = [-1] * len(self._targets)  # force first publish

        self._avg = np.empty(self.layout.total, dtype=np.float32)
        self._scratch = np.empty(self.layout.total, dtype=np.float32)
        self._has_buffers = any(True for _ in model.named_buffers())

        ctx = mp.get_context("fork")
        self._procs = []
        self._conns = []
        for worker_id in range(self.n_workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=self._worker_loop, args=(worker_id, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            self._procs.append(process)
            self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    # parent side
    # ------------------------------------------------------------------
    def _rebind_shared_parameters(self) -> None:
        """Re-attach parameters that were rebound to private arrays.

        Most updates are in-place (SGD, mask surgery), but some code paths
        *replace* ``param.data`` with a fresh array — Adam's dense step,
        STR's shrink, ``load_state_dict``.  Workers would then silently
        keep training against the frozen shared block, so every step the
        parent copies any rebound value back into its shared view and
        restores the binding.
        """
        for index, param in enumerate(self.layout.params):
            view = self._views[index]
            if param.data is view:
                continue
            if param.data.shape != view.shape:
                raise RuntimeError(
                    f"parameter {param.name!r} changed shape "
                    f"{view.shape} -> {param.data.shape} under a worker pool"
                )
            np.copyto(view, param.data)
            param.data = view

    def _publish_masks(self) -> list[int]:
        """Copy changed masks into shared memory; return their target indices."""
        changed = []
        flat = self._mask_shm.array
        for index, target in enumerate(self._targets):
            if target.mask_version != self._mask_versions[index]:
                offset = self._mask_offsets[index]
                np.copyto(
                    flat[offset : offset + target.size], target.mask.reshape(-1)
                )
                self._mask_versions[index] = target.mask_version
                changed.append(index)
        return changed

    def step(self, inputs, targets) -> tuple[float, float]:
        """Compute averaged gradients for one mini-batch.

        Splits ``(inputs, targets)`` into ``n_workers`` contiguous shards,
        all-reduces the worker gradients into ``param.grad`` (weighted mean)
        and returns ``(mean loss, accuracy)`` over the full batch.
        """
        if self._closed:
            raise RuntimeError("GradientWorkerPool is closed")
        x = inputs.data if isinstance(inputs, Tensor) else np.asarray(inputs)
        y = np.asarray(targets)
        n = len(y)
        self._rebind_shared_parameters()
        changed = self._publish_masks()
        bounds = np.linspace(0, n, self.n_workers + 1).astype(int)
        for worker_id, conn in enumerate(self._conns):
            lo, hi = bounds[worker_id], bounds[worker_id + 1]
            conn.send(("step", x[lo:hi], y[lo:hi], changed))

        loss_total = 0.0
        correct_total = 0
        shard_sizes = []
        buffers = None
        any_grad = [False] * len(self.layout.params)
        for conn in self._conns:
            try:
                loss_w, n_w, correct_w, buffers_w, had_grad = conn.recv()
            except EOFError as exc:
                self.close()
                raise RuntimeError("gradient worker died during step") from exc
            shard_sizes.append(n_w)
            loss_total += loss_w * n_w
            correct_total += correct_w
            if buffers_w is not None and buffers is None:
                buffers = buffers_w
            if had_grad is not None:
                any_grad = [a or h for a, h in zip(any_grad, had_grad)]

        grads = self._grad_shm.array
        started = False
        for worker_id, n_w in enumerate(shard_sizes):
            if n_w == 0:
                continue
            coef = n_w / n
            if not started:
                np.multiply(grads[worker_id], coef, out=self._avg)
                started = True
            else:
                np.multiply(grads[worker_id], coef, out=self._scratch)
                np.add(self._avg, self._scratch, out=self._avg)
        for index, param in enumerate(self.layout.params):
            if not param.requires_grad:
                continue
            # A parameter no worker produced a gradient for (unused in the
            # forward) keeps grad=None, exactly as in serial training — the
            # optimizer must skip it, not weight-decay a zero gradient.
            if any_grad[index]:
                param.grad = self.layout.view(self._avg, index)
            else:
                param.grad = None

        if buffers is not None:
            owners = self.model._buffer_owners()
            for name, value in buffers:
                if name in owners:
                    owner, attr = owners[name]
                    owner.register_buffer(attr, value)
        # ``correct_total`` counts predictions, one per logits row — for
        # language models that is ``y.size`` tokens, not ``len(y)`` examples.
        return loss_total / max(n, 1), correct_total / max(y.size, 1)

    def close(self) -> None:
        """Stop workers and move parameters back into private memory."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join()
        for conn in self._conns:
            conn.close()
        for param in self.layout.params:
            param.data = np.array(param.data, copy=True)
            if param.grad is not None and param.grad.base is self._avg:
                param.grad = np.array(param.grad, copy=True)
        self._param_shm.close()
        self._grad_shm.close()
        self._mask_shm.close()

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # worker side (runs in the forked child)
    # ------------------------------------------------------------------
    def _apply_mask_updates(self, changed) -> None:
        flat = self._mask_shm.array
        for index in changed:
            target = self._targets[index]
            offset = self._mask_offsets[index]
            np.copyto(target.mask.reshape(-1), flat[offset : offset + target.size])
            target.mark_mask_dirty()

    def _reseed_worker_rngs(self, worker_id: int) -> None:
        """Give this replica's stochastic layers worker-distinct RNG streams.

        Forked replicas inherit *identical* generator states, so without
        this every worker would draw the same dropout masks.  Both the
        legacy global stream and any ``np.random.Generator`` held as a
        module attribute (e.g. :class:`~repro.nn.Dropout`) are re-derived
        deterministically from ``(worker_id, position)``.
        """
        # Deliberate legacy-stream use: forked replicas inherit the parent's
        # *global* stream too, so it must be re-derived per worker exactly like
        # the Generator attributes below.  The reseed is itself deterministic
        # (parent state + worker_id).
        # reprolint: disable-next=RPL001
        np.random.seed((int(np.random.get_state()[1][0]) + worker_id + 1) % (2**32))
        position = 0
        for module in self.model.modules():
            for name, value in list(vars(module).items()):
                if isinstance(value, np.random.Generator):
                    setattr(module, name, np.random.default_rng(
                        np.random.SeedSequence([worker_id + 1, position])
                    ))
                    position += 1

    def _worker_loop(self, worker_id: int, conn) -> None:
        self._reseed_worker_rngs(worker_id)
        grad_row = self._grad_shm.array[worker_id]
        send_buffers = self._has_buffers and worker_id == 0
        while True:
            command = conn.recv()
            if command[0] == "stop":
                conn.close()
                return
            _, x, y, changed = command
            self._apply_mask_updates(changed)
            if len(y) == 0:
                conn.send((0.0, 0, 0, None, None))
                continue
            self.model.zero_grad()
            logits = self.model(Tensor(x))
            loss = self.loss_fn(logits, y)
            loss.backward()
            had_grad = []
            for index, param in enumerate(self.layout.params):
                view = self.layout.view(grad_row, index)
                if param.grad is not None:
                    np.copyto(view, param.grad)
                    had_grad.append(True)
                else:
                    view.fill(0.0)
                    had_grad.append(False)
            # Flatten targets so (B, T) language-model labels line up with
            # the (B*T, V) logits; a no-op for 1-D classification targets.
            correct = int((logits.data.argmax(axis=1) == y.reshape(-1)).sum())
            buffers = None
            if send_buffers:
                buffers = [
                    (name, np.array(value, copy=True))
                    for name, value in self.model.named_buffers()
                ]
            conn.send((float(loss.item()), int(len(y)), correct, buffers, had_grad))
