"""Fork-based process pool for experiment sharding.

The paper's protocol is "mean ± std over three random seeds" across a grid
of (method × sparsity × architecture) cells — an embarrassingly parallel
workload that the serial loops in :mod:`repro.experiments.runner` leave on
one core.  :func:`run_sharded` fans a list of zero-argument jobs out across
``REPRO_NPROC`` forked worker processes and collects per-job results with
crash isolation: a job that raises (or a worker process that dies outright)
produces a failed :class:`ShardResult` instead of killing the sweep.

Design notes
------------
* Workers are created with the ``fork`` start method and jobs are *captured
  at fork time*, never pickled: experiment jobs close over model-factory
  lambdas and dataset objects, which ``spawn`` pickling would reject.  Only
  the **results** travel back to the parent (over a per-worker pipe), so
  they must be picklable — :class:`~repro.experiments.runner.RunResult`
  and everything it carries is.
* Jobs are dealt round-robin (worker ``w`` runs jobs ``w, w + n, ...``), a
  deterministic assignment that balances heterogeneous grids (a dense cell
  next to a 98%-sparsity cell) better than contiguous blocks.
* On platforms without ``os.fork`` (or with ``n_proc <= 1``) the same code
  path runs serially in-process, including the per-job crash isolation, so
  callers never branch on the execution mode.

Deterministic seeding for sweeps uses :func:`derive_seeds`
(``np.random.SeedSequence.spawn``): the seed of cell ``i`` depends only on
the root seed and ``i``, never on worker count or scheduling order.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "NPROC_ENV",
    "ShardResult",
    "derive_seeds",
    "fork_available",
    "resolve_nproc",
    "run_sharded",
]

NPROC_ENV = "REPRO_NPROC"


def fork_available() -> bool:
    """Whether fork-based worker processes can be used on this platform."""
    return hasattr(os, "fork") and "fork" in mp.get_all_start_methods()


def resolve_nproc(n_proc: int | None = None) -> int:
    """Explicit argument > ``REPRO_NPROC`` env var > 1 (serial).

    ``0`` (from either source) means "use all available cores".
    """
    if n_proc is None:
        raw = os.environ.get(NPROC_ENV)
        n_proc = int(raw) if raw else 1
    n_proc = int(n_proc)
    if n_proc == 0:
        n_proc = os.cpu_count() or 1
    if n_proc < 0:
        raise ValueError(f"n_proc must be >= 0, got {n_proc}")
    return n_proc


def derive_seeds(root_seed: int, count: int) -> list[int]:
    """``count`` independent integer seeds from one root seed.

    Uses ``SeedSequence.spawn`` so each child stream is statistically
    independent of the others, and the mapping ``(root_seed, i) -> seed``
    is stable across worker counts and job orderings.
    """
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]


@dataclass
class ShardResult:
    """Outcome of one sharded job."""

    index: int
    ok: bool
    value: Any = None
    error: str | None = None
    seconds: float = 0.0
    # Original exception object; populated only for jobs that ran in the
    # parent process (exception instances are not shipped over pipes).
    exception: BaseException | None = None

    def unwrap(self) -> Any:
        """Return the value; failed jobs re-raise their original exception
        when it is available (in-process execution) and a ``RuntimeError``
        carrying the formatted traceback otherwise."""
        if not self.ok:
            if self.exception is not None:
                raise self.exception
            raise RuntimeError(f"sharded job {self.index} failed:\n{self.error}")
        return self.value


def _run_one(index: int, job: Callable[[], Any], in_parent: bool = False) -> ShardResult:
    start = time.perf_counter()
    try:
        value = job()
    except BaseException as exc:  # crash isolation: report, don't kill the sweep
        if in_parent and isinstance(exc, (KeyboardInterrupt, SystemExit)):
            # Serial in-process execution: Ctrl-C must abort the whole
            # sweep, not be filed away as one cell's failure.  (In a forked
            # worker the parent receives its own SIGINT and handles it.)
            raise
        return ShardResult(
            index=index,
            ok=False,
            error=traceback.format_exc(),
            seconds=time.perf_counter() - start,
            exception=exc if in_parent else None,
        )
    return ShardResult(
        index=index, ok=True, value=value, seconds=time.perf_counter() - start
    )


def _worker_main(worker_id: int, conn, jobs, indices) -> None:
    """Run this worker's shard, streaming one result per job, then a sentinel."""
    try:
        for index in indices:
            result = _run_one(index, jobs[index])
            try:
                conn.send(result)
            except Exception:
                # Unpicklable result value: report the failure instead.
                conn.send(
                    ShardResult(
                        index=result.index,
                        ok=False,
                        error="result could not be pickled:\n" + traceback.format_exc(),
                        seconds=result.seconds,
                    )
                )
        conn.send(None)  # sentinel: shard complete
    finally:
        conn.close()


def run_sharded(
    jobs: Sequence[Callable[[], Any]],
    n_proc: int | None = None,
    fail_fast: bool = False,
) -> list[ShardResult]:
    """Run ``jobs`` (zero-argument callables) across worker processes.

    Returns one :class:`ShardResult` per job, in job order.  With
    ``n_proc <= 1``, a single job, or no fork support, the jobs run
    serially in-process with identical result semantics.

    ``fail_fast=True`` restores the serial loop's abort-on-first-error
    contract: in-process execution re-raises a job's original exception
    immediately (no later jobs run).  Parallel shards still run to
    completion — their work is already in flight — and the first failure
    is raised after collection.
    """
    jobs = list(jobs)
    n_proc = resolve_nproc(n_proc)
    if not jobs:
        return []
    n_workers = min(n_proc, len(jobs))
    if n_workers <= 1 or not fork_available():
        results = []
        for index, job in enumerate(jobs):
            result = _run_one(index, job, in_parent=True)
            if fail_fast and not result.ok:
                raise result.exception
            results.append(result)
        return results

    ctx = mp.get_context("fork")
    results: dict[int, ShardResult] = {}
    shards = [list(range(w, len(jobs), n_workers)) for w in range(n_workers)]
    workers = []
    for worker_id, indices in enumerate(shards):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(worker_id, child_conn, jobs, indices),
            daemon=True,
        )
        process.start()
        child_conn.close()
        workers.append((process, parent_conn, indices))

    pending = {id(conn): (process, conn, indices) for process, conn, indices in workers}
    connections = [conn for _, conn, _ in workers]
    while pending:
        for conn in connection_wait(list(connections)):
            process, _, indices = pending[id(conn)]
            try:
                message = conn.recv()
            except EOFError:
                message = None
                # Worker died mid-shard (segfault, OOM kill...): every job of
                # its shard without a result is marked failed.
                for index in indices:
                    if index not in results:
                        results[index] = ShardResult(
                            index=index,
                            ok=False,
                            error=f"worker process died before reporting job {index}",
                        )
            else:
                if message is not None:
                    results[message.index] = message
                    continue
            # sentinel or EOF: this worker is done
            conn.close()
            connections.remove(conn)
            del pending[id(conn)]
    for process, _, _ in workers:
        process.join()
    ordered = [results[index] for index in range(len(jobs))]
    if fail_fast:
        for result in ordered:
            result.unwrap()  # raises on the first (lowest-index) failure
    return ordered
