"""Parallel execution engine: experiment sharding and gradient workers.

Two independent levels of parallelism (see docs/performance.md):

* :func:`run_sharded` / :func:`resolve_nproc` — fan independent experiment
  cells (seeds, sweep cells) out across ``REPRO_NPROC`` forked processes
  with crash isolation and deterministic seeding (:func:`derive_seeds`).
* :class:`GradientWorkerPool` — split each mini-batch across persistent
  worker processes sharing parameters through ``multiprocessing.shared_memory``,
  all-reducing gradients into the parent before the optimizer step
  (``Trainer(n_workers=...)``).
"""

from repro.parallel.pool import (
    NPROC_ENV,
    ShardResult,
    derive_seeds,
    fork_available,
    resolve_nproc,
    run_sharded,
)
from repro.parallel.shm import ParamLayout, SharedArena, SharedArray
from repro.parallel.workers import GradientWorkerPool

__all__ = [
    "NPROC_ENV",
    "ShardResult",
    "derive_seeds",
    "fork_available",
    "resolve_nproc",
    "run_sharded",
    "ParamLayout",
    "SharedArena",
    "SharedArray",
    "GradientWorkerPool",
]
