"""FLOPs accounting (Table II's training/inference cost columns)."""

from repro.flops.count import (
    LayerProfile,
    ModelProfile,
    conv2d_flops,
    linear_flops,
    profile_model,
    sparse_inference_flops,
    training_flops_multiplier,
)

__all__ = [
    "LayerProfile",
    "ModelProfile",
    "conv2d_flops",
    "linear_flops",
    "profile_model",
    "sparse_inference_flops",
    "training_flops_multiplier",
]
