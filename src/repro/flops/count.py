"""FLOPs accounting for dense and sparse models (Table II columns).

Following the convention of the RigL paper (which Table II adopts):

* inference FLOPs = one forward pass; a sparse layer costs
  ``density × dense_FLOPs``;
* training FLOPs per step = forward + backward ≈ 3 × forward (gradients
  w.r.t. both inputs and weights), again scaled by the density at which the
  method trains; dense-to-sparse methods are charged their *average* density
  over the training schedule.

Layer shapes are discovered by instrumenting a dummy forward pass, so any
architecture built from :class:`~repro.nn.Linear` / :class:`~repro.nn.Conv2d`
is supported without per-model code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module

__all__ = [
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "conv2d_flops",
    "linear_flops",
    "sparse_inference_flops",
    "training_flops_multiplier",
]


def conv2d_flops(
    in_channels: int, out_channels: int, kernel_hw: tuple[int, int],
    out_hw: tuple[int, int], bias: bool = False,
) -> int:
    """Multiply-add FLOPs of one conv forward pass on one example."""
    kh, kw = kernel_hw
    oh, ow = out_hw
    per_position = 2 * in_channels * kh * kw  # mult + add
    total = per_position * out_channels * oh * ow
    if bias:
        total += out_channels * oh * ow
    return int(total)


def linear_flops(in_features: int, out_features: int, bias: bool = False) -> int:
    """Multiply-add FLOPs of one linear forward pass on one example."""
    total = 2 * in_features * out_features
    if bias:
        total += out_features
    return int(total)


@dataclass
class LayerProfile:
    """FLOPs and size of one prunable layer."""

    name: str
    kind: str  # "conv" or "linear"
    weight_shape: tuple[int, ...]
    flops: int

    @property
    def weight_size(self) -> int:
        return int(np.prod(self.weight_shape))


@dataclass
class ModelProfile:
    """Per-layer forward-FLOPs profile of a model at a given input shape."""

    layers: list[LayerProfile]
    input_shape: tuple[int, ...]

    @property
    def total_flops(self) -> int:
        return sum(layer.flops for layer in self.layers)

    def by_name(self) -> dict[str, LayerProfile]:
        return {layer.name: layer for layer in self.layers}


def profile_model(model: Module, input_shape: tuple[int, ...]) -> ModelProfile:
    """Run a dummy forward pass and record every Conv2d/Linear layer's FLOPs.

    ``input_shape`` excludes the batch dimension.
    """
    module_names = {id(m): name for name, m in model.named_modules()}
    records: list[LayerProfile] = []

    original_conv = nn.Conv2d.forward
    original_linear = nn.Linear.forward

    def conv_forward(self, x):
        out = original_conv(self, x)
        name = module_names.get(id(self), "conv")
        records.append(
            LayerProfile(
                name=f"{name}.weight" if name else "weight",
                kind="conv",
                weight_shape=self.weight.shape,
                flops=conv2d_flops(
                    self.in_channels,
                    self.out_channels,
                    self.kernel_size,
                    (out.shape[2], out.shape[3]),
                    bias=self.bias is not None,
                ),
            )
        )
        return out

    def linear_forward(self, x):
        out = original_linear(self, x)
        name = module_names.get(id(self), "linear")
        records.append(
            LayerProfile(
                name=f"{name}.weight" if name else "weight",
                kind="linear",
                weight_shape=self.weight.shape,
                flops=linear_flops(
                    self.in_features, self.out_features, bias=self.bias is not None
                ),
            )
        )
        return out

    was_training = model.training
    nn.Conv2d.forward = conv_forward
    nn.Linear.forward = linear_forward
    try:
        model.eval()
        with no_grad():
            model(Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32)))
    finally:
        nn.Conv2d.forward = original_conv
        nn.Linear.forward = original_linear
        model.train(was_training)
    return ModelProfile(layers=records, input_shape=tuple(input_shape))


def sparse_inference_flops(
    profile: ModelProfile, masks: dict[str, np.ndarray]
) -> tuple[int, float]:
    """Inference FLOPs of a masked model and the multiplier vs dense.

    Layers without a mask (kept dense) are charged in full.
    """
    total = 0.0
    for layer in profile.layers:
        mask = masks.get(layer.name)
        density = float(mask.mean()) if mask is not None else 1.0
        total += density * layer.flops
    dense = profile.total_flops
    return int(total), total / dense if dense else 0.0


def training_flops_multiplier(
    profile: ModelProfile,
    density_schedule: list[dict[str, float]] | dict[str, np.ndarray],
) -> float:
    """Average training cost vs dense training (forward+backward ≈ 3× fwd).

    ``density_schedule`` is either a single mask dict (methods with a fixed
    sparsity budget — the density never changes, e.g. RigL/DST-EE) or a list
    of per-layer density snapshots over training (dense-to-sparse methods).
    The 3× factor cancels in the ratio, so the multiplier is simply the
    FLOPs-weighted average density.
    """
    if isinstance(density_schedule, dict):
        snapshots = [
            {name: float(mask.mean()) for name, mask in density_schedule.items()}
        ]
    else:
        snapshots = density_schedule
    if not snapshots:
        raise ValueError("density_schedule is empty")
    dense = profile.total_flops
    total = 0.0
    for snapshot in snapshots:
        step_flops = 0.0
        for layer in profile.layers:
            density = snapshot.get(layer.name, 1.0)
            step_flops += density * layer.flops
        total += step_flops / dense
    return total / len(snapshots)
