"""Training loop with sparse-training hooks.

The :class:`Trainer` implements the iteration structure of Algorithm 1:
forward → backward → ``controller.on_backward(t)``; when the controller
signals a mask-update step the optimizer step is *skipped* for that
iteration (the paper replaces the SGD update with the drop-and-grow), and
otherwise gradients outside the mask have already been zeroed so only
active weights move.

Checkpointing: :meth:`Trainer.state_dict` captures the *complete* training
state — model parameters, optimizer moments, scheduler position, controller
state (masks, coverage counters, engine RNG), epoch history, data-order and
dropout RNG bit-generator states, and, mid-epoch, the partial epoch's
progress (batches consumed plus running loss/accuracy accumulators).  A
trainer built from the same config and restored via
:meth:`load_state_dict` continues *bitwise identically* to the
uninterrupted run: ``fit`` resumes at ``len(history)`` epochs, and a
partial epoch replays its already-trained batches through the data
pipeline (advancing the shuffle/augmentation RNG exactly as the original
epoch did) without recomputing them.  See :mod:`repro.train.checkpoint`
for the on-disk format.
"""

from __future__ import annotations

import copy
import time
import warnings
from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.loader import DataLoader
from repro.metrics.accuracy import accuracy
from repro.nn.module import Module
from repro.optim.lr_scheduler import LRScheduler
from repro.optim.sgd import Optimizer
from repro.sparse.engine import SparsityController
from repro.train.callbacks import Callback
from repro.train.history import EpochRecord, History

__all__ = ["Trainer", "evaluate_classifier"]


def evaluate_classifier(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy over a loader (eval mode, no graph recording)."""
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for inputs, targets in loader:
            logits = model(inputs)
            predictions = logits.data.argmax(axis=1)
            correct += int((predictions == targets).sum())
            total += len(targets)
    model.train(was_training)
    return correct / max(total, 1)


def _named_module_rngs(model: Module) -> list[tuple[str, np.random.Generator]]:
    """``(key, generator)`` pairs for every Generator held by a module.

    Covers stochastic layers such as :class:`~repro.nn.Dropout` whose
    draws are part of the training trajectory and therefore part of the
    resume-exact state.
    """
    pairs = []
    for name, module in model.named_modules():
        for attr, value in sorted(vars(module).items()):
            if isinstance(value, np.random.Generator):
                pairs.append((f"{name}:{attr}" if name else attr, value))
    return pairs


class Trainer:
    """Epoch-based trainer for classification models.

    Parameters
    ----------
    model, optimizer, loss_fn:
        The usual triple; ``loss_fn(logits, targets) -> Tensor``.
    train_loader, test_loader:
        Data; ``test_loader=None`` skips evaluation.
    scheduler:
        Optional LR scheduler stepped once per epoch (paper setup).
    controller:
        Optional :class:`~repro.sparse.engine.SparsityController` (fixed
        mask, drop-and-grow engine, GMP, STR...).
    callbacks:
        Epoch-end hooks.
    eval_every:
        Evaluate every N epochs (always evaluates on the final epoch).
    sparse_backend:
        Optional execution backend for the controller's masked layers:
        ``"auto"``, ``"csr"`` or ``"dense"`` (see
        :mod:`repro.sparse.kernels`).  Installed at the start of ``fit``;
        non-dense modes also bind the optimizer for sparse coordinate
        updates.  ``None`` (default) leaves the model untouched.
    n_workers:
        When >= 2 (and the platform supports ``fork``), each training
        mini-batch is split across that many persistent worker processes
        (:class:`~repro.parallel.GradientWorkerPool`); the averaged
        gradient drives the optimizer and all DST decisions in this
        process, so drop/grow semantics are unchanged.  ``0``/``1`` (and
        unsupported platforms) train in-process.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable,
        train_loader: DataLoader,
        test_loader: DataLoader | None = None,
        scheduler: LRScheduler | None = None,
        controller: SparsityController | None = None,
        callbacks: Sequence[Callback] = (),
        eval_every: int = 1,
        sparse_backend: str | None = None,
        n_workers: int = 0,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.train_loader = train_loader
        self.test_loader = test_loader
        self.scheduler = scheduler
        self.controller = controller
        self.callbacks = list(callbacks)
        self.eval_every = max(1, int(eval_every))
        self.sparse_backend = sparse_backend
        self.n_workers = int(n_workers)
        self.history = History()
        self.global_step = 0
        self._worker_pool = None
        # Mid-epoch bookkeeping for step-granularity checkpoints: while an
        # epoch is running this holds {"epoch", "loader_rng_epoch_start",
        # "batches_done", "losses", "accuracies"}; None between epochs.
        self._epoch_progress: dict | None = None
        # Partial-epoch state restored by load_state_dict, consumed by the
        # next _train_epoch call.
        self._pending_resume: dict | None = None
        self._restored = False

    def _install_sparse_backend(self) -> None:
        if self.sparse_backend is None or self.controller is None:
            return
        from repro.sparse.kernels import install_training_backends, resolve_mode

        mode = resolve_mode(self.sparse_backend)
        install_training_backends(self.controller.masked, mode=mode)
        if mode != "dense":
            # The engine must know the optimizer it is expected to reset for
            # regrown weights: with sparse coordinate updates, stale momentum
            # at dropped coordinates no longer decays on its own.
            if getattr(self.controller, "optimizer", False) is None:
                self.controller.optimizer = self.optimizer
            self.controller.masked.bind_optimizer(self.optimizer)

    def _open_worker_pool(self):
        if self.n_workers < 2:
            return None
        import multiprocessing as mp

        from repro.parallel import GradientWorkerPool, fork_available

        if not fork_available() or mp.current_process().daemon:
            # No fork, or already inside a sharded seed/sweep worker (which
            # cannot have children): train in-process with identical
            # semantics, one level of parallelism instead of two.
            return None
        masked = self.controller.masked if self.controller is not None else None
        return GradientWorkerPool(
            self.model, self.loss_fn, self.n_workers, masked=masked
        )

    def fit(self, epochs: int) -> History:
        """Train until ``epochs`` *total* epochs are in the history.

        On a freshly constructed trainer that is simply "train for
        ``epochs`` epochs"; on a trainer restored via
        :meth:`load_state_dict` the loop continues from the restored
        position (``len(self.history)`` completed epochs, plus any partial
        epoch), so the same ``fit(epochs)`` call finishes the original
        budget.
        """
        self._install_sparse_backend()
        self._worker_pool = self._open_worker_pool()
        self._warn_if_worker_resume_inexact()
        for callback in self.callbacks:
            callback.bind(self)
        try:
            return self._fit(epochs)
        finally:
            if self._worker_pool is not None:
                self._worker_pool.close()
                self._worker_pool = None

    def _warn_if_worker_resume_inexact(self) -> None:
        """Checkpoint/resume + worker pool + stochastic layers: be loud.

        Gradient workers hold their own replicas of every module RNG
        (dropout streams), re-derived at fork time; those streams are not
        part of the checkpoint, so a resumed pooled run with stochastic
        layers is *not* bitwise-identical to the uninterrupted one.
        Deterministic models (no module RNG draws in forward) are exact.
        """
        if self._worker_pool is None or not _named_module_rngs(self.model):
            return
        from repro.train.checkpoint import CheckpointCallback

        checkpointing = any(
            isinstance(callback, CheckpointCallback) for callback in self.callbacks
        )
        if checkpointing or self._restored:
            warnings.warn(
                "checkpoint/resume with n_workers >= 2 is not bitwise-exact "
                "for models with stochastic layers (worker-side RNG streams "
                "are not checkpointed); see docs/checkpointing.md",
                stacklevel=3,
            )

    def _fit(self, epochs: int) -> History:
        start_epoch = len(self.history.epochs)
        for epoch in range(start_epoch, epochs):
            updates_before = self._mask_update_count()
            train_loss, train_acc, steps_per_sec = self._train_epoch(epoch)
            if self.scheduler is not None:
                self.scheduler.step()
            if self.controller is not None:
                self.controller.on_epoch_end(epoch)

            test_acc = None
            if self.test_loader is not None and (
                (epoch + 1) % self.eval_every == 0 or epoch == epochs - 1
            ):
                test_acc = evaluate_classifier(self.model, self.test_loader)

            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_acc,
                test_accuracy=test_acc,
                learning_rate=self.optimizer.lr,
                sparsity=(
                    self.controller.masked.global_sparsity()
                    if self.controller is not None
                    else None
                ),
                exploration_rate=self._exploration_rate(),
                steps_per_sec=steps_per_sec,
                mask_update_ms=self._mask_update_ms(updates_before),
            )
            self.history.append(record)
            for callback in self.callbacks:
                callback.on_epoch_end(record)
            if any(callback.should_stop() for callback in self.callbacks):
                break
        return self.history

    # ------------------------------------------------------------------
    def _train_epoch(self, epoch: int) -> tuple[float, float, float]:
        self.model.train()
        resume = self._pending_resume
        self._pending_resume = None
        if resume is not None and resume.get("epoch") == epoch:
            # Rewind the data pipeline to the start of the interrupted
            # epoch: the shuffle order and per-batch augmentation draws are
            # regenerated identically, and the already-trained batches are
            # replayed through the loader (advancing its RNG exactly as the
            # original epoch did) without touching the model.
            self.train_loader.rng.bit_generator.state = copy.deepcopy(
                resume["loader_rng_epoch_start"]
            )
            skip = int(resume["batches_done"])
            losses = [float(v) for v in resume["losses"]]
            accuracies = [float(v) for v in resume["accuracies"]]
        else:
            skip = 0
            losses = []
            accuracies = []
        progress = {
            "epoch": epoch,
            "loader_rng_epoch_start": copy.deepcopy(
                self.train_loader.rng.bit_generator.state
            ),
            "batches_done": skip,
            "losses": losses,
            "accuracies": accuracies,
        }
        self._epoch_progress = progress
        steps = 0
        start = time.perf_counter()
        pool = self._worker_pool
        replayed = 0
        try:
            for inputs, targets in self.train_loader:
                if replayed < skip:
                    replayed += 1
                    continue
                self.global_step += 1
                steps += 1
                if self.controller is not None:
                    self.controller.before_backward(self.global_step)
                if pool is not None:
                    # Sharded forward/backward: workers fill the shared
                    # gradient block, the parent owns the averaged gradient
                    # from here on.
                    self.model.zero_grad()
                    batch_loss, batch_acc = pool.step(inputs, targets)
                else:
                    self.model.zero_grad()
                    logits = self.model(inputs)
                    loss = self.loss_fn(logits, targets)
                    loss.backward()
                    batch_loss = loss.item()
                    batch_acc = accuracy(logits, targets)

                skip_step = False
                if self.controller is not None:
                    skip_step = self.controller.on_backward(self.global_step)
                if not skip_step:
                    self.optimizer.step()
                    if self.controller is not None:
                        self.controller.after_step(self.global_step)

                losses.append(batch_loss)
                accuracies.append(batch_acc)
                progress["batches_done"] += 1
                for callback in self.callbacks:
                    callback.on_step_end(self.global_step)
        finally:
            self._epoch_progress = None
        elapsed = time.perf_counter() - start
        steps_per_sec = steps / elapsed if elapsed > 0 else 0.0
        return float(np.mean(losses)), float(np.mean(accuracies)), steps_per_sec

    def _exploration_rate(self) -> float | None:
        coverage = getattr(self.controller, "coverage", None)
        if coverage is None:
            return None
        return coverage.exploration_rate()

    def _mask_update_count(self) -> int:
        records = getattr(self.controller, "history", None)
        return len(records) if records is not None else 0

    def _mask_update_ms(self, updates_before: int) -> float | None:
        """Mean wall time of this epoch's drop-and-grow rounds, if any.

        Only controllers with a mask-update ``history`` (the DST engine)
        report it; fixed-mask / magnitude-pruning controllers leave the
        column ``None``.
        """
        records = getattr(self.controller, "history", None)
        if records is None:
            return None
        fresh = [
            duration
            for r in records[updates_before:]
            if (duration := getattr(r, "duration_ms", None)) is not None
        ]
        if not fresh:
            return None
        return float(np.mean(fresh))

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete, serializable training state (see module docstring).

        Safe to call at any point — between epochs or from a step-granular
        callback mid-epoch (the partial epoch's progress is included so the
        epoch can resume at the exact batch boundary).
        """
        state: dict = {
            "global_step": self.global_step,
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": (
                self.scheduler.state_dict() if self.scheduler is not None else None
            ),
            "controller": (
                self.controller.state_dict() if self.controller is not None else None
            ),
            "history": self.history.to_list(),
            "rng": {
                "train_loader": copy.deepcopy(
                    self.train_loader.rng.bit_generator.state
                ),
                "modules": {
                    key: copy.deepcopy(rng.bit_generator.state)
                    for key, rng in _named_module_rngs(self.model)
                },
            },
            "callbacks": [
                {"type": type(cb).__name__, "state": cb.state_dict()}
                for cb in self.callbacks
            ],
            "epoch_progress": None,
        }
        progress = self._epoch_progress
        if progress is not None:
            state["epoch_progress"] = {
                "epoch": progress["epoch"],
                "batches_done": progress["batches_done"],
                "loader_rng_epoch_start": copy.deepcopy(
                    progress["loader_rng_epoch_start"]
                ),
                "losses": np.asarray(progress["losses"], dtype=np.float64),
                "accuracies": np.asarray(progress["accuracies"], dtype=np.float64),
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (resume-exact).

        The trainer must have been constructed with the same configuration
        (model architecture, optimizer/scheduler/controller types, data
        pipeline) as the one that produced the state; only the evolving
        state is restored.
        """
        if (state["controller"] is None) != (self.controller is None):
            raise ValueError(
                "checkpoint and trainer disagree on controller presence"
            )
        if (state["scheduler"] is None) != (self.scheduler is None):
            raise ValueError(
                "checkpoint and trainer disagree on scheduler presence"
            )
        self.model.load_state_dict(state["model"])
        if self.controller is not None:
            self.controller.load_state_dict(state["controller"])
        self.optimizer.load_state_dict(state["optimizer"])
        if self.scheduler is not None:
            self.scheduler.load_state_dict(state["scheduler"])
        self.history = History.from_list(state["history"])
        self.global_step = int(state["global_step"])

        rng_state = state.get("rng", {})
        loader_state = rng_state.get("train_loader")
        if loader_state is not None:
            self.train_loader.rng.bit_generator.state = copy.deepcopy(loader_state)
        module_states = rng_state.get("modules", {})
        for key, rng in _named_module_rngs(self.model):
            if key in module_states:
                rng.bit_generator.state = copy.deepcopy(module_states[key])

        # Callback state is matched positionally; a *stateful* entry that
        # cannot be matched is a configuration drift worth shouting about
        # (stateless mismatches — e.g. a dropped CheckpointCallback — are
        # harmless).
        for index, saved in enumerate(state.get("callbacks", [])):
            if saved["state"] is None:
                continue
            callback = self.callbacks[index] if index < len(self.callbacks) else None
            if callback is None or type(callback).__name__ != saved["type"]:
                found = "no callback" if callback is None else repr(
                    type(callback).__name__
                )
                warnings.warn(
                    f"checkpoint callback state of type {saved['type']!r} at "
                    f"position {index} was not restored ({found} there in the "
                    "resumed trainer); construct the resumed trainer with the "
                    "same callback list",
                    stacklevel=2,
                )
                continue
            callback.load_state_dict(saved["state"])

        self._restored = True
        self._pending_resume = None
        progress = state.get("epoch_progress")
        if progress is not None:
            self._pending_resume = {
                "epoch": int(progress["epoch"]),
                "batches_done": int(progress["batches_done"]),
                "loader_rng_epoch_start": copy.deepcopy(
                    progress["loader_rng_epoch_start"]
                ),
                "losses": np.asarray(progress["losses"], dtype=np.float64),
                "accuracies": np.asarray(progress["accuracies"], dtype=np.float64),
            }
