"""Training loop with sparse-training hooks.

The :class:`Trainer` implements the iteration structure of Algorithm 1:
forward → backward → ``controller.on_backward(t)``; when the controller
signals a mask-update step the optimizer step is *skipped* for that
iteration (the paper replaces the SGD update with the drop-and-grow), and
otherwise gradients outside the mask have already been zeroed so only
active weights move.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.loader import DataLoader
from repro.metrics.accuracy import accuracy
from repro.nn.module import Module
from repro.optim.lr_scheduler import LRScheduler
from repro.optim.sgd import Optimizer
from repro.sparse.engine import SparsityController
from repro.train.callbacks import Callback
from repro.train.history import EpochRecord, History

__all__ = ["Trainer", "evaluate_classifier"]


def evaluate_classifier(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy over a loader (eval mode, no graph recording)."""
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for inputs, targets in loader:
            logits = model(inputs)
            predictions = logits.data.argmax(axis=1)
            correct += int((predictions == targets).sum())
            total += len(targets)
    model.train(was_training)
    return correct / max(total, 1)


class Trainer:
    """Epoch-based trainer for classification models.

    Parameters
    ----------
    model, optimizer, loss_fn:
        The usual triple; ``loss_fn(logits, targets) -> Tensor``.
    train_loader, test_loader:
        Data; ``test_loader=None`` skips evaluation.
    scheduler:
        Optional LR scheduler stepped once per epoch (paper setup).
    controller:
        Optional :class:`~repro.sparse.engine.SparsityController` (fixed
        mask, drop-and-grow engine, GMP, STR...).
    callbacks:
        Epoch-end hooks.
    eval_every:
        Evaluate every N epochs (always evaluates on the final epoch).
    sparse_backend:
        Optional execution backend for the controller's masked layers:
        ``"auto"``, ``"csr"`` or ``"dense"`` (see
        :mod:`repro.sparse.kernels`).  Installed at the start of ``fit``;
        non-dense modes also bind the optimizer for sparse coordinate
        updates.  ``None`` (default) leaves the model untouched.
    n_workers:
        When >= 2 (and the platform supports ``fork``), each training
        mini-batch is split across that many persistent worker processes
        (:class:`~repro.parallel.GradientWorkerPool`); the averaged
        gradient drives the optimizer and all DST decisions in this
        process, so drop/grow semantics are unchanged.  ``0``/``1`` (and
        unsupported platforms) train in-process.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable,
        train_loader: DataLoader,
        test_loader: DataLoader | None = None,
        scheduler: LRScheduler | None = None,
        controller: SparsityController | None = None,
        callbacks: Sequence[Callback] = (),
        eval_every: int = 1,
        sparse_backend: str | None = None,
        n_workers: int = 0,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.train_loader = train_loader
        self.test_loader = test_loader
        self.scheduler = scheduler
        self.controller = controller
        self.callbacks = list(callbacks)
        self.eval_every = max(1, int(eval_every))
        self.sparse_backend = sparse_backend
        self.n_workers = int(n_workers)
        self.history = History()
        self.global_step = 0
        self._worker_pool = None

    def _install_sparse_backend(self) -> None:
        if self.sparse_backend is None or self.controller is None:
            return
        from repro.sparse.kernels import install_training_backends, resolve_mode

        mode = resolve_mode(self.sparse_backend)
        install_training_backends(self.controller.masked, mode=mode)
        if mode != "dense":
            # The engine must know the optimizer it is expected to reset for
            # regrown weights: with sparse coordinate updates, stale momentum
            # at dropped coordinates no longer decays on its own.
            if getattr(self.controller, "optimizer", False) is None:
                self.controller.optimizer = self.optimizer
            self.controller.masked.bind_optimizer(self.optimizer)

    def _open_worker_pool(self):
        if self.n_workers < 2:
            return None
        import multiprocessing as mp

        from repro.parallel import GradientWorkerPool, fork_available

        if not fork_available() or mp.current_process().daemon:
            # No fork, or already inside a sharded seed/sweep worker (which
            # cannot have children): train in-process with identical
            # semantics, one level of parallelism instead of two.
            return None
        masked = self.controller.masked if self.controller is not None else None
        return GradientWorkerPool(
            self.model, self.loss_fn, self.n_workers, masked=masked
        )

    def fit(self, epochs: int) -> History:
        """Train for ``epochs`` epochs; returns the history."""
        self._install_sparse_backend()
        self._worker_pool = self._open_worker_pool()
        try:
            return self._fit(epochs)
        finally:
            if self._worker_pool is not None:
                self._worker_pool.close()
                self._worker_pool = None

    def _fit(self, epochs: int) -> History:
        for epoch in range(epochs):
            train_loss, train_acc, steps_per_sec = self._train_epoch()
            if self.scheduler is not None:
                self.scheduler.step()
            if self.controller is not None:
                self.controller.on_epoch_end(epoch)

            test_acc = None
            if self.test_loader is not None and (
                (epoch + 1) % self.eval_every == 0 or epoch == epochs - 1
            ):
                test_acc = evaluate_classifier(self.model, self.test_loader)

            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_acc,
                test_accuracy=test_acc,
                learning_rate=self.optimizer.lr,
                sparsity=(
                    self.controller.masked.global_sparsity()
                    if self.controller is not None
                    else None
                ),
                exploration_rate=self._exploration_rate(),
                steps_per_sec=steps_per_sec,
            )
            self.history.append(record)
            for callback in self.callbacks:
                callback.on_epoch_end(record)
            if any(callback.should_stop() for callback in self.callbacks):
                break
        return self.history

    # ------------------------------------------------------------------
    def _train_epoch(self) -> tuple[float, float, float]:
        self.model.train()
        losses = []
        accuracies = []
        steps = 0
        start = time.perf_counter()
        pool = self._worker_pool
        for inputs, targets in self.train_loader:
            self.global_step += 1
            steps += 1
            if pool is not None:
                # Sharded forward/backward: workers fill the shared gradient
                # block, the parent owns the averaged gradient from here on.
                self.model.zero_grad()
                batch_loss, batch_acc = pool.step(inputs, targets)
            else:
                self.model.zero_grad()
                logits = self.model(inputs)
                loss = self.loss_fn(logits, targets)
                loss.backward()
                batch_loss = loss.item()
                batch_acc = accuracy(logits, targets)

            skip_step = False
            if self.controller is not None:
                skip_step = self.controller.on_backward(self.global_step)
            if not skip_step:
                self.optimizer.step()
                if self.controller is not None:
                    self.controller.after_step(self.global_step)

            losses.append(batch_loss)
            accuracies.append(batch_acc)
        elapsed = time.perf_counter() - start
        steps_per_sec = steps / elapsed if elapsed > 0 else 0.0
        return float(np.mean(losses)), float(np.mean(accuracies)), steps_per_sec

    def _exploration_rate(self) -> float | None:
        coverage = getattr(self.controller, "coverage", None)
        if coverage is None:
            return None
        return coverage.exploration_rate()
