"""Training loggers (CSV history export, console progress)."""

from __future__ import annotations

import csv
import pathlib
import sys
from typing import IO

from repro.train.callbacks import Callback
from repro.train.history import EpochRecord

__all__ = ["CSVLogger", "ConsoleLogger"]

_FIELDS = (
    "epoch",
    "train_loss",
    "train_accuracy",
    "test_accuracy",
    "learning_rate",
    "sparsity",
    "exploration_rate",
)


class CSVLogger(Callback):
    """Append one CSV row per epoch to ``path`` (header written once)."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._initialized = self.path.exists() and self.path.stat().st_size > 0

    def on_epoch_end(self, record: EpochRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=_FIELDS)
            if not self._initialized:
                writer.writeheader()
                self._initialized = True
            writer.writerow({field: getattr(record, field) for field in _FIELDS})


class ConsoleLogger(Callback):
    """Print a one-line summary per epoch."""

    def __init__(self, stream: IO[str] | None = None, every: int = 1):
        self.stream = stream if stream is not None else sys.stdout
        self.every = max(1, int(every))

    def on_epoch_end(self, record: EpochRecord) -> None:
        if record.epoch % self.every:
            return
        parts = [
            f"epoch {record.epoch:3d}",
            f"loss {record.train_loss:.4f}",
            f"train_acc {record.train_accuracy:.3f}",
        ]
        if record.test_accuracy is not None:
            parts.append(f"test_acc {record.test_accuracy:.3f}")
        parts.append(f"lr {record.learning_rate:.4f}")
        if record.sparsity is not None:
            parts.append(f"sparsity {record.sparsity:.3f}")
        if record.exploration_rate is not None:
            parts.append(f"R {record.exploration_rate:.3f}")
        print("  ".join(parts), file=self.stream)
