"""Trainer callbacks (epoch- and step-granularity hooks)."""

from __future__ import annotations

from typing import Callable

from repro.train.history import EpochRecord

__all__ = ["Callback", "LambdaCallback", "EarlyStopping"]


class Callback:
    """Base callback: override any subset of hooks.

    ``bind`` is called once at the start of :meth:`Trainer.fit` with the
    trainer itself, so callbacks that need training state (e.g. the
    checkpoint callback) can reach it without threading it through every
    hook.  ``state_dict``/``load_state_dict`` let a callback's evolving
    state survive a checkpoint/restore cycle; return ``None`` (the default)
    for stateless callbacks.
    """

    def bind(self, trainer) -> None:
        """Called by ``Trainer.fit`` before training starts."""

    def on_step_end(self, step: int) -> None:
        """Called after every training iteration (``step`` is global)."""

    def on_epoch_end(self, record: EpochRecord) -> None:
        """Called after each epoch's evaluation."""

    def should_stop(self) -> bool:
        """Return True to stop training early."""
        return False

    def state_dict(self) -> dict | None:
        """Serializable snapshot of the callback's state (None = stateless)."""

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""


class LambdaCallback(Callback):
    """Wrap a plain function as an epoch-end callback."""

    def __init__(self, on_epoch_end: Callable[[EpochRecord], None]):
        self._fn = on_epoch_end

    def on_epoch_end(self, record: EpochRecord) -> None:
        self._fn(record)


class EarlyStopping(Callback):
    """Stop when test accuracy has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0):
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = -float("inf")
        self.stale = 0

    def on_epoch_end(self, record: EpochRecord) -> None:
        if record.test_accuracy is None:
            return
        if record.test_accuracy > self.best + self.min_delta:
            self.best = record.test_accuracy
            self.stale = 0
        else:
            self.stale += 1

    def should_stop(self) -> bool:
        return self.stale >= self.patience

    def state_dict(self) -> dict:
        return {"best": self.best, "stale": self.stale}

    def load_state_dict(self, state: dict) -> None:
        self.best = float(state["best"])
        self.stale = int(state["stale"])
