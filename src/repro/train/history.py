"""Training history container."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["EpochRecord", "History"]


@dataclass
class EpochRecord:
    """Metrics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float | None
    learning_rate: float
    sparsity: float | None = None
    exploration_rate: float | None = None
    steps_per_sec: float | None = None
    mask_update_ms: float | None = None

    def to_dict(self) -> dict:
        """Plain-scalar dict (checkpoint serialization)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EpochRecord":
        return cls(**data)


@dataclass
class History:
    """Per-epoch records plus convenience accessors."""

    epochs: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.epochs.append(record)

    @property
    def final_test_accuracy(self) -> float | None:
        for record in reversed(self.epochs):
            if record.test_accuracy is not None:
                return record.test_accuracy
        return None

    @property
    def best_test_accuracy(self) -> float | None:
        scores = [r.test_accuracy for r in self.epochs if r.test_accuracy is not None]
        return max(scores) if scores else None

    def series(self, attribute: str) -> list:
        """Column extraction, e.g. ``history.series("train_loss")``."""
        return [getattr(record, attribute) for record in self.epochs]

    def __len__(self) -> int:
        return len(self.epochs)

    def to_list(self) -> list[dict]:
        """Plain list of per-epoch dicts (checkpoint serialization)."""
        return [record.to_dict() for record in self.epochs]

    @classmethod
    def from_list(cls, records: list[dict]) -> "History":
        return cls(epochs=[EpochRecord.from_dict(r) for r in records])
