"""Resume-exact training checkpoints (versioned npz, atomic writes).

A *training checkpoint* is the complete state returned by
:meth:`repro.train.Trainer.state_dict` — model parameters, masks, the
per-layer :class:`~repro.sparse.budget.DensityBudget` allocations (which
drift under cross-layer rebalancing, so they cannot be reconstructed from
the run configuration), optimizer moments, scheduler position, DST engine
state (coverage counters, engine RNG, drop-and-grow history), epoch
history, data-pipeline RNG states and, mid-epoch, the partial epoch's
progress.  Restoring it into a trainer built from the same configuration
continues the run *bitwise identically* to an uninterrupted one.

On-disk format (version 1)
--------------------------
A single ``.npz`` archive:

* every ndarray in the state tree is stored as its own compressed entry
  (``a0``, ``a1``, ...) in native dtype;
* everything else (scalars, RNG bit-generator states, history records) is
  one JSON document under ``__checkpoint__``, with ndarray leaves replaced
  by ``{"__ndarray__": "<entry>"}`` placeholders;
* the JSON document carries ``format_version`` — loaders refuse versions
  they do not understand instead of mis-restoring.

Writes are atomic: the archive is written to a temporary file in the target
directory, flushed and fsynced, then ``os.replace``d into place — a reader
(or a resumed run) never observes a torn checkpoint, no matter when the
writer was killed.

:class:`CheckpointCallback` wires this into the trainer at epoch and/or
step granularity with optional ``keep_last`` retention;
:func:`latest_checkpoint` finds the newest checkpoint in a directory for
``--resume``-style entry points.
"""

from __future__ import annotations

import io
import json
import os
import pathlib

import numpy as np

from repro.train.callbacks import Callback
from repro.train.history import EpochRecord

__all__ = [
    "FORMAT_VERSION",
    "CheckpointCallback",
    "atomic_write_bytes",
    "decode_state_tree",
    "encode_state_tree",
    "latest_checkpoint",
    "list_checkpoints",
    "load_training_checkpoint",
    "save_training_checkpoint",
]

FORMAT_VERSION = 1

_META_KEY = "__checkpoint__"
_ARRAY_MARKER = "__ndarray__"


def _encode(node, arrays: dict) -> object:
    """Replace ndarray leaves with archive placeholders, JSON-ify the rest."""
    if isinstance(node, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {_ARRAY_MARKER: key}
    if isinstance(node, dict):
        encoded = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"checkpoint dict keys must be str, got {type(key).__name__}"
                )
            if key == _ARRAY_MARKER:
                raise ValueError(f"reserved key {_ARRAY_MARKER!r} in state dict")
            encoded[key] = _encode(value, arrays)
        return encoded
    if isinstance(node, (list, tuple)):
        return [_encode(value, arrays) for value in node]
    if isinstance(node, np.generic):  # numpy scalar -> native scalar
        return node.item()
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise TypeError(f"cannot checkpoint object of type {type(node).__name__}")


def _decode(node, archive) -> object:
    if isinstance(node, dict):
        if set(node) == {_ARRAY_MARKER}:
            return archive[node[_ARRAY_MARKER]]
        return {key: _decode(value, archive) for key, value in node.items()}
    if isinstance(node, list):
        return [_decode(value, archive) for value in node]
    return node


def encode_state_tree(state) -> tuple[object, dict]:
    """Split a state tree into a JSON-able tree plus its ndarray leaves.

    Public form of the checkpoint codec, shared with the serving artifact
    format (:mod:`repro.serve.artifact`): returns ``(tree, arrays)`` where
    ``tree`` is JSON-serializable with every ndarray leaf replaced by an
    archive placeholder, and ``arrays`` maps placeholder keys to the
    original arrays.
    """
    arrays: dict[str, np.ndarray] = {}
    return _encode(state, arrays), arrays


def decode_state_tree(tree, archive) -> object:
    """Inverse of :func:`encode_state_tree` (``archive`` maps key->array)."""
    return _decode(tree, archive)


def atomic_write_bytes(path, payload: bytes) -> pathlib.Path:
    """Write ``payload`` to ``path`` atomically (tmp + fsync + rename).

    The temporary file lives next to the target so ``os.replace`` stays on
    one filesystem (and therefore atomic); a killed writer leaves at most a
    stale ``*.tmp-<pid>`` file, never a torn target.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def save_training_checkpoint(path, state: dict) -> pathlib.Path:
    """Write ``state`` (a ``Trainer.state_dict()`` tree) to ``path`` atomically."""
    arrays: dict[str, np.ndarray] = {}
    tree = _encode(state, arrays)
    meta = json.dumps({"format_version": FORMAT_VERSION, "state": tree})
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **{_META_KEY: np.array(meta)}, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())


def load_training_checkpoint(path) -> dict:
    """Load a checkpoint written by :func:`save_training_checkpoint`.

    Returns the state tree for ``Trainer.load_state_dict``.  Raises
    ``ValueError`` on unknown format versions.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive[_META_KEY].item()))
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {path} has format version {version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        return _decode(meta["state"], archive)


def list_checkpoints(directory, prefix: str = "ckpt") -> list[tuple[int, pathlib.Path]]:
    """``(step, path)`` of every checkpoint in ``directory``, step-ascending."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for candidate in directory.glob(f"{prefix}-*.npz"):
        stem = candidate.name[len(prefix) + 1 : -len(".npz")]
        try:
            found.append((int(stem), candidate))
        except ValueError:
            continue
    found.sort()
    return found


def latest_checkpoint(directory, prefix: str = "ckpt") -> pathlib.Path | None:
    """Newest checkpoint (highest global step) in ``directory``, or None."""
    checkpoints = list_checkpoints(directory, prefix)
    return checkpoints[-1][1] if checkpoints else None


class CheckpointCallback(Callback):
    """Save training checkpoints on a step and/or epoch cadence.

    Parameters
    ----------
    directory:
        Where checkpoints are written (created if missing).  Files are
        named ``<prefix>-<global_step>.npz``, so an epoch-boundary save and
        a step save at the same step coalesce into one file.
    every_n_epochs:
        Save after every N completed epochs (``None`` disables the epoch
        cadence).  Default 1.
    every_n_steps:
        Additionally save every N global training steps — mid-epoch
        checkpoints carry the partial epoch's progress, so a resume
        continues at the exact batch boundary.  ``None`` (default)
        disables the step cadence.
    keep_last:
        Retain only the newest ``keep_last`` checkpoints, pruning older
        ones after each save (``None`` keeps everything).
    """

    def __init__(
        self,
        directory,
        every_n_epochs: int | None = 1,
        every_n_steps: int | None = None,
        keep_last: int | None = None,
        prefix: str = "ckpt",
    ):
        if every_n_epochs is None and every_n_steps is None:
            raise ValueError("enable at least one of every_n_epochs/every_n_steps")
        for name, value in (
            ("every_n_epochs", every_n_epochs),
            ("every_n_steps", every_n_steps),
            ("keep_last", keep_last),
        ):
            if value is not None and int(value) < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.directory = pathlib.Path(directory)
        self.every_n_epochs = None if every_n_epochs is None else int(every_n_epochs)
        self.every_n_steps = None if every_n_steps is None else int(every_n_steps)
        self.keep_last = None if keep_last is None else int(keep_last)
        self.prefix = prefix
        self.last_path: pathlib.Path | None = None
        self._trainer = None

    def bind(self, trainer) -> None:
        self._trainer = trainer

    def on_step_end(self, step: int) -> None:
        if self.every_n_steps is not None and step % self.every_n_steps == 0:
            self.save()

    def on_epoch_end(self, record: EpochRecord) -> None:
        if (
            self.every_n_epochs is not None
            and (record.epoch + 1) % self.every_n_epochs == 0
        ):
            self.save()

    def save(self) -> pathlib.Path:
        """Checkpoint the bound trainer's current state now."""
        if self._trainer is None:
            raise RuntimeError(
                "CheckpointCallback is not bound to a trainer "
                "(it must run via Trainer.fit, or call bind() first)"
            )
        step = self._trainer.global_step
        path = self.directory / f"{self.prefix}-{step:010d}.npz"
        self.last_path = save_training_checkpoint(path, self._trainer.state_dict())
        self._prune()
        return self.last_path

    def _prune(self) -> None:
        if self.keep_last is None:
            return
        for _, stale in list_checkpoints(self.directory, self.prefix)[: -self.keep_last]:
            stale.unlink(missing_ok=True)
