"""Training harness."""

from repro.train.trainer import Trainer, evaluate_classifier
from repro.train.history import EpochRecord, History
from repro.train.callbacks import Callback, EarlyStopping, LambdaCallback
from repro.train.checkpoint import (
    CheckpointCallback,
    latest_checkpoint,
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.train.loggers import ConsoleLogger, CSVLogger

__all__ = [
    "Trainer",
    "evaluate_classifier",
    "History",
    "EpochRecord",
    "Callback",
    "EarlyStopping",
    "LambdaCallback",
    "CheckpointCallback",
    "latest_checkpoint",
    "load_training_checkpoint",
    "save_training_checkpoint",
    "CSVLogger",
    "ConsoleLogger",
]
