"""Training harness."""

from repro.train.trainer import Trainer, evaluate_classifier
from repro.train.history import EpochRecord, History
from repro.train.callbacks import Callback, EarlyStopping, LambdaCallback
from repro.train.loggers import ConsoleLogger, CSVLogger

__all__ = [
    "Trainer",
    "evaluate_classifier",
    "History",
    "EpochRecord",
    "Callback",
    "EarlyStopping",
    "LambdaCallback",
    "CSVLogger",
    "ConsoleLogger",
]
