"""Exploration / coverage analysis, including the Figure-1 style cohort study.

Figure 1 of the paper shows that non-active weights with *small gradients*
at a mask-update step are ignored by greedy (RigL-style) growth, yet later
become high-magnitude — i.e. important.  :class:`GrownWeightCohortTracker`
quantifies this: at each mask update it records, for every weight the engine
grew, whether a pure-gradient rule would have selected it (its |grad| rank
among the inactive candidates); at the *next* update it measures the grown
weights' magnitude rank among active weights.  The Figure-1 bench then
reports, per layer, the fraction of grown-weights-that-became-important that
greedy growth would have missed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.engine import DynamicSparseEngine
from repro.sparse.masked import MaskedModel

__all__ = ["CohortRecord", "GrownWeightCohortTracker", "IgnoredImportantAnalysis"]


@dataclass
class CohortRecord:
    """One layer's grown cohort at one mask-update round."""

    round_index: int
    layer: str
    grown_idx: np.ndarray          # flat indices grown this round
    greedy_selected: np.ndarray    # bool: would pure top-|grad| have grown it?
    became_important: np.ndarray | None = None  # filled at the next round


class GrownWeightCohortTracker:
    """Track grown weights' gradient ranks and later magnitude ranks.

    Route every mask update through :meth:`observe_update` (with fresh dense
    gradients on the parameters).  Cohorts resolve — i.e. their
    ``became_important`` flags are measured — either at the *next* mask
    update (``horizon="next_update"``, one ΔT later, as in Figure 1's
    t=1000 → t=2000 snapshots) or at the end of training
    (``horizon="end"``, requiring a :meth:`finalize` call), which matches
    the paper's "as training continues" framing and is the right choice
    when ΔT is only a few steps.

    Parameters
    ----------
    masked:
        The masked model whose updates are observed.
    important_quantile:
        A grown weight "became important" when its |w| reaches this
        quantile of the layer's active weights (and it is still active).
    horizon:
        ``"next_update"`` or ``"end"``.
    """

    def __init__(
        self,
        masked: MaskedModel,
        important_quantile: float = 0.5,
        horizon: str = "next_update",
    ):
        if horizon not in ("next_update", "end"):
            raise ValueError(f"unknown horizon {horizon!r}")
        self.masked = masked
        self.important_quantile = float(important_quantile)
        self.horizon = horizon
        self.records: list[CohortRecord] = []
        self._pending: list[CohortRecord] = []

    def observe_update(self, engine: DynamicSparseEngine, step: int) -> None:
        """Snapshot masks+grads, run the engine's update, and record cohorts."""
        before = {t.name: t.mask.copy() for t in self.masked.targets}
        grads = {
            t.name: (t.param.grad.copy() if t.param.grad is not None else None)
            for t in self.masked.targets
        }
        record = engine.mask_update(step)
        if self.horizon == "next_update":
            self._resolve_pending()
        for target in self.masked.targets:
            old_mask = before[target.name].reshape(-1)
            new_mask = target.mask.reshape(-1)
            grown = np.flatnonzero(~old_mask & new_mask)
            if grown.size == 0:
                continue
            grad = grads[target.name]
            if grad is None:
                continue
            flat_grad = np.abs(grad.reshape(-1))
            # Greedy rule: top-k |grad| among previously-inactive candidates.
            candidates = np.flatnonzero(~old_mask)
            k = grown.size
            if candidates.size <= k:
                greedy_set = set(candidates.tolist())
            else:
                order = np.argpartition(-flat_grad[candidates], k - 1)[:k]
                greedy_set = set(candidates[order].tolist())
            greedy_selected = np.array([idx in greedy_set for idx in grown])
            self._pending.append(
                CohortRecord(
                    round_index=record.round_index,
                    layer=target.name,
                    grown_idx=grown,
                    greedy_selected=greedy_selected,
                )
            )

    def finalize(self) -> None:
        """Resolve all still-pending cohorts against the current weights.

        Call once after training when ``horizon="end"``.
        """
        self._resolve_pending()

    def _resolve_pending(self) -> None:
        """Measure magnitude ranks of the previous round's cohort."""
        if not self._pending:
            return
        by_layer = {t.name: t for t in self.masked.targets}
        for record in self._pending:
            target = by_layer[record.layer]
            weights = np.abs(target.param.data.reshape(-1))
            active = weights[target.mask.reshape(-1)]
            if active.size == 0:
                continue
            threshold = np.quantile(active, self.important_quantile)
            still_active = target.mask.reshape(-1)[record.grown_idx]
            record.became_important = (weights[record.grown_idx] >= threshold) & still_active
            self.records.append(record)
        self._pending = []

    # ------------------------------------------------------------------
    # summaries (the Figure 1 numbers)
    # ------------------------------------------------------------------
    def ignored_important_fraction_by_layer(self) -> dict[str, float]:
        """Per layer: of grown weights that became important, the fraction a
        greedy rule would NOT have grown (Figure 1's 'ignored' weights)."""
        ignored: dict[str, list[float]] = {}
        for record in self.records:
            if record.became_important is None:
                continue
            important = record.became_important
            if important.sum() == 0:
                continue
            missed = (~record.greedy_selected) & important
            ignored.setdefault(record.layer, []).append(
                float(missed.sum() / important.sum())
            )
        return {layer: float(np.mean(values)) for layer, values in ignored.items()}

    def layers_with_high_ignored_fraction(self, threshold: float = 0.9) -> int:
        """Count of layers whose average ignored fraction exceeds ``threshold``
        (the paper reports >90% in 12 of 16 conv layers)."""
        fractions = self.ignored_important_fraction_by_layer()
        return sum(1 for value in fractions.values() if value > threshold)


@dataclass
class _RoundSnapshot:
    """Per-layer snapshot of one mask-update round (pre-update state)."""

    round_index: int
    inactive: np.ndarray        # bool: weights inactive before the update
    greedy_topk: np.ndarray     # flat indices the greedy rule would grow
    k: int


class IgnoredImportantAnalysis:
    """The §I claim: greedy growth ignores inactive-but-important weights.

    The paper quantifies Figure 1 as ">90% of non-active but important
    weights are ignored in 12 out of 16 convolutional layers": at a mask
    update, the greedy (top-|grad|) candidate set covers only a small part
    of the inactive weights that *later become important* (high magnitude
    once DST-EE's exploration grows them).

    Protocol: call :meth:`observe_update` instead of ``engine.mask_update``
    during training (it snapshots the pre-update inactive set and the
    greedy top-k per layer, then delegates to the engine), and
    :meth:`finalize` after training.  ``ignored_fraction_by_layer`` then
    reports, per layer and averaged over rounds, the fraction of
    eventually-important pre-update-inactive weights missed by the greedy
    rule at that round.
    """

    def __init__(self, masked: MaskedModel, important_quantile: float = 0.5):
        self.masked = masked
        self.important_quantile = float(important_quantile)
        self._snapshots: dict[str, list[_RoundSnapshot]] = {
            t.name: [] for t in masked.targets
        }
        self._important: dict[str, np.ndarray] | None = None

    def observe_update(self, engine: DynamicSparseEngine, step: int) -> None:
        """Snapshot pre-update state, then run the engine's mask update.

        The stored "non-active" set matches Figure 1's red-line weights:
        weights that are inactive *and remain inactive through this round's
        update* (weights grown this round are the blue lines — by
        definition not ignored).
        """
        round_index = engine.coverage.rounds + 1
        pending: list[tuple[str, np.ndarray, np.ndarray, int]] = []
        for target in self.masked.targets:
            grad = target.param.grad
            if grad is None:
                continue
            flat_mask = target.mask.reshape(-1)
            inactive = ~flat_mask
            candidates = np.flatnonzero(inactive)
            if candidates.size == 0:
                continue
            k = min(
                int(engine.drop_schedule(step) * int(flat_mask.sum())),
                candidates.size,
            )
            if k <= 0:
                continue
            flat_grad = np.abs(grad.reshape(-1))
            order = np.argpartition(-flat_grad[candidates], k - 1)[:k]
            pending.append((target.name, inactive.copy(), candidates[order], k))
        engine.mask_update(step)
        post_inactive = {
            t.name: ~t.mask.reshape(-1) for t in self.masked.targets
        }
        for name, inactive, greedy_topk, k in pending:
            self._snapshots[name].append(
                _RoundSnapshot(
                    round_index=round_index,
                    inactive=inactive & post_inactive[name],
                    greedy_topk=greedy_topk,
                    k=k,
                )
            )

    def finalize(self) -> None:
        """Freeze the final importance sets (call once after training)."""
        self._important = {}
        for target in self.masked.targets:
            weights = np.abs(target.param.data.reshape(-1))
            flat_mask = target.mask.reshape(-1)
            active_values = weights[flat_mask]
            if active_values.size == 0:
                self._important[target.name] = np.zeros_like(flat_mask)
                continue
            threshold = np.quantile(active_values, self.important_quantile)
            self._important[target.name] = flat_mask & (weights >= threshold)

    def ignored_fraction_by_layer(self) -> dict[str, float]:
        """Per layer: mean over rounds of |important∩inactive \\ greedy| / |important∩inactive|."""
        if self._important is None:
            raise RuntimeError("call finalize() after training first")
        fractions: dict[str, float] = {}
        for name, snapshots in self._snapshots.items():
            important = self._important[name]
            per_round = []
            for snap in snapshots:
                eventually_important = important & snap.inactive
                count = int(eventually_important.sum())
                if count == 0:
                    continue
                greedy = np.zeros_like(important)
                greedy[snap.greedy_topk] = True
                missed = int((eventually_important & ~greedy).sum())
                per_round.append(missed / count)
            if per_round:
                fractions[name] = float(np.mean(per_round))
        return fractions

    def layers_above(self, threshold: float = 0.9) -> int:
        """Number of layers whose mean ignored fraction exceeds ``threshold``."""
        return sum(
            1 for value in self.ignored_fraction_by_layer().values()
            if value > threshold
        )
