"""Evaluation metrics: accuracy, exploration/coverage, exploitation, convergence."""

from repro.metrics.accuracy import accuracy, binary_accuracy, topk_accuracy
from repro.metrics.exploration import (
    CohortRecord,
    GrownWeightCohortTracker,
    IgnoredImportantAnalysis,
)
from repro.metrics.exploitation import exploitation_degree, loss_delta_for_growth
from repro.metrics.convergence import (
    GradientNormTracker,
    fit_decay_rate,
    mask_incurred_error,
)

__all__ = [
    "accuracy",
    "topk_accuracy",
    "binary_accuracy",
    "CohortRecord",
    "GrownWeightCohortTracker",
    "IgnoredImportantAnalysis",
    "exploitation_degree",
    "loss_delta_for_growth",
    "GradientNormTracker",
    "fit_decay_rate",
    "mask_incurred_error",
]
