"""Per-weight trajectory recording (the raw data behind Figure 1a/1b).

Figure 1 plots individual weight trajectories: a weight whose gradient is
small at a mask update (red line — ignored by greedy growth) against one
with a large gradient (blue line — grown), and shows the red weight
becoming important later under DST-EE.  :class:`WeightTrajectoryRecorder`
captures exactly that data: per selected coordinate, the weight value,
dense gradient and active state at every observed step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.masked import MaskedModel

__all__ = ["TrajectoryPoint", "WeightTrajectory", "WeightTrajectoryRecorder"]


@dataclass
class TrajectoryPoint:
    """One observation of one weight."""

    step: int
    value: float
    gradient: float
    active: bool


@dataclass
class WeightTrajectory:
    """The full recorded history of one weight coordinate."""

    layer: str
    flat_index: int
    points: list[TrajectoryPoint] = field(default_factory=list)

    @property
    def steps(self) -> np.ndarray:
        return np.array([p.step for p in self.points])

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self.points])

    @property
    def gradients(self) -> np.ndarray:
        return np.array([p.gradient for p in self.points])

    @property
    def active_mask(self) -> np.ndarray:
        return np.array([p.active for p in self.points])

    def activation_step(self) -> int | None:
        """First observed step at which the weight was active (None if never)."""
        for point in self.points:
            if point.active:
                return point.step
        return None

    def final_magnitude(self) -> float:
        """|w| at the last observation."""
        return abs(self.points[-1].value) if self.points else 0.0


class WeightTrajectoryRecorder:
    """Record (value, gradient, active) trajectories of chosen coordinates.

    Parameters
    ----------
    masked:
        The masked model being trained.
    selection:
        Mapping ``layer name -> flat indices`` of the coordinates to track.
        Use :meth:`select_by_gradient` to pick Figure-1-style pairs.
    """

    def __init__(self, masked: MaskedModel, selection: dict[str, np.ndarray]):
        self.masked = masked
        by_name = {t.name: t for t in masked.targets}
        self.trajectories: list[WeightTrajectory] = []
        for layer, indices in selection.items():
            if layer not in by_name:
                raise KeyError(f"unknown masked layer {layer!r}")
            size = by_name[layer].size
            for index in np.asarray(indices, dtype=np.int64).reshape(-1):
                if not 0 <= index < size:
                    raise IndexError(
                        f"flat index {index} out of range for {layer!r} (size {size})"
                    )
                self.trajectories.append(WeightTrajectory(layer, int(index)))

    @classmethod
    def select_by_gradient(
        cls,
        masked: MaskedModel,
        layer: str,
        n_small: int = 1,
        n_large: int = 1,
    ) -> "WeightTrajectoryRecorder":
        """Pick inactive weights with the smallest/largest |grad| in ``layer``.

        Requires fresh dense gradients.  The small-gradient picks are
        Figure 1's red lines (ignored by greedy growth at this instant);
        the large-gradient picks are the blue lines.
        """
        target = next(t for t in masked.targets if t.name == layer)
        grad = target.param.grad
        if grad is None:
            raise RuntimeError("select_by_gradient requires fresh dense gradients")
        flat_grad = np.abs(grad.reshape(-1))
        inactive = np.flatnonzero(~target.mask.reshape(-1))
        if inactive.size < n_small + n_large:
            raise ValueError(
                f"layer {layer!r} has only {inactive.size} inactive weights"
            )
        order = np.argsort(flat_grad[inactive])
        chosen = np.concatenate([
            inactive[order[:n_small]],            # smallest |grad|
            inactive[order[-n_large:]],           # largest |grad|
        ])
        return cls(masked, {layer: chosen})

    def observe(self, step: int) -> None:
        """Record the tracked coordinates (call once per step or per round)."""
        by_name = {t.name: t for t in self.masked.targets}
        for trajectory in self.trajectories:
            target = by_name[trajectory.layer]
            flat_w = target.param.data.reshape(-1)
            flat_m = target.mask.reshape(-1)
            grad = target.param.grad
            grad_value = (
                float(grad.reshape(-1)[trajectory.flat_index]) if grad is not None else 0.0
            )
            trajectory.points.append(
                TrajectoryPoint(
                    step=step,
                    value=float(flat_w[trajectory.flat_index]),
                    gradient=grad_value,
                    active=bool(flat_m[trajectory.flat_index]),
                )
            )
