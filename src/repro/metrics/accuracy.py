"""Classification accuracy metrics."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["accuracy", "topk_accuracy", "binary_accuracy"]


def _logits_array(logits) -> np.ndarray:
    return logits.data if isinstance(logits, Tensor) else np.asarray(logits)


def accuracy(logits, targets) -> float:
    """Top-1 accuracy of ``(N, C)`` logits against integer targets."""
    predictions = _logits_array(logits).argmax(axis=1)
    targets = np.asarray(targets).reshape(-1)
    return float((predictions == targets).mean())


def topk_accuracy(logits, targets, k: int = 5) -> float:
    """Top-k accuracy (is the true class among the k highest logits?)."""
    scores = _logits_array(logits)
    targets = np.asarray(targets).reshape(-1)
    if k >= scores.shape[1]:
        return 1.0
    topk = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    return float((topk == targets[:, None]).any(axis=1).mean())


def binary_accuracy(logits, targets, threshold: float = 0.0) -> float:
    """Accuracy of binary logits at the given decision threshold.

    A logit above ``threshold`` (0 ⇔ probability 0.5) predicts the positive
    class — the metric the GNN link-prediction tables report.
    """
    scores = _logits_array(logits).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    predictions = (scores > threshold).astype(targets.dtype)
    return float((predictions == targets).mean())
