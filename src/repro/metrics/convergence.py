"""Convergence diagnostics for Proposition 1.

The paper proves that under assumptions 1–3 the expected squared gradient
norm of the masked model decays as ``O(G/√Q + τ²·avg‖W‖²/Q·Q)`` over mask
update rounds ``Q``.  :class:`GradientNormTracker` records
``‖∇F(W⊙M)‖²`` at every mask update; :func:`fit_decay_rate` fits
``log(norm) ≈ a + b·log(Q)`` so the bench can check ``b ≈ -0.5`` (up to the
mask-error floor).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.masked import MaskedModel

__all__ = ["GradientNormTracker", "fit_decay_rate", "mask_incurred_error"]


class GradientNormTracker:
    """Record masked-gradient norms over mask-update rounds."""

    def __init__(self, masked: MaskedModel):
        self.masked = masked
        self.records: list[tuple[int, float]] = []

    def observe(self, round_index: int) -> float:
        """Record ``‖∇F(W⊙M)‖²`` (requires fresh gradients on the params)."""
        total = 0.0
        for target in self.masked.targets:
            grad = target.param.grad
            if grad is None:
                continue
            masked_grad = grad * target.mask
            total += float((masked_grad**2).sum())
        self.records.append((round_index, total))
        return total

    @property
    def series(self) -> tuple[np.ndarray, np.ndarray]:
        rounds = np.array([r for r, _ in self.records], dtype=np.float64)
        norms = np.array([n for _, n in self.records], dtype=np.float64)
        return rounds, norms


def fit_decay_rate(rounds: np.ndarray, norms: np.ndarray) -> tuple[float, float]:
    """Least-squares fit of ``log norms ≈ a + b·log rounds``.

    Returns ``(slope b, intercept a)``.  Proposition 1 predicts ``b ≤ 0``
    with ``b ≈ -0.5`` before the mask-error floor dominates.  The cumulative
    mean is applied first, matching the ``1/Q Σ_q E‖∇F‖²`` form of Eq. 4 and
    taming stochastic gradient noise.
    """
    if len(rounds) < 3:
        raise ValueError("need at least 3 observations to fit a decay rate")
    rounds = np.asarray(rounds, dtype=np.float64)
    norms = np.asarray(norms, dtype=np.float64)
    # Cumulative mean matches the 1/Q Σ E‖∇F‖² form of Eq. 4.
    cumulative = np.cumsum(norms) / np.arange(1, len(norms) + 1)
    valid = (rounds > 0) & (cumulative > 0)
    x = np.log(rounds[valid])
    y = np.log(cumulative[valid])
    coeffs = np.polyfit(x, y, 1)
    return float(coeffs[0]), float(coeffs[1])  # (slope b, intercept a)


def mask_incurred_error(masked: MaskedModel) -> float:
    """Empirical ``τ²``: ``‖W⊙M − W‖² / ‖W‖²`` over the sparsified weights.

    By construction the engine keeps masked weights at zero, so this is 0
    during sparse training; it is meaningful for dense weights about to be
    pruned (Assumption 3) and is exercised by the ADMM pipeline tests.
    """
    num = 0.0
    den = 0.0
    for target in masked.targets:
        w = target.param.data
        masked_w = w * target.mask
        num += float(((masked_w - w) ** 2).sum())
        den += float((w**2).sum())
    return num / max(den, 1e-12)
