"""Loss functions (cross-entropy, BCE with logits, MSE, Huber)."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, ensure_tensor
from repro.nn.module import Module

__all__ = [
    "cross_entropy",
    "lm_cross_entropy",
    "binary_cross_entropy_with_logits",
    "huber_loss",
    "mse_loss",
    "CrossEntropyLoss",
    "BCEWithLogitsLoss",
    "HuberLoss",
    "MSELoss",
]


def cross_entropy(logits: Tensor, targets) -> Tensor:
    """Mean cross-entropy between ``logits`` ``(N, C)`` and integer targets ``(N,)``.

    Fuses a numerically-stable log-softmax with negative log-likelihood
    selection, exactly matching ``torch.nn.functional.cross_entropy`` for
    hard labels with mean reduction.
    """
    logits = ensure_tensor(logits)
    target_idx = np.asarray(targets.data if isinstance(targets, Tensor) else targets)
    target_idx = target_idx.astype(np.int64).reshape(-1)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    n = logits.shape[0]
    if target_idx.shape[0] != n:
        raise ValueError(
            f"batch mismatch: {n} logits rows vs {target_idx.shape[0]} targets"
        )
    log_probs = ops.log_softmax(logits, axis=1)
    picked = ops.getitem(log_probs, (np.arange(n), target_idx))
    return ops.neg(ops.mean(picked))


def lm_cross_entropy(logits: Tensor, targets, ignore_index: int = -1) -> Tensor:
    """Next-token cross-entropy over a vocabulary, skipping ``ignore_index``.

    ``logits`` is ``(N, V)`` (callers flatten ``(B, T, V)`` to rows) and
    ``targets`` is any integer shape with ``N`` elements.  Positions whose
    target equals ``ignore_index`` (padding) contribute neither loss nor
    gradient; the mean runs over the *valid* positions only, so
    ``exp(loss)`` is exactly the per-token perplexity the LM benchmarks
    report.
    """
    logits = ensure_tensor(logits)
    target_idx = np.asarray(targets.data if isinstance(targets, Tensor) else targets)
    target_idx = target_idx.astype(np.int64).reshape(-1)
    if logits.ndim != 2:
        raise ValueError(f"lm_cross_entropy expects 2-D logits, got shape {logits.shape}")
    n = logits.shape[0]
    if target_idx.shape[0] != n:
        raise ValueError(
            f"batch mismatch: {n} logits rows vs {target_idx.shape[0]} targets"
        )
    valid = np.nonzero(target_idx != ignore_index)[0]
    if valid.size == 0:
        raise ValueError("every target position equals ignore_index; loss is undefined")
    log_probs = ops.log_softmax(logits, axis=1)
    picked = ops.getitem(log_probs, (valid, target_idx[valid]))
    return ops.neg(ops.mean(picked))


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Mean BCE over logits, computed in the numerically stable form.

    ``loss = max(z, 0) - z*y + log(1 + exp(-|z|))`` averaged over elements.
    """
    logits = ensure_tensor(logits)
    targets = ensure_tensor(targets)
    relu_z = ops.relu(logits)
    linear_term = ops.mul(logits, targets)
    softplus = ops.log(ops.add(1.0, ops.exp(ops.neg(ops.abs(logits)))))
    loss = ops.add(ops.sub(relu_z, linear_term), softplus)
    return ops.mean(loss)


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    prediction = ensure_tensor(prediction)
    target = ensure_tensor(target)
    diff = ops.sub(prediction, target)
    return ops.mean(ops.mul(diff, diff))


def huber_loss(prediction: Tensor, target, delta: float = 1.0) -> Tensor:
    """Mean Huber loss (quadratic within ``delta``, linear outside).

    ``loss = 0.5 * d**2`` for ``|d| <= delta`` else
    ``delta * (|d| - 0.5 * delta)``, averaged over elements — matching
    ``torch.nn.functional.huber_loss`` with mean reduction.  The standard
    TD-error loss for DQN: large bootstrapped-target errors contribute
    bounded gradients, which keeps early Q-learning stable.
    """
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    prediction = ensure_tensor(prediction)
    target = ensure_tensor(target)
    diff = ops.sub(prediction, target)
    abs_diff = ops.abs(diff)
    quadratic = ops.mul(0.5, ops.mul(diff, diff))
    linear = ops.mul(delta, ops.sub(abs_diff, 0.5 * delta))
    return ops.mean(ops.where(abs_diff.data <= delta, quadratic, linear))


class CrossEntropyLoss(Module):
    """Module wrapper around :func:`cross_entropy`."""

    def forward(self, logits, targets):
        return cross_entropy(logits, targets)


class BCEWithLogitsLoss(Module):
    """Module wrapper around :func:`binary_cross_entropy_with_logits`."""

    def forward(self, logits, targets):
        return binary_cross_entropy_with_logits(logits, targets)


class MSELoss(Module):
    """Module wrapper around :func:`mse_loss`."""

    def forward(self, prediction, target):
        return mse_loss(prediction, target)


class HuberLoss(Module):
    """Module wrapper around :func:`huber_loss`."""

    def __init__(self, delta: float = 1.0):
        super().__init__()
        self.delta = float(delta)

    def forward(self, prediction, target):
        return huber_loss(prediction, target, delta=self.delta)
