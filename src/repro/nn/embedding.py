"""Token/position embedding lookup with sparse-row gradient accumulation.

``Embedding`` is a learned table of shape ``(num_embeddings,
embedding_dim)`` indexed by integer ids.  The forward pass routes through
:func:`repro.autograd.ops.getitem`, whose backward uses ``np.add.at`` —
so the gradient accumulated into the table is *sparse by construction*:
only rows touched by the batch receive non-zero gradient, with repeated
ids summed exactly as a dense one-hot matmul would.  That property is
what lets `MaskedModel` sparsify embedding tables and what the
touched-row optimizer binding in ``repro.sparse.masked`` relies on.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter
from repro.rng import resolve_rng

__all__ = ["Embedding"]


class Embedding(Module):
    """Lookup table mapping integer ids to ``embedding_dim``-vectors.

    Rows are initialized from N(0, 0.02**2) — the GPT-family convention,
    small enough that pre-LayerNorm residual streams start near zero.
    Indices may be a :class:`Tensor` or ndarray of any integer dtype and
    any shape; the output has shape ``indices.shape + (embedding_dim,)``.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, rng=None):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError(
                f"Embedding dims must be positive, got ({num_embeddings}, {embedding_dim})"
            )
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        rng = resolve_rng(rng)
        table = rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim))
        self.weight = Parameter(table.astype(np.float32), name="embedding")

    def forward(self, indices) -> Tensor:
        idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError(f"Embedding indices must be integers, got dtype {idx.dtype}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids must be in [0, {self.num_embeddings}), "
                f"got range [{idx.min()}, {idx.max()}]"
            )
        return ops.getitem(self.weight, idx)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
