"""Pooling and flattening modules."""

from __future__ import annotations

from repro.autograd import conv as conv_ops
from repro.autograd import ops
from repro.nn.module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten"]


class MaxPool2d(Module):
    """Max pooling (stride defaults to the kernel size)."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x):
        return conv_ops.max_pool2d(x, self.kernel_size, stride=self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling (stride defaults to the kernel size)."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x):
        return conv_ops.avg_pool2d(x, self.kernel_size, stride=self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x):
        return ops.mean(x, axis=(2, 3))


class Flatten(Module):
    """Collapse all non-batch dimensions: ``(N, ...) -> (N, -1)``."""

    def forward(self, x):
        return x.reshape((x.shape[0], -1))
