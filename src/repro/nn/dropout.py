"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.nn.module import Module
from repro.rng import resolve_rng

__all__ = ["Dropout"]


class Dropout(Module):
    """Randomly zero activations with probability ``p`` during training.

    Uses the *inverted* convention: surviving activations are scaled by
    ``1/(1-p)`` so evaluation mode is the identity.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = resolve_rng(rng)

    def forward(self, x):
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return ops.mul(x, mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
