"""Neural-network layers built on :mod:`repro.autograd`.

The public API mirrors the familiar ``torch.nn`` names at the scale this
reproduction needs: modules auto-register parameters, ``train()``/``eval()``
switch stochastic layers, and losses fuse numerically stable primitives.
"""

from repro.nn.module import Module, Parameter, Sequential, Identity
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.embedding import Embedding
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.nn.attention import CausalSelfAttention
from repro.nn.activations import (
    GELU,
    LeakyReLU,
    LogSoftmax,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d
from repro.nn.dropout import Dropout
from repro.nn.losses import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    HuberLoss,
    MSELoss,
    binary_cross_entropy_with_logits,
    cross_entropy,
    huber_loss,
    lm_cross_entropy,
    mse_loss,
)
from repro.nn import functional, init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Identity",
    "Linear",
    "Conv2d",
    "Embedding",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "CausalSelfAttention",
    "GELU",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "LogSoftmax",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "CrossEntropyLoss",
    "BCEWithLogitsLoss",
    "HuberLoss",
    "MSELoss",
    "cross_entropy",
    "lm_cross_entropy",
    "binary_cross_entropy_with_logits",
    "huber_loss",
    "mse_loss",
    "init",
    "functional",
]
