"""Batch normalization layers.

Both layers keep running estimates of mean/variance (buffers) for inference
and compute batch statistics through the autograd graph during training, so
gradients flow through the normalization exactly as in the reference
implementations the paper's experiments rely on.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNorm(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(np.ones(num_features, dtype=np.float32), name="gamma")
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    _reduce_axes: tuple[int, ...] = (0,)
    _param_shape: tuple[int, ...] = (-1,)

    def forward(self, x: Tensor) -> Tensor:
        shape = self._param_shape
        if self.training:
            # Fused batch-norm node: one forward pass and a closed-form
            # backward instead of a ten-op elementwise graph (the composed
            # form dominated conv-model step profiles).
            out, batch_mean, batch_var = ops.batch_norm(
                x, self.weight, self.bias, self._reduce_axes, self.eps
            )
            # Update running statistics outside the graph.
            m = self.momentum
            self.register_buffer(
                "running_mean", ((1 - m) * self.running_mean + m * batch_mean).astype(np.float32)
            )
            self.register_buffer(
                "running_var", ((1 - m) * self.running_var + m * batch_var).astype(np.float32)
            )
            return out
        mean_c = self.running_mean.reshape(shape)
        var_c = self.running_var.reshape(shape)
        x_hat = ops.div(ops.sub(x, mean_c), np.sqrt(var_c + self.eps))
        gamma = ops.reshape(self.weight, shape)
        beta = ops.reshape(self.bias, shape)
        return ops.add(ops.mul(x_hat, gamma), beta)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features}, eps={self.eps}, momentum={self.momentum})"


class BatchNorm1d(_BatchNorm):
    """Batch norm over ``(N, C)`` activations."""

    _reduce_axes = (0,)
    _param_shape = (1, -1)


class BatchNorm2d(_BatchNorm):
    """Batch norm over ``(N, C, H, W)`` activations, per channel."""

    _reduce_axes = (0, 2, 3)
    _param_shape = (1, -1, 1, 1)
