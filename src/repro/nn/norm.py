"""Batch normalization layers.

Both layers keep running estimates of mean/variance (buffers) for inference
and compute batch statistics through the autograd graph during training, so
gradients flow through the normalization exactly as in the reference
implementations the paper's experiments rely on.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d", "LayerNorm"]


class _BatchNorm(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(np.ones(num_features, dtype=np.float32), name="gamma")
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    _reduce_axes: tuple[int, ...] = (0,)
    _param_shape: tuple[int, ...] = (-1,)

    def forward(self, x: Tensor) -> Tensor:
        shape = self._param_shape
        if self.training:
            # Fused batch-norm node: one forward pass and a closed-form
            # backward instead of a ten-op elementwise graph (the composed
            # form dominated conv-model step profiles).
            out, batch_mean, batch_var = ops.batch_norm(
                x, self.weight, self.bias, self._reduce_axes, self.eps
            )
            # Update running statistics outside the graph.
            m = self.momentum
            self.register_buffer(
                "running_mean", ((1 - m) * self.running_mean + m * batch_mean).astype(np.float32)
            )
            self.register_buffer(
                "running_var", ((1 - m) * self.running_var + m * batch_var).astype(np.float32)
            )
            return out
        mean_c = self.running_mean.reshape(shape)
        var_c = self.running_var.reshape(shape)
        x_hat = ops.div(ops.sub(x, mean_c), np.sqrt(var_c + self.eps))
        gamma = ops.reshape(self.weight, shape)
        beta = ops.reshape(self.bias, shape)
        return ops.add(ops.mul(x_hat, gamma), beta)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features}, eps={self.eps}, momentum={self.momentum})"


class LayerNorm(Module):
    """Layer normalization over the trailing ``normalized_dim`` features.

    Unlike batch norm there are no running statistics — train and eval
    behave identically, and the statistics are per-example (reduced over
    the last axis only), so transformer blocks normalize each token's
    feature vector independently of batch composition.  Composed from
    autograd mean/var/sqrt primitives, so gradients flow through the
    statistics exactly (verified against numerical gradients in
    ``tests/nn/test_transformer.py``).
    """

    def __init__(self, normalized_dim: int, eps: float = 1e-5):
        super().__init__()
        if normalized_dim <= 0:
            raise ValueError(f"normalized_dim must be positive, got {normalized_dim}")
        self.normalized_dim = int(normalized_dim)
        self.eps = float(eps)
        self.weight = Parameter(np.ones(normalized_dim, dtype=np.float32), name="gamma")
        self.bias = Parameter(np.zeros(normalized_dim, dtype=np.float32), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"LayerNorm({self.normalized_dim}) got trailing dim {x.shape[-1]}"
            )
        mean = ops.mean(x, axis=-1, keepdims=True)
        var = ops.var(x, axis=-1, keepdims=True)
        x_hat = ops.div(ops.sub(x, mean), ops.sqrt(ops.add(var, self.eps)))
        return ops.add(ops.mul(x_hat, self.weight), self.bias)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_dim}, eps={self.eps})"


class BatchNorm1d(_BatchNorm):
    """Batch norm over ``(N, C)`` activations."""

    _reduce_axes = (0,)
    _param_shape = (1, -1)


class BatchNorm2d(_BatchNorm):
    """Batch norm over ``(N, C, H, W)`` activations, per channel."""

    _reduce_axes = (0, 2, 3)
    _param_shape = (1, -1, 1, 1)
