"""Functional API — stateless versions of the layer operations.

Mirrors ``torch.nn.functional`` for the operations this library supports,
so models can be written without modules when convenient (the GNN encoder
and several tests use this form).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import conv as _conv
from repro.autograd import ops as _ops
from repro.autograd.tensor import Tensor, ensure_tensor
from repro.rng import resolve_rng

__all__ = [
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "batch_norm",
    "flatten",
]

# Re-exported primitives (same objects; listed for API completeness).
conv2d = _conv.conv2d
max_pool2d = _conv.max_pool2d
avg_pool2d = _conv.avg_pool2d
relu = _ops.relu
leaky_relu = _ops.leaky_relu
sigmoid = _ops.sigmoid
tanh = _ops.tanh
softmax = _ops.softmax
log_softmax = _ops.log_softmax


def linear(x, weight, bias=None) -> Tensor:
    """``x @ weight.T + bias`` with weight shaped ``(out, in)``."""
    out = _ops.matmul(ensure_tensor(x), _ops.transpose(ensure_tensor(weight)))
    if bias is not None:
        out = _ops.add(out, bias)
    return out


def dropout(
    x,
    p: float = 0.5,
    training: bool = True,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Inverted dropout; identity when ``training=False`` or ``p == 0``."""
    x = ensure_tensor(x)
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    generator = resolve_rng(rng)
    keep = 1.0 - p
    mask = (generator.random(x.shape) < keep).astype(x.dtype) / keep
    return _ops.mul(x, mask)


def batch_norm(
    x,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    weight=None,
    bias=None,
    training: bool = False,
    eps: float = 1e-5,
) -> Tensor:
    """Functional batch norm over axis 1 (inference-style by default).

    In training mode batch statistics are used (but the running buffers are
    *not* updated — use :class:`repro.nn.BatchNorm2d` for stateful training).
    """
    x = ensure_tensor(x)
    param_shape = (1, -1) + (1,) * (x.ndim - 2)
    if training:
        axes = (0,) + tuple(range(2, x.ndim))
        mu = _ops.mean(x, axis=axes, keepdims=True)
        centered = _ops.sub(x, mu)
        var = _ops.mean(_ops.mul(centered, centered), axis=axes, keepdims=True)
        x_hat = _ops.div(centered, _ops.sqrt(_ops.add(var, eps)))
    else:
        mean_c = np.asarray(running_mean, dtype=np.float32).reshape(param_shape)
        var_c = np.asarray(running_var, dtype=np.float32).reshape(param_shape)
        x_hat = _ops.div(_ops.sub(x, mean_c), np.sqrt(var_c + eps))
    if weight is not None:
        x_hat = _ops.mul(x_hat, _ops.reshape(ensure_tensor(weight), param_shape))
    if bias is not None:
        x_hat = _ops.add(x_hat, _ops.reshape(ensure_tensor(bias), param_shape))
    return x_hat


def flatten(x, start_dim: int = 1) -> Tensor:
    """Collapse dimensions from ``start_dim`` onward."""
    x = ensure_tensor(x)
    new_shape = x.shape[:start_dim] + (-1,)
    return _ops.reshape(x, new_shape)
