"""Multi-head causal self-attention for the char-level GPT.

The projections are four ordinary :class:`repro.nn.Linear` modules
(query/key/value/output), so `MaskedModel` sparsifies them exactly like
MLP layers — including block-structured masks, since every projection is
``n_embd × n_embd`` and tiles cleanly under the BSR training kernels.

Masking is *additive*: a causal template puts ``-1e9`` on future keys,
and an optional per-example key-padding mask does the same for left-pad
positions.  After the stable softmax those entries underflow to exactly
``0.0``, so padded keys carry zero attention weight and the attended
value matches the unpadded prompt up to BLAS summation order.  Serving
determinism therefore comes from the preprocessor *always* left-padding
to the artifact's ``max_length`` — every prompt runs the same-shaped
computation regardless of batch composition.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.module import Module

__all__ = ["CausalSelfAttention"]

_NEG_INF = np.float32(-1e9)


class CausalSelfAttention(Module):
    """Scaled dot-product attention with a fixed causal horizon.

    ``max_len`` bounds the sequence length; the causal bias template is
    precomputed once as a plain float32 array (not a buffer — it is
    config, derived from ``max_len``, and never trained or checkpointed).
    """

    def __init__(self, n_embd: int, n_head: int, max_len: int, rng=None):
        super().__init__()
        if n_embd % n_head != 0:
            raise ValueError(f"n_embd={n_embd} not divisible by n_head={n_head}")
        self.n_embd = int(n_embd)
        self.n_head = int(n_head)
        self.head_dim = self.n_embd // self.n_head
        self.max_len = int(max_len)
        self.query = Linear(n_embd, n_embd, rng=rng)
        self.key = Linear(n_embd, n_embd, rng=rng)
        self.value = Linear(n_embd, n_embd, rng=rng)
        self.proj = Linear(n_embd, n_embd, rng=rng)
        self._scale = 1.0 / float(np.sqrt(self.head_dim))
        self._causal_bias = np.triu(
            np.full((max_len, max_len), _NEG_INF, dtype=np.float32), k=1
        )

    def _split_heads(self, t: Tensor, batch: int, seq: int) -> Tensor:
        t = ops.reshape(t, (batch, seq, self.n_head, self.head_dim))
        return ops.transpose(t, (0, 2, 1, 3))  # (B, H, T, Dh)

    def forward(
        self,
        x_flat: Tensor,
        batch: int,
        seq: int,
        key_pad_mask: np.ndarray | None = None,
    ) -> Tensor:
        """Attend over ``x_flat`` of shape ``(batch * seq, n_embd)``.

        Activations stay flattened outside this module so every Linear
        projection sees a 2-D input — the shape the CSR/BSR training
        backends and the compiled inference layers operate on.  The head
        split/merge reshapes happen around the score/value matmuls only.
        """
        if seq > self.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.max_len}")
        q = self._split_heads(self.query(x_flat), batch, seq)
        k = self._split_heads(self.key(x_flat), batch, seq)
        v = self._split_heads(self.value(x_flat), batch, seq)
        scores = ops.mul(ops.matmul(q, ops.transpose(k, (0, 1, 3, 2))), self._scale)
        bias = self._causal_bias[:seq, :seq]
        if key_pad_mask is not None and key_pad_mask.any():
            pad = np.where(key_pad_mask[:, None, None, :], _NEG_INF, np.float32(0.0))
            bias = bias[None, None, :, :] + pad  # (B, 1, T, T)
            # A query row whose keys are ALL padded (a pad position itself)
            # would softmax over -inf everywhere and produce NaNs; keeping
            # the diagonal open makes those rows attend to themselves.
            # Real (unpadded) rows are unaffected: their diagonal is
            # already unmasked.
            diag = np.arange(seq)
            bias[:, :, diag, diag] = 0.0
        weights = ops.softmax(ops.add(scores, bias), axis=-1)
        attended = ops.matmul(weights, v)  # (B, H, T, Dh)
        attended = ops.transpose(attended, (0, 2, 1, 3))
        attended = ops.reshape(attended, (batch * seq, self.n_embd))
        return self.proj(attended)

    def __repr__(self) -> str:
        return (
            f"CausalSelfAttention(n_embd={self.n_embd}, n_head={self.n_head}, "
            f"max_len={self.max_len})"
        )
