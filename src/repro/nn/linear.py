"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.rng import resolve_rng

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with weight shape ``(out, in)``.

    The ``(out, in)`` layout matches PyTorch so the ERK sparsity formulas in
    :mod:`repro.sparse.distribution` can use ``shape[0]``/``shape[1]``
    directly as fan-out/fan-in.

    ``forward_backend`` is an optional execution backend (installed by
    :func:`repro.sparse.kernels.install_training_backends`): a callable
    that either returns the layer output or ``None`` to decline, in which
    case the built-in dense path runs.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        generator = resolve_rng(rng)
        self.weight = Parameter(
            np.empty((out_features, in_features), dtype=np.float32), name="weight"
        )
        init.kaiming_uniform_(self.weight, generator)
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=np.float32), name="bias")
        else:
            self.bias = None
        self.forward_backend = None

    def forward(self, x: Tensor) -> Tensor:
        backend = self.forward_backend
        if backend is not None:
            out = backend(x)
            if out is not None:
                return out
        out = ops.matmul(x, ops.transpose(self.weight))
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
