"""Weight initialization schemes (Kaiming / Xavier / constant).

All initializers mutate the parameter in-place and accept an explicit
``numpy.random.Generator`` so model construction is fully reproducible —
a requirement for the multi-seed experiment protocol of the paper.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = [
    "kaiming_normal_",
    "kaiming_uniform_",
    "xavier_normal_",
    "xavier_uniform_",
    "constant_",
    "zeros_",
    "compute_fans",
]


def compute_fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor.

    Linear weights are ``(out, in)``; conv weights are
    ``(out, in, kh, kw)`` where the receptive-field size multiplies both fans.
    """
    if len(shape) < 2:
        raise ValueError(f"fan computation requires >= 2 dims, got shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def _gain(nonlinearity: str) -> float:
    if nonlinearity == "relu":
        return math.sqrt(2.0)
    if nonlinearity == "leaky_relu":
        return math.sqrt(2.0 / (1 + 0.01**2))
    if nonlinearity in ("linear", "sigmoid", "identity"):
        return 1.0
    if nonlinearity == "tanh":
        return 5.0 / 3.0
    raise ValueError(f"unknown nonlinearity {nonlinearity!r}")


def kaiming_normal_(
    param: Tensor, rng: np.random.Generator, nonlinearity: str = "relu"
) -> Tensor:
    """He-normal init: ``std = gain / sqrt(fan_in)``."""
    fan_in, _ = compute_fans(param.shape)
    std = _gain(nonlinearity) / math.sqrt(fan_in)
    param.data = (rng.standard_normal(param.shape) * std).astype(param.dtype)
    return param


def kaiming_uniform_(
    param: Tensor, rng: np.random.Generator, nonlinearity: str = "relu"
) -> Tensor:
    """He-uniform init: ``bound = gain * sqrt(3 / fan_in)``."""
    fan_in, _ = compute_fans(param.shape)
    bound = _gain(nonlinearity) * math.sqrt(3.0 / fan_in)
    param.data = rng.uniform(-bound, bound, size=param.shape).astype(param.dtype)
    return param


def xavier_normal_(param: Tensor, rng: np.random.Generator) -> Tensor:
    """Glorot-normal init: ``std = sqrt(2 / (fan_in + fan_out))``."""
    fan_in, fan_out = compute_fans(param.shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    param.data = (rng.standard_normal(param.shape) * std).astype(param.dtype)
    return param


def xavier_uniform_(param: Tensor, rng: np.random.Generator) -> Tensor:
    """Glorot-uniform init: ``bound = sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = compute_fans(param.shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    param.data = rng.uniform(-bound, bound, size=param.shape).astype(param.dtype)
    return param


def constant_(param: Tensor, value: float) -> Tensor:
    """Fill with a constant."""
    param.data = np.full(param.shape, value, dtype=param.dtype)
    return param


def zeros_(param: Tensor) -> Tensor:
    """Fill with zeros."""
    return constant_(param, 0.0)
