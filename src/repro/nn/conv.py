"""Convolutional layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import conv as conv_ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.rng import resolve_rng

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D convolution with weight shape ``(out_ch, in_ch, kh, kw)``.

    ``forward_backend`` is an optional execution backend (installed by
    :func:`repro.sparse.kernels.install_training_backends`): a callable
    that either returns the layer output or ``None`` to decline, in which
    case the built-in dense path runs.

    Each layer owns a :class:`~repro.autograd.conv.ConvWorkspace` that both
    the dense path and any installed kernel backend reuse, so the im2col
    pipeline stops reallocating its large intermediates every step (set
    ``REPRO_CONV_WORKSPACE=0`` to disable the caching).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = (int(kh), int(kw))
        self.stride = stride
        self.padding = padding
        generator = resolve_rng(rng)
        self.weight = Parameter(
            np.empty((out_channels, in_channels, kh, kw), dtype=np.float32), name="weight"
        )
        init.kaiming_uniform_(self.weight, generator)
        if bias:
            self.bias = Parameter(np.zeros(out_channels, dtype=np.float32), name="bias")
        else:
            self.bias = None
        self.forward_backend = None
        self.workspace = conv_ops.ConvWorkspace()

    def forward(self, x: Tensor) -> Tensor:
        backend = self.forward_backend
        if backend is not None:
            out = backend(x)
            if out is not None:
                return out
        return conv_ops.conv2d(
            x, self.weight, bias=self.bias, stride=self.stride, padding=self.padding,
            workspace=self.workspace,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding}, "
            f"bias={self.bias is not None})"
        )
