"""Activation modules wrapping the functional ops."""

from __future__ import annotations

from repro.autograd import ops
from repro.nn.module import Module

__all__ = ["GELU", "ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax", "LogSoftmax"]

# Constants of the tanh-approximate GELU (Hendrycks & Gimpel, 2016) — the
# form used by GPT-2 and the Graphcore dynamic-sparsity LM exemplar.
_GELU_SCALE = 0.7978845608028654  # sqrt(2 / pi)
_GELU_CUBIC = 0.044715


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x):
        return ops.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x):
        return ops.leaky_relu(x, self.negative_slope)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation).

    ``0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 * x**3)))`` — smooth
    near zero where transformer residual streams live, composed entirely
    from differentiable ops so the backward pass is exact for the
    approximation.
    """

    def forward(self, x):
        cubic = ops.add(x, ops.mul(_GELU_CUBIC, ops.pow(x, 3.0)))
        gate = ops.add(1.0, ops.tanh(ops.mul(_GELU_SCALE, cubic)))
        return ops.mul(ops.mul(0.5, x), gate)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x):
        return ops.sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x):
        return ops.tanh(x)


class Softmax(Module):
    """Softmax along ``axis`` (default: last)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x):
        return ops.softmax(x, axis=self.axis)


class LogSoftmax(Module):
    """Log-softmax along ``axis`` (default: last)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x):
        return ops.log_softmax(x, axis=self.axis)
