"""Activation modules wrapping the functional ops."""

from __future__ import annotations

from repro.autograd import ops
from repro.nn.module import Module

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax", "LogSoftmax"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x):
        return ops.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x):
        return ops.leaky_relu(x, self.negative_slope)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x):
        return ops.sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x):
        return ops.tanh(x)


class Softmax(Module):
    """Softmax along ``axis`` (default: last)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x):
        return ops.softmax(x, axis=self.axis)


class LogSoftmax(Module):
    """Log-softmax along ``axis`` (default: last)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x):
        return ops.log_softmax(x, axis=self.axis)
