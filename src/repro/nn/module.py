"""Module/Parameter system — the layer-composition substrate.

Mirrors the familiar PyTorch contract at the scale this project needs:
parameters and sub-modules auto-register on attribute assignment, modules
expose ``parameters()`` / ``named_parameters()`` / ``state_dict()``, and
``train()`` / ``eval()`` toggle behaviour of stochastic layers (dropout,
batch-norm).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf of a :class:`Module`."""

    __slots__ = ()

    def __init__(self, data, requires_grad: bool = True, name: str | None = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network layers and models.

    Subclasses implement :meth:`forward`; assigning :class:`Parameter`,
    :class:`Module` or buffer (plain ndarray via :meth:`register_buffer`)
    attributes registers them for traversal, serialization, and mode
    switching.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        elif name in getattr(self, "_buffers", {}):
            self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        """Register a sub-module under a dynamic name."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters in this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs including self (empty name)."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        """Yield direct sub-modules."""
        yield from self._modules.values()

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth-first."""
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # mode & gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout / batch-norm)."""
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters."""
        return sum(
            p.size for p in self.parameters() if p.requires_grad or not trainable_only
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of all parameters and buffers keyed by dotted name."""
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: dict) -> None:
        """Load parameters/buffers in-place from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = []
        for name, value in state.items():
            if name in params:
                target = params[name]
                if target.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: model {target.shape}, state {value.shape}"
                    )
                target.data = np.array(value, dtype=target.dtype, copy=True)
            else:
                missing.append(name)
        if missing:
            buffer_owners = self._buffer_owners()
            remaining = []
            for name in missing:
                if name in buffer_owners:
                    owner, attr = buffer_owners[name]
                    owner.register_buffer(attr, np.array(state[name], copy=True))
                else:
                    remaining.append(name)
            if remaining:
                raise KeyError(f"state entries not found in model: {remaining}")

    def _buffer_owners(self) -> dict[str, tuple["Module", str]]:
        owners: dict[str, tuple[Module, str]] = {}

        def visit(module: "Module", prefix: str) -> None:
            for attr in module._buffers:
                owners[f"{prefix}{attr}"] = (module, attr)
            for name, child in module._modules.items():
                visit(child, f"{prefix}{name}.")

        visit(self, "")
        return owners

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [type(self).__name__ + "("]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}()"


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class Identity(Module):
    """Pass-through module (used for optional branches)."""

    def forward(self, x):
        return x
