"""CI serving smoke: train → export → serve over HTTP → verify, end to end.

Exercises the full deployment pipeline at toy scale:

1. trains a tiny DST-EE MLP on synthetic CIFAR-like data,
2. compiles + exports it to a versioned serving artifact,
3. reloads the artifact and checks predictions are bitwise identical to
   the compiled model's,
4. serves it over the stdlib HTTP frontend and issues concurrent JSON
   requests, checking every response against the in-process path,
5. round-trips a batch through a 2-worker :class:`ServingPool` (skipped
   where fork is unavailable),
6. runs the CLI ``serve``-parser plumbing far enough to prove the
   subcommand wiring imports.

Exits non-zero on the first violated check.  Run from the repo root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import threading
import urllib.request

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.autograd import no_grad  # noqa: E402
from repro.autograd.tensor import Tensor  # noqa: E402
from repro.data import cifar10_like  # noqa: E402
from repro.experiments.runner import run_image_classification  # noqa: E402
from repro.models import MLP  # noqa: E402
from repro.parallel import fork_available  # noqa: E402
from repro.serve import (  # noqa: E402
    Server,
    ServingPool,
    export_model,
    load_model,
    make_http_server,
)
from repro.sparse.inference import compile_sparse_model  # noqa: E402


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def main() -> None:
    data = cifar10_like(n_train=256, n_test=128, image_size=8, seed=0)
    result = run_image_classification(
        "dst_ee",
        lambda seed: MLP(3 * 8 * 8, (64, 32), 10, seed=seed),
        data,
        sparsity=0.9,
        epochs=1,
        batch_size=64,
        lr=0.05,
        delta_t=6,
        seed=0,
        keep_model=True,
    )
    check(result.masked is not None, "training produced a masked model")

    compiled = compile_sparse_model(result.masked)
    x = np.random.default_rng(3).standard_normal((16, 3, 8, 8)).astype(np.float32)
    with no_grad():
        reference = np.asarray(compiled(Tensor(x.reshape(16, -1))).data)

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "smoke.npz"
        export_model(
            compiled,
            path,
            model_config={
                "builder": "mlp",
                "kwargs": {
                    "in_features": 3 * 8 * 8,
                    "hidden": [64, 32],
                    "num_classes": 10,
                    "seed": 0,
                },
            },
            preprocessing={"input_shape": [3, 8, 8], "flatten": True},
            metadata={"smoke": True},
        )
        loaded = load_model(path)
        check(
            np.array_equal(loaded.predict(x), reference),
            "artifact round-trip is bitwise identical",
        )

        server = Server(loaded, max_batch=8, max_latency_ms=2.0)
        httpd = make_http_server(server, port=0)
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            health = json.loads(
                urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=10).read()
            )
            check(health["status"] == "ok", "healthz answers ok")

            outputs = [None] * 8
            errors: list[BaseException] = []

            def one_request(index: int) -> None:
                try:
                    body = json.dumps({"inputs": [x[index].tolist()]}).encode()
                    request = urllib.request.Request(
                        f"http://127.0.0.1:{port}/predict",
                        data=body,
                        headers={"Content-Type": "application/json"},
                    )
                    payload = json.loads(urllib.request.urlopen(request, timeout=30).read())
                    outputs[index] = np.asarray(payload["outputs"][0], np.float32)
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=one_request, args=(i,)) for i in range(8)]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join()
            check(not errors, f"concurrent HTTP requests all answered ({errors!r})")
            for index in range(8):
                check(
                    np.allclose(outputs[index], reference[index], atol=1e-5),
                    f"HTTP response {index} matches in-process prediction",
                )
            stats = server.stats()
            check(stats["requests"] >= 8, "stats counted the HTTP requests")
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.close()

        if fork_available():
            with ServingPool(path, n_workers=2) as pool:
                check(
                    np.array_equal(pool.predict(x, timeout=60), reference),
                    "2-worker ServingPool matches in-process predictions",
                )
                check(
                    pool.arena is not None and pool.arena.nbytes > 0,
                    "workers share a read-only weight arena",
                )
        else:
            print("skip: fork unavailable, ServingPool smoke not run")

    from repro.experiments.cli import build_parser

    args = build_parser().parse_args(["serve", "--artifact", "unused.npz", "--port", "0"])
    check(args.command == "serve", "CLI serve subcommand parses")
    print("serving smoke passed")


if __name__ == "__main__":
    main()
