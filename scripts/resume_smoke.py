"""CI smoke: SIGKILL a sweep mid-cell, resume it, require an identical report.

Exercises the real fault-tolerance path end to end through the CLI:

1. run a tiny sweep uninterrupted (the reference report);
2. launch the same sweep in a subprocess with step-granular checkpoints,
   SIGKILL it as soon as the first checkpoint file appears on disk
   (i.e. mid-cell, mid-epoch);
3. rerun the killed sweep with ``--resume``;
4. assert the resumed sweep's aggregated table is byte-identical to the
   reference's.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/resume_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

SWEEP_ARGS = [
    "sweep",
    "--methods", "set", "dst_ee",
    "--models", "mlp",
    "--sparsities", "0.9",
    "--seeds", "0",
    "--epochs", "3",
    "--n-train", "1024",
    "--n-test", "256",
    "--image-size", "10",
    "--batch-size", "32",
    "--delta-t", "3",
    "--checkpoint-every-steps", "2",
]
KILL_WAIT_SECONDS = 120


def _command(checkpoint_dir: str, resume: bool = False) -> list[str]:
    cmd = [sys.executable, "-m", "repro.experiments.cli", *SWEEP_ARGS,
           "--checkpoint-dir", checkpoint_dir]
    if resume:
        cmd.append("--resume")
    return cmd


def _run(cmd: list[str]) -> str:
    result = subprocess.run(cmd, capture_output=True, text=True)
    if result.returncode != 0:
        raise SystemExit(
            f"command failed ({result.returncode}): {' '.join(cmd)}\n"
            f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        )
    return result.stdout


def _report_table(stdout: str) -> str:
    """The sweep's aggregated table (everything from its title line on)."""
    lines = stdout.splitlines()
    for index, line in enumerate(lines):
        if line.startswith("sweep on "):
            return "\n".join(lines[index:]).rstrip()
    raise SystemExit(f"no sweep table in output:\n{stdout}")


def main() -> int:
    with tempfile.TemporaryDirectory() as workdir:
        ref_dir = os.path.join(workdir, "reference")
        kill_dir = os.path.join(workdir, "killed")

        print("[1/3] reference sweep (uninterrupted)...", flush=True)
        reference = _report_table(_run(_command(ref_dir)))

        print("[2/3] sweep to be SIGKILLed at first checkpoint...", flush=True)
        victim = subprocess.Popen(
            _command(kill_dir),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + KILL_WAIT_SECONDS
        first_checkpoint = None
        while time.monotonic() < deadline and victim.poll() is None:
            checkpoints = list(pathlib.Path(kill_dir).glob("*/ckpt-*.npz"))
            if checkpoints:
                first_checkpoint = checkpoints[0]
                break
            time.sleep(0.05)
        if victim.poll() is not None:
            raise SystemExit(
                "victim sweep finished before any checkpoint appeared; "
                "enlarge the workload so the kill lands mid-cell"
            )
        if first_checkpoint is None:
            victim.kill()
            raise SystemExit("no checkpoint appeared within the wait budget")
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        assert victim.returncode == -signal.SIGKILL, victim.returncode
        print(f"    killed mid-cell (first checkpoint: {first_checkpoint.name})",
              flush=True)

        print("[3/3] resuming the killed sweep...", flush=True)
        resumed = _report_table(_run(_command(kill_dir, resume=True)))

        if resumed != reference:
            raise SystemExit(
                "resumed report differs from the uninterrupted reference\n"
                f"--- reference ---\n{reference}\n"
                f"--- resumed ---\n{resumed}"
            )
        print("resume smoke OK: resumed report matches the uninterrupted run")
        print(reference)
    return 0


if __name__ == "__main__":
    sys.exit(main())
