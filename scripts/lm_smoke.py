"""CI smoke: LM train → SIGKILL mid-epoch → resume → export → HTTP query.

Exercises the language-model workload's fault-tolerance and deployment
path end to end through the CLI, mirroring ``rl_smoke.py``:

1. run a tiny sparse char-GPT uninterrupted and export its artifact (the
   reference);
2. launch the same run in a subprocess with step-granular checkpoints and
   SIGKILL it as soon as the first checkpoint file appears (mid-epoch);
3. rerun the killed command with ``--resume`` (exporting its artifact);
4. assert the resumed run's printed summary is byte-identical to the
   reference's, that the two exported artifacts produce bitwise-equal
   next-token logits, and that a greedy next-token HTTP query against the
   resumed artifact returns exactly the token ids the reference model
   predicts in-process.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/lm_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

RUN_ARGS = (
    "run-lm --method dst_ee --sparsity 0.9 --n-chars 32768 --epochs 2 "
    "--batch-size 16 --n-embd 32 --delta-t 10 --seed 0"
).split()
KILL_WAIT_SECONDS = 120
# Lines whose content legitimately differs between runs (timing, paths).
VOLATILE_PREFIXES = ("wall time:", "artifact:", "serve with:")

PROMPTS = ("the cat sat on the ", "a man and a ", "every day the ")


def _command(out: str, checkpoint_dir: str | None = None, resume: bool = False) -> list[str]:
    cmd = [sys.executable, "-m", "repro.experiments.cli", *RUN_ARGS, "--out", out]
    if checkpoint_dir is not None:
        cmd += ["--checkpoint-dir", checkpoint_dir, "--checkpoint-every-steps", "10"]
    if resume:
        cmd.append("--resume")
    return cmd


def _run(cmd: list[str]) -> str:
    result = subprocess.run(cmd, capture_output=True, text=True)
    if result.returncode != 0:
        raise SystemExit(
            f"command failed ({result.returncode}): {' '.join(cmd)}\n"
            f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        )
    return result.stdout


def _summary(stdout: str) -> str:
    """The run's deterministic summary (timing and path lines dropped)."""
    kept = [
        line
        for line in stdout.splitlines()
        if line.strip() and not line.strip().startswith(VOLATILE_PREFIXES)
    ]
    return "\n".join(kept)


def main() -> int:
    with tempfile.TemporaryDirectory() as workdir:
        ref_artifact = os.path.join(workdir, "reference.npz")
        res_artifact = os.path.join(workdir, "resumed.npz")
        kill_dir = os.path.join(workdir, "checkpoints")

        print("[1/5] reference run (uninterrupted, with export)...", flush=True)
        reference = _summary(_run(_command(ref_artifact)))

        print("[2/5] run to be SIGKILLed at first mid-epoch checkpoint...", flush=True)
        victim = subprocess.Popen(
            _command(res_artifact, checkpoint_dir=kill_dir),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + KILL_WAIT_SECONDS
        first_checkpoint = None
        while time.monotonic() < deadline and victim.poll() is None:
            checkpoints = list(pathlib.Path(kill_dir).glob("ckpt-*.npz"))
            if checkpoints:
                first_checkpoint = checkpoints[0]
                break
            time.sleep(0.02)
        if victim.poll() is not None:
            raise SystemExit(
                "victim run finished before any checkpoint appeared; "
                "enlarge the workload so the kill lands mid-run"
            )
        if first_checkpoint is None:
            victim.kill()
            raise SystemExit("no checkpoint appeared within the wait budget")
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        assert victim.returncode == -signal.SIGKILL, victim.returncode
        print(f"    killed mid-epoch (first checkpoint: {first_checkpoint.name})", flush=True)

        print("[3/5] resuming the killed run...", flush=True)
        resumed = _summary(_run(_command(res_artifact, checkpoint_dir=kill_dir, resume=True)))

        if resumed != reference:
            raise SystemExit(
                "resumed summary differs from the uninterrupted reference\n"
                f"--- reference ---\n{reference}\n--- resumed ---\n{resumed}"
            )
        print("    resumed summary matches the uninterrupted run", flush=True)

        print("[4/5] comparing exported LM artifacts...", flush=True)
        from repro.data.text import CharVocab
        from repro.serve import load_model

        vocab = CharVocab()
        prompts = [vocab.encode(text) for text in PROMPTS]
        reference_model = load_model(ref_artifact)
        resumed_model = load_model(res_artifact)
        ref_logits = [reference_model.predict(ids[None]) for ids in prompts]
        res_logits = [resumed_model.predict(ids[None]) for ids in prompts]
        for ref_row, res_row in zip(ref_logits, res_logits):
            if not np.array_equal(ref_row, res_row):
                raise SystemExit("resumed artifact logits differ from the reference's")
        greedy_reference = [int(np.argmax(row)) for row in ref_logits]
        print("    artifact logits bitwise equal; greedy tokens:", greedy_reference, flush=True)

        print("[5/5] greedy next-token query over HTTP (resumed artifact)...", flush=True)
        from repro.serve import Server
        from repro.serve.http import make_http_server

        server = Server(resumed_model)
        httpd = make_http_server(server, port=0)
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            body = json.dumps({"inputs": [ids.tolist() for ids in prompts]}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            reply = json.loads(urllib.request.urlopen(request, timeout=30).read())
            if reply["predictions"] != greedy_reference:
                raise SystemExit(
                    f"HTTP greedy tokens {reply['predictions']} differ from the "
                    f"reference's {greedy_reference}"
                )
            if not reply.get("fingerprint"):
                raise SystemExit("HTTP reply carries no artifact fingerprint")
            decoded = vocab.decode(np.asarray(reply["predictions"], dtype=np.int64))
            print(f"    HTTP greedy tokens match (decoded: {decoded!r})", flush=True)
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.close()
        print("lm smoke OK: resume is exact and the served next tokens agree")
        print(reference)
    return 0


if __name__ == "__main__":
    sys.exit(main())
